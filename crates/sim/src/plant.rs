//! The physical plant: true power consumption and the RC thermal network.
//!
//! The plant plays the role of the silicon and the board. Its power parameters
//! are deliberately *not* identical to the characterised values in
//! `power-model` (a few percent off, like a real chip vs. its model), and its
//! thermal structure (eight RC nodes) is richer than the four-state model the
//! controller identifies, so the controller faces realistic model error.

use power_model::{DomainPower, LeakageModel, LeakageParams};
use serde::{Deserialize, Serialize};
use soc_model::{ClusterKind, FanLevel, PlatformState, SocSpec};
use thermal_model::{ExynosThermalNetwork, StepTransition};
use workload::Demand;

use crate::SimError;

/// "True" power parameters of the simulated silicon.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlantPowerParams {
    /// Effective switched capacitance of one fully-active big (A15) core, in
    /// farads (used as `P = act·C·V²·f` per busy core).
    pub big_core_ceff_f: f64,
    /// Cluster-shared (L2, interconnect, clocking) switched capacitance of the
    /// big cluster, active whenever the cluster is powered.
    pub big_uncore_ceff_f: f64,
    /// Effective switched capacitance of one fully-active little (A7) core.
    pub little_core_ceff_f: f64,
    /// Cluster-shared switched capacitance of the little cluster.
    pub little_uncore_ceff_f: f64,
    /// Effective switched capacitance of the GPU at full utilisation.
    pub gpu_ceff_f: f64,
    /// Memory power floor, in watts.
    pub memory_base_w: f64,
    /// Additional memory power at full memory intensity, in watts.
    pub memory_active_w: f64,
    /// Board power outside the measured SoC domains (display, storage, radios,
    /// regulators), counted only by the external power meter, in watts.
    pub board_base_w: f64,
    /// Multiplier applied to the characterised leakage parameters to produce
    /// the silicon's true leakage (model error on purpose).
    pub leakage_mismatch: f64,
    /// Fraction of leakage that remains when a cluster is power-gated.
    pub gated_leakage_fraction: f64,
    /// Initial temperature of every thermal node at the start of a run, °C.
    pub initial_temp_c: f64,
}

impl Default for PlantPowerParams {
    fn default() -> Self {
        PlantPowerParams {
            big_core_ceff_f: 0.46e-9,
            big_uncore_ceff_f: 0.30e-9,
            little_core_ceff_f: 0.065e-9,
            little_uncore_ceff_f: 0.035e-9,
            gpu_ceff_f: 1.1e-9,
            memory_base_w: 0.28,
            memory_active_w: 0.45,
            board_base_w: 1.80,
            leakage_mismatch: 1.06,
            gated_leakage_fraction: 0.05,
            initial_temp_c: 52.0,
        }
    }
}

/// Outcome of stepping the plant over one control interval.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlantStep {
    /// True average power per measured domain over the interval, in watts.
    pub domain_power: DomainPower,
    /// True hotspot (big-core) temperatures at the end of the interval, °C.
    pub core_temps_c: [f64; 4],
    /// True platform power (SoC domains + board base + fan), in watts.
    pub platform_power_w: f64,
    /// CPU work completed during the interval, in work units.
    pub work_done: f64,
}

/// The physical plant: thermal network state plus true power computation.
///
/// Stepping is allocation-free in steady state: the node-power and integrator
/// scratch buffers live inside the plant and are reused by every micro-step,
/// the fan enters the integrator as a [`thermal_model::FanBoost`] step
/// parameter (no network clone), the online-core list is a fixed-size array
/// computed once per control interval, and the thermal ODE is advanced with a
/// cached [`StepTransition`] (the precomputed affine form of one RK4 step,
/// rebuilt only when the fan level or ambient changes).
#[derive(Debug, Clone)]
pub struct PhysicalPlant {
    spec: SocSpec,
    params: PlantPowerParams,
    thermal: ExynosThermalNetwork,
    node_temps_c: Vec<f64>,
    big_leak: LeakageModel,
    little_leak: LeakageModel,
    gpu_leak: LeakageModel,
    /// Integration step of the plant, much finer than the control interval.
    plant_dt_s: f64,
    /// Reusable per-node power-injection vector.
    node_powers: Vec<f64>,
    /// Reusable integrator scratch for [`StepTransition::apply`].
    step_tmp: Vec<f64>,
    /// Cached RK4 transition, keyed by the (fan boost, ambient) it was built
    /// for; rebuilt only when those change (fan steps are rare, ambient is
    /// constant within an experiment).
    transition: Option<CachedTransition>,
}

/// A [`StepTransition`] together with the key it was built for.
#[derive(Debug, Clone)]
struct CachedTransition {
    fan_boost_bits: u64,
    ambient_bits: u64,
    transition: StepTransition,
}

/// Quantities of the true power computation that stay constant over one
/// control interval (platform state and demand are held constant within an
/// interval, so only the temperature-dependent leakage terms vary per
/// micro-step). Shared between the scalar plant and the batched
/// [`crate::batch::BatchPlant`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct IntervalOps {
    pub(crate) active_is_big: bool,
    /// Voltage of the active cluster.
    pub(crate) volts: f64,
    /// Dynamic power of each online core, indexed by its slot in the online
    /// list (work streams spill over the online cores in order).
    pub(crate) slot_dynamic: [f64; 4],
    /// Cluster-shared (uncore) power of the big cluster (big active only).
    pub(crate) uncore: f64,
    /// Per-online-core share of the uncore power (big active only).
    pub(crate) uncore_share: f64,
    /// Uncore + dynamic part of the little-cluster total (little active only).
    pub(crate) little_base: f64,
    /// Lowest-OPP voltage of the power-gated cluster (residual leakage).
    pub(crate) idle_volts: f64,
    pub(crate) gpu_volts: f64,
    pub(crate) gpu_dynamic: f64,
    pub(crate) mem_power: f64,
}

pub(crate) fn scaled(params: LeakageParams, factor: f64) -> LeakageModel {
    LeakageModel::new(LeakageParams {
        c1: params.c1 * factor,
        c2: params.c2,
        igate_a: params.igate_a * factor,
    })
}

impl PhysicalPlant {
    /// Creates a plant for the given platform at the configured initial
    /// temperature.
    pub fn new(spec: SocSpec, params: PlantPowerParams) -> Self {
        let thermal = ExynosThermalNetwork::odroid_xu_e();
        let node_count = thermal.network().node_count();
        PhysicalPlant {
            node_temps_c: vec![params.initial_temp_c; node_count],
            big_leak: scaled(LeakageParams::exynos5410_big(), params.leakage_mismatch),
            little_leak: scaled(LeakageParams::exynos5410_little(), params.leakage_mismatch),
            gpu_leak: scaled(LeakageParams::exynos5410_gpu(), params.leakage_mismatch),
            spec,
            params,
            thermal,
            plant_dt_s: 0.01,
            node_powers: vec![0.0; node_count],
            step_tmp: vec![0.0; node_count],
            transition: None,
        }
    }

    /// The plant's power parameters.
    pub fn params(&self) -> &PlantPowerParams {
        &self.params
    }

    /// Current true hotspot temperatures, °C.
    pub fn core_temps_c(&self) -> [f64; 4] {
        self.thermal.hotspot_temps(&self.node_temps_c)
    }

    /// Current true temperature of every thermal node, °C.
    pub fn node_temps_c(&self) -> &[f64] {
        &self.node_temps_c
    }

    /// Resets every node to the given temperature (used by the furnace, which
    /// soaks the board at the ambient setpoint).
    pub fn reset_temps(&mut self, temp_c: f64) {
        for t in &mut self.node_temps_c {
            *t = temp_c;
        }
    }

    /// Precomputes everything about the true power computation that does not
    /// depend on the evolving temperatures. Platform state, demand and fan are
    /// held constant over a control interval, so this runs once per interval;
    /// only the leakage terms in [`PhysicalPlant::domain_powers_into`] remain
    /// in the per-micro-step path.
    fn interval_ops(
        &self,
        state: &PlatformState,
        demand: &Demand,
        online: &[usize],
    ) -> Result<IntervalOps, SimError> {
        compute_interval_ops(&self.spec, &self.params, state, demand, online)
    }

    /// True per-domain power at the current temperatures, written directly
    /// into the per-node power vector `node_powers`. Allocation-free:
    /// everything state/demand-dependent was precomputed by
    /// [`PhysicalPlant::interval_ops`]; this only evaluates the
    /// temperature-dependent leakage terms.
    ///
    /// A free function over split borrows so the caller can keep mutable
    /// references to the plant's reusable buffers while it runs.
    #[allow(clippy::too_many_arguments)]
    fn domain_powers_into(
        thermal: &ExynosThermalNetwork,
        node_temps_c: &[f64],
        big_leak: &LeakageModel,
        little_leak: &LeakageModel,
        gpu_leak: &LeakageModel,
        params: &PlantPowerParams,
        ops: &IntervalOps,
        online_mask: &[bool; 4],
        node_powers: &mut [f64],
    ) -> DomainPower {
        let core_nodes = thermal.big_core_nodes();
        let case_temp = node_temps_c[thermal.case_node().0];
        let gpu_node = thermal.gpu_node().0;
        // Batched, branch-free leakage for every domain: the divisions
        // vectorise and the exp latency chains overlap (bit-identical to the
        // equivalent scalar `current_a` calls).
        let currents = power_model::currents_batch(
            [
                big_leak,
                big_leak,
                big_leak,
                big_leak,
                little_leak,
                gpu_leak,
            ],
            [
                node_temps_c[core_nodes[0].0],
                node_temps_c[core_nodes[1].0],
                node_temps_c[core_nodes[2].0],
                node_temps_c[core_nodes[3].0],
                case_temp,
                node_temps_c[gpu_node],
            ],
        );
        let core_currents = [currents[0], currents[1], currents[2], currents[3]];

        let mut big_total = 0.0;
        let little_total;

        if ops.active_is_big {
            big_total += ops.uncore;
            let mut slot = 0;
            for core in 0..4 {
                let node = core_nodes[core].0;
                if online_mask[core] {
                    let dynamic = ops.slot_dynamic[slot];
                    slot += 1;
                    let leak = ops.volts * core_currents[core] / 4.0;
                    node_powers[node] = dynamic + leak + ops.uncore_share;
                    big_total += dynamic + leak;
                } else {
                    // Offline cores still leak a gated fraction.
                    let leak =
                        ops.volts * core_currents[core] / 4.0 * params.gated_leakage_fraction;
                    node_powers[node] = leak;
                    big_total += leak;
                }
            }
            little_total = ops.idle_volts * currents[4] * params.gated_leakage_fraction;
        } else {
            little_total = ops.little_base + ops.volts * currents[4];
            for core in 0..4 {
                let node = core_nodes[core].0;
                let leak =
                    ops.idle_volts * core_currents[core] / 4.0 * params.gated_leakage_fraction;
                node_powers[node] = leak;
                big_total += leak;
            }
        }

        let gpu_power = ops.gpu_dynamic + ops.gpu_volts * currents[5];

        node_powers[thermal.little_node().0] = little_total;
        node_powers[gpu_node] = gpu_power;
        node_powers[thermal.memory_node().0] = ops.mem_power;
        node_powers[thermal.case_node().0] = 0.0;

        DomainPower::new(big_total, little_total, gpu_power, ops.mem_power)
    }

    /// CPU work completed per second for the given state and demand.
    ///
    /// Real applications are not perfectly frequency-scalable: memory-bound
    /// phases progress at (almost) the same rate regardless of the CPU clock.
    /// The demand's `frequency_scalability` interpolates between a fully
    /// memory-bound (0) and a fully compute-bound (1) workload, which is what
    /// keeps the paper's performance loss small even when the DTPM algorithm
    /// throttles the frequency.
    fn throughput_units_per_s(&self, state: &PlatformState, demand: &Demand) -> f64 {
        throughput_units_per_s(&self.spec, state, demand)
    }

    /// Advances the plant by one control interval of `interval_s` seconds with
    /// the platform state, workload demand and fan level held constant.
    ///
    /// # Errors
    ///
    /// Returns an error if the platform state uses unsupported frequencies or
    /// the thermal integration fails.
    pub fn step_interval(
        &mut self,
        state: &PlatformState,
        demand: &Demand,
        fan_level: FanLevel,
        ambient_c: f64,
        interval_s: f64,
    ) -> Result<PlantStep, SimError> {
        if !(interval_s > 0.0) {
            return Err(SimError::InvalidConfig("control interval must be positive"));
        }
        // The fan enters the integrator as a step parameter — no network
        // clone — and the RK4 transition for this (fan, ambient) pair is
        // cached across intervals.
        let boost_w_per_k = self.spec.fan().conductance_boost_w_per_k(fan_level);
        let fan_boost = self.thermal.fan_boost(boost_w_per_k);
        let cache_valid = self.transition.as_ref().is_some_and(|cached| {
            cached.fan_boost_bits == boost_w_per_k.to_bits()
                && cached.ambient_bits == ambient_c.to_bits()
        });
        if !cache_valid {
            self.transition = Some(CachedTransition {
                fan_boost_bits: boost_w_per_k.to_bits(),
                ambient_bits: ambient_c.to_bits(),
                transition: self.thermal.network().step_transition(
                    fan_boost,
                    ambient_c,
                    self.plant_dt_s,
                )?,
            });
        }

        // Online cores of the active cluster, computed once per interval into
        // a fixed-size array (work streams spill over them in index order).
        let (online_buf, online_mask, online_count) = online_cores(state, state.active_cluster);
        let online = &online_buf[..online_count];
        let ops = self.interval_ops(state, demand, online)?;

        let steps = (interval_s / self.plant_dt_s).round().max(1.0) as usize;
        let mut power_accum = DomainPower::default();
        // Split the borrows: the power computation reads the models while the
        // integrator writes the reusable buffers.
        let PhysicalPlant {
            thermal,
            node_temps_c,
            big_leak,
            little_leak,
            gpu_leak,
            params,
            node_powers,
            step_tmp,
            transition,
            ..
        } = self;
        let transition = &transition
            .as_ref()
            .expect("transition cache was just filled")
            .transition;
        for _ in 0..steps {
            let domains = Self::domain_powers_into(
                thermal,
                node_temps_c,
                big_leak,
                little_leak,
                gpu_leak,
                params,
                &ops,
                &online_mask,
                node_powers,
            );
            power_accum = power_accum + domains;
            transition.apply(node_temps_c, node_powers, step_tmp);
        }
        let scale = 1.0 / steps as f64;
        let domain_power = DomainPower::new(
            power_accum.big_w * scale,
            power_accum.little_w * scale,
            power_accum.gpu_w * scale,
            power_accum.memory_w * scale,
        );
        let fan_power = self.spec.fan().power_w(fan_level);
        let platform_power_w = domain_power.total() + self.params.board_base_w + fan_power;
        let work_done = self.throughput_units_per_s(state, demand) * interval_s;

        Ok(PlantStep {
            domain_power,
            core_temps_c: self.core_temps_c(),
            platform_power_w,
            work_done,
        })
    }
}

/// The interval-constant part of the true power computation, shared between
/// the scalar [`PhysicalPlant`] and the batched [`crate::batch::BatchPlant`]
/// (which evaluates it once per lane per control interval).
pub(crate) fn compute_interval_ops(
    spec: &SocSpec,
    params: &PlantPowerParams,
    state: &PlatformState,
    demand: &Demand,
    online: &[usize],
) -> Result<IntervalOps, SimError> {
    let per_core_utilisation = |slot: usize| -> f64 {
        // Stream `slot` gets the leftover demand after earlier cores.
        (demand.cpu_streams - slot as f64).clamp(0.0, 1.0)
    };

    let mut slot_dynamic = [0.0f64; 4];
    let (active_is_big, volts, uncore, uncore_share, little_base, idle_volts) =
        match state.active_cluster {
            ClusterKind::Big => {
                let freq = state.big_frequency;
                let volts = spec.big_opps().voltage_for(freq)?.volts();
                let v2f = volts * volts * freq.hz();
                // Shared/uncore power (L2, interconnect, clock tree) of the
                // powered cluster: it dissipates on the die, so it is
                // spread across the online core nodes for the thermal
                // network.
                let uncore = params.big_uncore_ceff_f * v2f;
                let uncore_share = if online.is_empty() {
                    0.0
                } else {
                    uncore / online.len() as f64
                };
                for (slot, slot_dyn) in slot_dynamic.iter_mut().enumerate().take(online.len()) {
                    *slot_dyn = params.big_core_ceff_f
                        * demand.activity_factor
                        * per_core_utilisation(slot)
                        * v2f;
                }
                // The little cluster is power-gated.
                let lv = spec.little_opps().lowest().voltage.volts();
                (true, volts, uncore, uncore_share, 0.0, lv)
            }
            ClusterKind::Little => {
                let freq = state.little_frequency;
                let volts = spec.little_opps().voltage_for(freq)?.volts();
                let v2f = volts * volts * freq.hz();
                let little_base = params.little_uncore_ceff_f * v2f
                    + lv_cluster_dynamic(
                        params.little_core_ceff_f,
                        demand,
                        online,
                        v2f,
                        per_core_utilisation,
                    );
                // Big cluster gated: residual leakage only.
                let bv = spec.big_opps().lowest().voltage.volts();
                (false, volts, 0.0, 0.0, little_base, bv)
            }
        };

    let gpu_volts = spec.gpu_opps().voltage_for(state.gpu_frequency)?.volts();
    let gpu_dynamic = params.gpu_ceff_f
        * demand.gpu_utilization
        * gpu_volts
        * gpu_volts
        * state.gpu_frequency.hz();

    // Memory power: the measured floor plus the demand-proportional active
    // part. Memory leakage is folded into `memory_base_w` (the INA231 rail
    // measurement the floor was taken from includes it), so no leakage
    // model is evaluated for the memory domain.
    let mem_power = params.memory_base_w + params.memory_active_w * demand.memory_intensity;

    Ok(IntervalOps {
        active_is_big,
        volts,
        slot_dynamic,
        uncore,
        uncore_share,
        little_base,
        idle_volts,
        gpu_volts,
        gpu_dynamic,
        mem_power,
    })
}

/// Which cores of the active cluster are online, as (online list, per-core
/// mask, count). Work streams spill over the online list in index order.
pub(crate) fn online_cores(
    state: &PlatformState,
    active: soc_model::ClusterKind,
) -> ([usize; 4], [bool; 4], usize) {
    let mut online_buf = [0usize; 4];
    let mut online_mask = [false; 4];
    let mut online_count = 0;
    for (core, flag) in online_mask.iter_mut().enumerate() {
        if state.is_core_online(active, core) {
            online_buf[online_count] = core;
            *flag = true;
            online_count += 1;
        }
    }
    (online_buf, online_mask, online_count)
}

/// CPU work completed per second for the given state and demand (see
/// [`PhysicalPlant::throughput_units_per_s`]); shared with the batched plant
/// so both engines report bit-identical work.
pub(crate) fn throughput_units_per_s(
    spec: &SocSpec,
    state: &PlatformState,
    demand: &Demand,
) -> f64 {
    let active = state.active_cluster;
    let online = state.online_core_count(active) as f64;
    let streams = demand.cpu_streams.min(online);
    let cluster = spec.cluster(active);
    let freq_ghz = state.cluster_frequency(active).ghz();
    let max_ghz = cluster.opps.highest().frequency.ghz();
    let s = demand.frequency_scalability.clamp(0.0, 1.0);
    let effective_ghz = max_ghz * ((1.0 - s) + s * freq_ghz / max_ghz);
    streams * effective_ghz * cluster.performance_per_ghz
}

fn lv_cluster_dynamic(
    core_ceff: f64,
    demand: &Demand,
    online: &[usize],
    v2f: f64,
    per_core_utilisation: impl Fn(usize) -> f64,
) -> f64 {
    online
        .iter()
        .enumerate()
        .map(|(slot, _)| core_ceff * demand.activity_factor * per_core_utilisation(slot) * v2f)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use soc_model::Frequency;

    fn busy_demand() -> Demand {
        Demand {
            cpu_streams: 4.0,
            activity_factor: 0.95,
            gpu_utilization: 0.0,
            memory_intensity: 0.5,
            frequency_scalability: 1.0,
        }
    }

    fn light_demand() -> Demand {
        Demand {
            cpu_streams: 1.0,
            activity_factor: 0.45,
            gpu_utilization: 0.0,
            memory_intensity: 0.2,
            frequency_scalability: 1.0,
        }
    }

    fn plant() -> PhysicalPlant {
        PhysicalPlant::new(SocSpec::odroid_xu_e(), PlantPowerParams::default())
    }

    #[test]
    fn heavy_load_draws_several_watts_and_heats_up() {
        let spec = SocSpec::odroid_xu_e();
        let mut plant = plant();
        let state = PlatformState::default_for(&spec);
        let step = plant
            .step_interval(&state, &busy_demand(), FanLevel::Off, 28.0, 0.1)
            .unwrap();
        // A fully loaded A15 cluster draws somewhere around 3.5-6 W.
        assert!(
            (3.0..7.0).contains(&step.domain_power.big_w),
            "big cluster power {}",
            step.domain_power.big_w
        );
        assert!(step.platform_power_w > step.domain_power.total());
        assert!(step.work_done > 0.0);
        // Run for a simulated minute and confirm the cores heat up markedly.
        for _ in 0..600 {
            plant
                .step_interval(&state, &busy_demand(), FanLevel::Off, 28.0, 0.1)
                .unwrap();
        }
        let hottest = plant.core_temps_c().into_iter().fold(f64::MIN, f64::max);
        assert!(hottest > 60.0, "hottest core after 60 s: {hottest}");
    }

    #[test]
    fn light_load_draws_much_less_power() {
        let spec = SocSpec::odroid_xu_e();
        let mut plant = plant();
        let state = PlatformState::default_for(&spec);
        let heavy = plant
            .step_interval(&state, &busy_demand(), FanLevel::Off, 28.0, 0.1)
            .unwrap();
        let light = plant
            .step_interval(&state, &light_demand(), FanLevel::Off, 28.0, 0.1)
            .unwrap();
        assert!(light.domain_power.big_w < 0.5 * heavy.domain_power.big_w);
    }

    #[test]
    fn lower_frequency_reduces_power_and_throughput() {
        let spec = SocSpec::odroid_xu_e();
        let mut plant = plant();
        let mut state = PlatformState::default_for(&spec);
        let fast = plant
            .step_interval(&state, &busy_demand(), FanLevel::Off, 28.0, 0.1)
            .unwrap();
        state.set_cluster_frequency(ClusterKind::Big, Frequency::from_mhz(800));
        let slow = plant
            .step_interval(&state, &busy_demand(), FanLevel::Off, 28.0, 0.1)
            .unwrap();
        assert!(slow.domain_power.big_w < 0.55 * fast.domain_power.big_w);
        assert!((slow.work_done - fast.work_done * 0.5).abs() < 1e-9);
    }

    #[test]
    fn fan_cools_the_cores() {
        let spec = SocSpec::odroid_xu_e();
        let state = PlatformState::default_for(&spec);
        let mut no_fan = plant();
        let mut with_fan = plant();
        for _ in 0..1200 {
            no_fan
                .step_interval(&state, &busy_demand(), FanLevel::Off, 28.0, 0.1)
                .unwrap();
            with_fan
                .step_interval(&state, &busy_demand(), FanLevel::Full, 28.0, 0.1)
                .unwrap();
        }
        let hot_no_fan = no_fan.core_temps_c()[0];
        let hot_with_fan = with_fan.core_temps_c()[0];
        assert!(
            hot_with_fan < hot_no_fan - 5.0,
            "fan must cool: {hot_no_fan} vs {hot_with_fan}"
        );
    }

    #[test]
    fn little_cluster_uses_far_less_power_than_big() {
        let spec = SocSpec::odroid_xu_e();
        let mut plant = plant();
        let mut state = PlatformState::default_for(&spec);
        let big = plant
            .step_interval(&state, &busy_demand(), FanLevel::Off, 28.0, 0.1)
            .unwrap();
        state.migrate_to_cluster(ClusterKind::Little, Frequency::from_mhz(1200));
        let little = plant
            .step_interval(&state, &busy_demand(), FanLevel::Off, 28.0, 0.1)
            .unwrap();
        let big_cpu_total = big.domain_power.big_w + big.domain_power.little_w;
        let little_cpu_total = little.domain_power.big_w + little.domain_power.little_w;
        assert!(little_cpu_total < 0.35 * big_cpu_total);
        // The big cluster also delivers more work per interval.
        assert!(big.work_done > 2.0 * little.work_done);
    }

    #[test]
    fn gpu_demand_adds_gpu_power() {
        let spec = SocSpec::odroid_xu_e();
        let mut plant = plant();
        let mut state = PlatformState::default_for(&spec);
        state.gpu_frequency = Frequency::from_mhz(533);
        let mut demand = busy_demand();
        demand.gpu_utilization = 0.8;
        let with_gpu = plant
            .step_interval(&state, &demand, FanLevel::Off, 28.0, 0.1)
            .unwrap();
        demand.gpu_utilization = 0.0;
        let without_gpu = plant
            .step_interval(&state, &demand, FanLevel::Off, 28.0, 0.1)
            .unwrap();
        assert!(with_gpu.domain_power.gpu_w > without_gpu.domain_power.gpu_w + 0.2);
    }

    #[test]
    fn core_shutdown_reduces_cluster_power() {
        let spec = SocSpec::odroid_xu_e();
        let mut plant = plant();
        let mut state = PlatformState::default_for(&spec);
        let all_cores = plant
            .step_interval(&state, &busy_demand(), FanLevel::Off, 28.0, 0.1)
            .unwrap();
        state.set_core_online(ClusterKind::Big, 3, false);
        let three_cores = plant
            .step_interval(&state, &busy_demand(), FanLevel::Off, 28.0, 0.1)
            .unwrap();
        assert!(three_cores.domain_power.big_w < all_cores.domain_power.big_w - 0.5);
        assert!(three_cores.work_done < all_cores.work_done);
    }

    #[test]
    fn dijkstra_like_load_reaches_high_fifties() {
        // Calibration check: a low-activity benchmark should settle in the
        // mid-to-high 50s (Figure 6.6 shows the default configuration around
        // 57-70 degC), well below the matrix-multiplication case.
        let spec = SocSpec::odroid_xu_e();
        let mut plant = plant();
        let state = PlatformState::default_for(&spec);
        let demand = Demand {
            cpu_streams: 1.2,
            activity_factor: 0.50,
            gpu_utilization: 0.0,
            memory_intensity: 0.5,
            frequency_scalability: 0.6,
        };
        for _ in 0..4000 {
            plant
                .step_interval(&state, &demand, FanLevel::Off, 28.0, 0.1)
                .unwrap();
        }
        let hottest = plant.core_temps_c().into_iter().fold(f64::MIN, f64::max);
        assert!(
            (48.0..68.0).contains(&hottest),
            "low-activity steady temperature {hottest}"
        );
    }

    #[test]
    fn reset_temps_resets_every_node() {
        let mut plant = plant();
        plant.reset_temps(60.0);
        assert!(plant.node_temps_c().iter().all(|&t| t == 60.0));
        assert_eq!(plant.core_temps_c(), [60.0; 4]);
    }

    #[test]
    fn rejects_non_positive_interval() {
        let spec = SocSpec::odroid_xu_e();
        let mut plant = plant();
        let state = PlatformState::default_for(&spec);
        assert!(plant
            .step_interval(&state, &light_demand(), FanLevel::Off, 28.0, 0.0)
            .is_err());
    }
}

//! The robustness layer for long campaigns: checkpoint/resume, deterministic
//! shard merge, and cell-level fault containment.
//!
//! A production-scale campaign (the ROADMAP's million-cell fleet sweeps)
//! runs for hours; without this module a single panicking cell, a runaway
//! run, or a killed process throws the whole campaign away. The grid
//! substrate already provides everything containment needs — cells are
//! addressed by linear index with order-independent SplitMix64 seeds
//! ([`crate::campaign::SweepSpec`]) — so resilience is purely additive:
//!
//! * **Containment** (hooks in the sweep executor, policy here): every
//!   per-cell control-loop call in the worker loop runs under
//!   `catch_unwind`, so a panicking cell retires with a structured
//!   [`crate::SimError::Panicked`] instead of unwinding the worker (and the
//!   result sink recovers from mutex poisoning rather than deadlocking
//!   siblings). A [`ResiliencePolicy`] adds bounded deterministic retry —
//!   the cell is re-admitted from scratch with its seed-stable
//!   configuration, no RNG state involved — and poison-cell quarantine when
//!   the retry budget is spent, plus a cooperative per-cell deadline
//!   (interval-count watchdog) that cancels runaway cells cleanly with
//!   [`crate::SimError::Deadline`].
//! * **Checkpoint/resume** ([`checkpoint`]): a [`CheckpointSink`] wraps any
//!   [`crate::ResultSink`] and atomically (temp file + rename) persists a
//!   [`CampaignCheckpoint`] — completed-cell bitmap plus merged
//!   summary/Welford partials and incident counts — every N completed
//!   cells. [`crate::CampaignRunner::resume_from`] skips completed cells;
//!   because the merge folds per-cell stats in canonical index order, the
//!   resumed campaign's merged output is bit-identical to an uninterrupted
//!   run no matter where the kill landed.
//! * **Sharding + merge** ([`shard`], [`merge`]): a [`ShardSpec`] is a
//!   [`crate::SweepSpec`] plus a contiguous cell-index range; each shard
//!   streams into its own [`MergeSink`], and
//!   [`MergeSink::merge_all`] combines any number of shard sinks —
//!   via the exactly-commutative [`numeric::stats::Welford::merge`], folded
//!   in canonical range order — into aggregates independent of shard
//!   arrival order.
//!
//! Determinism is the design invariant throughout: retries re-derive the
//! identical cell (seeds are a pure function of the campaign seed and cell
//! index), merges fold in canonical cell order, and the checkpoint wire
//! format stores floats as exact bit patterns — so "resumed", "sharded" and
//! "uninterrupted" describe the same numbers.

use serde::{Deserialize, Serialize};

use crate::error::SimError;

pub mod checkpoint;
pub mod merge;
pub mod shard;

pub use checkpoint::{CampaignCheckpoint, CellBitmap, CheckpointSink};
pub use merge::{CampaignAggregate, CellFailure, CellOutcome, CellStats, MergeSink};
pub use shard::{ShardRunner, ShardSpec};

/// Containment policy for a sweep or campaign: how many times a transiently
/// failing cell is retried before quarantine, and the cooperative per-cell
/// deadline. The default (no retries, no deadline) keeps every existing
/// sweep bit-identical — panic containment itself is always on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ResiliencePolicy {
    /// How many times a cell that failed with a retryable error
    /// ([`SimError::Panicked`] / [`SimError::Deadline`]) is re-admitted
    /// from scratch before being quarantined with its final error. Retries
    /// are deterministic: the cell's configuration (and therefore its seed)
    /// is re-derived identically — no RNG state is consulted.
    pub max_retries: u32,
    /// Cooperative per-cell deadline in control intervals: a cell still
    /// running after this many absorbed intervals is cancelled with
    /// [`SimError::Deadline`] at the next interval boundary (`None`: no
    /// deadline). This is the watchdog for runaway cells whose duration cap
    /// is far larger than their expected run length.
    pub deadline_intervals: Option<usize>,
}

impl ResiliencePolicy {
    /// A policy retrying retryable failures up to `max_retries` times.
    #[must_use]
    pub fn with_max_retries(mut self, max_retries: u32) -> Self {
        self.max_retries = max_retries;
        self
    }

    /// A policy cancelling cells after `intervals` absorbed control
    /// intervals.
    #[must_use]
    pub fn with_deadline_intervals(mut self, intervals: usize) -> Self {
        self.deadline_intervals = Some(intervals);
        self
    }

    /// Whether a failure is worth re-running the cell for: contained panics
    /// and deadline cancellations are (they may be environmental); model and
    /// configuration errors are deterministic and are not.
    pub fn is_retryable(error: &SimError) -> bool {
        matches!(error, SimError::Panicked(_) | SimError::Deadline { .. })
    }

    /// Whether a cell that has absorbed `intervals` intervals has exceeded
    /// the deadline.
    pub(crate) fn exceeds_deadline(&self, intervals: usize) -> bool {
        self.deadline_intervals
            .is_some_and(|deadline| intervals >= deadline)
    }
}

/// Deterministic executor-fault injection for testing the containment
/// machinery — the control-flow analogue of [`crate::faults::FaultPlan`]
/// (which corrupts sensor data, never control flow). A plan makes the
/// cell's control loop panic at a declared interval, optionally "healing"
/// after a number of retry attempts so bounded retry can be exercised
/// end-to-end. Entirely inert by default and on every healthy cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ChaosPlan {
    /// Panic when the control loop stages the decision of this interval.
    pub panic_at_interval: Option<usize>,
    /// The injected failure stops firing once `attempt` reaches this count
    /// (0: already healed, `u32::MAX`: never heals). Lets tests model a
    /// transient fault that a retry survives.
    pub heal_after_attempts: u32,
    /// Which execution attempt of the cell this is; stamped by the sweep's
    /// retry machinery (0 on first admission, 1 on the first retry, …).
    pub attempt: u32,
}

impl ChaosPlan {
    /// A plan that panics at the given interval on every attempt.
    pub fn panic_at(interval: usize) -> ChaosPlan {
        ChaosPlan {
            panic_at_interval: Some(interval),
            heal_after_attempts: u32::MAX,
            attempt: 0,
        }
    }

    /// The same plan healed after the given number of failed attempts: the
    /// fault stops firing once that many attempts have failed, so a retry
    /// budget of at least `attempts` lets the cell complete.
    #[must_use]
    pub fn healing_after(mut self, attempts: u32) -> ChaosPlan {
        self.heal_after_attempts = attempts;
        self
    }

    /// Fires the injected panic if this interval (and attempt) is faulted.
    pub(crate) fn maybe_panic(&self, interval: usize) {
        if self.attempt < self.heal_after_attempts && self.panic_at_interval == Some(interval) {
            panic!(
                "chaos plan: injected panic at interval {interval} (attempt {})",
                self.attempt
            );
        }
    }
}

/// The checkpoint/shard wire format's primitive encoders: floats travel as
/// exact 64-bit patterns (hex), strings as hex-encoded UTF-8 — nothing is
/// rounded, escaped or locale-dependent, so decode(encode(x)) is bit-exact.
pub(crate) mod wire {
    use crate::error::SimError;

    /// A malformed-input decode error.
    pub(crate) fn malformed(what: impl std::fmt::Display) -> SimError {
        SimError::Io(format!("malformed checkpoint data: {what}"))
    }

    /// Encodes an `f64` as its exact bit pattern (16 hex digits).
    pub(crate) fn fmt_f64(x: f64) -> String {
        format!("{:016x}", x.to_bits())
    }

    /// Decodes an [`fmt_f64`]-encoded float, bit-exactly.
    pub(crate) fn parse_f64(s: &str) -> Result<f64, SimError> {
        u64::from_str_radix(s, 16)
            .map(f64::from_bits)
            .map_err(|_| malformed(format!("bad f64 bits {s:?}")))
    }

    /// Decodes a decimal `usize`.
    pub(crate) fn parse_usize(s: &str) -> Result<usize, SimError> {
        s.parse().map_err(|_| malformed(format!("bad count {s:?}")))
    }

    /// Decodes a hex `u64` (fingerprints, bitmap words).
    pub(crate) fn parse_u64_hex(s: &str) -> Result<u64, SimError> {
        u64::from_str_radix(s, 16).map_err(|_| malformed(format!("bad u64 bits {s:?}")))
    }

    /// Encodes a string as hex UTF-8 bytes (newline- and delimiter-safe).
    pub(crate) fn fmt_str(s: &str) -> String {
        let mut out = String::with_capacity(s.len() * 2);
        for byte in s.bytes() {
            out.push_str(&format!("{byte:02x}"));
        }
        if out.is_empty() {
            // A bare marker so empty strings still occupy a field.
            out.push('-');
        }
        out
    }

    /// Decodes an [`fmt_str`]-encoded string.
    pub(crate) fn parse_str(s: &str) -> Result<String, SimError> {
        if s == "-" {
            return Ok(String::new());
        }
        if !s.len().is_multiple_of(2) {
            return Err(malformed(format!("odd-length string field {s:?}")));
        }
        let mut bytes = Vec::with_capacity(s.len() / 2);
        for k in (0..s.len()).step_by(2) {
            let byte = u8::from_str_radix(&s[k..k + 2], 16)
                .map_err(|_| malformed(format!("bad string byte {:?}", &s[k..k + 2])))?;
            bytes.push(byte);
        }
        String::from_utf8(bytes).map_err(|_| malformed("string field is not UTF-8"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_defaults_are_inert() {
        let policy = ResiliencePolicy::default();
        assert_eq!(policy.max_retries, 0);
        assert_eq!(policy.deadline_intervals, None);
        assert!(!policy.exceeds_deadline(usize::MAX));
        let armed = ResiliencePolicy::default()
            .with_max_retries(2)
            .with_deadline_intervals(10);
        assert!(armed.exceeds_deadline(10));
        assert!(!armed.exceeds_deadline(9));
    }

    #[test]
    fn retryability_is_limited_to_containment_errors() {
        assert!(ResiliencePolicy::is_retryable(&SimError::Panicked(
            "boom".into()
        )));
        assert!(ResiliencePolicy::is_retryable(&SimError::Deadline {
            intervals: 5
        }));
        assert!(!ResiliencePolicy::is_retryable(&SimError::Thermal(
            "diverged".into()
        )));
        assert!(!ResiliencePolicy::is_retryable(&SimError::InvalidConfig(
            "bad"
        )));
    }

    #[test]
    fn chaos_plans_fire_and_heal_deterministically() {
        let plan = ChaosPlan::panic_at(3);
        plan.maybe_panic(2); // other intervals never fire
        let healed = ChaosPlan::panic_at(3).healing_after(1);
        let mut retried = healed;
        retried.attempt = 1;
        retried.maybe_panic(3); // attempt past the healing bound: inert
        assert!(ChaosPlan::default().panic_at_interval.is_none());
    }

    #[test]
    #[should_panic(expected = "injected panic at interval 3")]
    fn chaos_plans_panic_inside_the_window() {
        ChaosPlan::panic_at(3).maybe_panic(3);
    }

    #[test]
    fn wire_round_trips_are_bit_exact() {
        for x in [
            0.0,
            -0.0,
            1.5,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::MIN_POSITIVE,
            std::f64::consts::PI,
        ] {
            let back = wire::parse_f64(&wire::fmt_f64(x)).expect("round trip");
            assert_eq!(back.to_bits(), x.to_bits(), "{x}");
        }
        let nan = wire::parse_f64(&wire::fmt_f64(f64::NAN)).expect("round trip");
        assert_eq!(nan.to_bits(), f64::NAN.to_bits());
        for s in ["", "plain", "with spaces\nand newlines", "ünïcode"] {
            assert_eq!(wire::parse_str(&wire::fmt_str(s)).expect("round trip"), s);
        }
        assert!(wire::parse_f64("xyz").is_err());
        assert!(wire::parse_str("abc").is_err(), "odd length rejected");
        assert!(wire::parse_usize("-3").is_err());
    }
}

//! Campaign sharding: contiguous cell-index slices of one grid, runnable on
//! independent workers (processes, machines, sessions) and merged back
//! deterministically.
//!
//! Because cells are addressed by linear index with order-independent seeds
//! ([`SweepSpec::cell_seed`]), a shard needs nothing beyond the shared spec
//! and its index range: every shard derives exactly the cells it owns, and
//! the union of shards is exactly the campaign. Each shard streams into its
//! own [`MergeSink`]; [`MergeSink::merge_all`] then folds any arrival order
//! of completed shard sinks into aggregates bit-identical to every other
//! arrival order.

use serde::{Deserialize, Serialize};

use super::merge::MergeSink;
use super::ResiliencePolicy;
use crate::calibrate::Calibration;
use crate::campaign::SweepSpec;
use crate::experiment::ResultSink;
use crate::observer::TracePolicy;

/// One contiguous slice of a campaign grid: the shared [`SweepSpec`] plus
/// the half-open cell-index range this shard owns. Serde-able, so a driver
/// can hand shards to remote workers as small values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardSpec {
    /// The campaign grid every shard shares.
    pub spec: SweepSpec,
    /// First cell index this shard owns.
    pub start: usize,
    /// One past the last cell index this shard owns.
    pub end: usize,
}

impl ShardSpec {
    /// A shard owning cells `[start, end)` of `spec`'s grid.
    ///
    /// # Panics
    ///
    /// Panics if the range is inverted or reaches past the grid.
    pub fn new(spec: SweepSpec, start: usize, end: usize) -> ShardSpec {
        assert!(start <= end, "inverted shard range");
        assert!(end <= spec.cells(), "shard range reaches past the grid");
        ShardSpec { spec, start, end }
    }

    /// Splits a campaign into `shards` contiguous, near-equal slices that
    /// exactly cover the grid (the first `cells % shards` slices hold one
    /// extra cell). Slices can be empty when `shards` exceeds the cell
    /// count.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn split(spec: &SweepSpec, shards: usize) -> Vec<ShardSpec> {
        assert!(shards > 0, "a campaign needs at least one shard");
        let cells = spec.cells();
        let (base, extra) = (cells / shards, cells % shards);
        let mut out = Vec::with_capacity(shards);
        let mut start = 0;
        for k in 0..shards {
            let end = start + base + usize::from(k < extra);
            out.push(ShardSpec::new(spec.clone(), start, end));
            start = end;
        }
        out
    }

    /// The number of cells this shard owns.
    pub fn cells(&self) -> usize {
        self.end - self.start
    }

    /// The global cell indices this shard owns, in ascending order.
    pub fn indices(&self) -> Vec<usize> {
        (self.start..self.end).collect()
    }

    /// A fresh [`MergeSink`] covering exactly this shard's range.
    pub fn merge_sink(&self) -> MergeSink {
        MergeSink::new(self.start..self.end)
    }

    /// A runner for this shard (same defaults as [`SweepSpec::runner`]).
    pub fn runner(&self) -> ShardRunner<'_> {
        let campaign = self.spec.runner();
        ShardRunner {
            shard: self,
            threads: campaign.threads().min(self.cells()).max(1),
            lanes: campaign.lanes(),
            recording: campaign.recording(),
            resilience: ResiliencePolicy::default(),
        }
    }
}

/// Executes one [`ShardSpec`] through the sweep scheduler, mirroring
/// [`crate::CampaignRunner`]'s knobs. Results carry *global* cell indices,
/// so any [`ResultSink`] — most usefully the shard's own
/// [`ShardSpec::merge_sink`] — sees the same addressing as a whole-campaign
/// run.
#[derive(Debug, Clone)]
pub struct ShardRunner<'a> {
    shard: &'a ShardSpec,
    threads: usize,
    lanes: usize,
    recording: TracePolicy,
    resilience: ResiliencePolicy,
}

impl ShardRunner<'_> {
    /// Overrides the worker-thread count (clamped to at least one).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Sets the batch width (lanes per worker panel engine).
    #[must_use]
    pub fn with_lanes(mut self, lanes: usize) -> Self {
        self.lanes = lanes.max(1);
        self
    }

    /// Sets what each cell's run retains per interval.
    #[must_use]
    pub fn with_recording(mut self, recording: TracePolicy) -> Self {
        self.recording = recording;
        self
    }

    /// Sets the containment policy (retry budget, per-cell deadline).
    #[must_use]
    pub fn with_resilience(mut self, resilience: ResiliencePolicy) -> Self {
        self.resilience = resilience;
        self
    }

    /// Runs every cell of the shard, pushing each report into `sink` tagged
    /// with its global cell index.
    pub fn run_into<S>(&self, calibration: &Calibration, sink: &mut S)
    where
        S: ResultSink + Send + ?Sized,
    {
        self.shard
            .spec
            .runner()
            .with_threads(self.threads)
            .with_lanes(self.lanes)
            .with_recording(self.recording)
            .with_resilience(self.resilience)
            .run_indices_into(&self.shard.indices(), calibration, sink);
    }

    /// Runs the shard into a fresh [`ShardSpec::merge_sink`] and returns the
    /// completed sink, ready for [`MergeSink::merge_all`].
    pub fn run(&self, calibration: &Calibration) -> MergeSink {
        let mut sink = self.shard.merge_sink();
        self.run_into(calibration, &mut sink);
        sink
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::ExperimentKind;
    use workload::BenchmarkId;

    fn spec() -> SweepSpec {
        SweepSpec::new(
            vec![ExperimentKind::Dtpm],
            vec![BenchmarkId::Crc32, BenchmarkId::Qsort],
        )
        .with_replicates(5)
    }

    #[test]
    fn split_covers_the_grid_contiguously_and_near_equally() {
        let spec = spec();
        assert_eq!(spec.cells(), 10);
        for shards in [1, 2, 3, 4, 7, 10, 13] {
            let split = ShardSpec::split(&spec, shards);
            assert_eq!(split.len(), shards);
            assert_eq!(split[0].start, 0);
            assert_eq!(split.last().expect("non-empty").end, spec.cells());
            for pair in split.windows(2) {
                assert_eq!(pair[0].end, pair[1].start, "contiguous");
            }
            let sizes: Vec<usize> = split.iter().map(ShardSpec::cells).collect();
            let (min, max) = (
                sizes.iter().min().expect("non-empty"),
                sizes.iter().max().expect("non-empty"),
            );
            assert!(max - min <= 1, "near-equal split: {sizes:?}");
            assert_eq!(sizes.iter().sum::<usize>(), spec.cells());
        }
    }

    #[test]
    fn shards_expose_their_indices_and_sinks() {
        let shard = ShardSpec::new(spec(), 3, 7);
        assert_eq!(shard.cells(), 4);
        assert_eq!(shard.indices(), vec![3, 4, 5, 6]);
        assert_eq!(shard.merge_sink().range(), 3..7);
        let runner = shard.runner();
        assert!(runner.threads >= 1);
    }

    #[test]
    #[should_panic(expected = "past the grid")]
    fn shards_cannot_reach_past_the_grid() {
        ShardSpec::new(spec(), 0, 11);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_is_rejected() {
        ShardSpec::split(&spec(), 0);
    }
}

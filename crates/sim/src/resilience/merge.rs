//! Deterministic, order-independent merging of campaign result streams.
//!
//! Floating-point accumulation is order-sensitive, so "merge results from
//! wherever they arrive" and "bit-identical aggregates" only coexist with a
//! canonical fold order. The [`MergeSink`] provides one: it buffers
//! arriving per-cell statistics and folds them into its running
//! [`CampaignAggregate`] strictly in cell-index order — cells are globally
//! indexed by the grid ([`crate::SweepSpec::cell`]), so the fold order is a
//! property of the campaign, not of scheduling, kill points, or shard
//! arrival. Across shards, whole aggregates combine through the exactly
//! commutative [`numeric::stats::Welford::merge`] in canonical range order
//! ([`MergeSink::merge_all`]), giving the same bits for every shard
//! arrival permutation.

use std::collections::BTreeMap;
use std::ops::Range;

use numeric::stats::Welford;
use serde::{Deserialize, Serialize};

use super::wire;
use crate::error::SimError;
use crate::experiment::{ResultSink, RunReport};
use crate::metrics::RunSummary;

/// How many quarantined-cell failures a sink retains verbatim (the count is
/// always exact; only the retained details are capped, so a pathological
/// campaign cannot grow the checkpoint without bound).
const RETAINED_FAILURES: usize = 64;

/// The O(1) aggregation projection of one completed cell's [`RunSummary`]:
/// everything the campaign-level statistics fold over, nothing per-interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CellStats {
    /// Whether the benchmark ran to completion within its duration cap.
    pub completed: bool,
    /// Execution time, seconds.
    pub execution_time_s: f64,
    /// Absorbed control intervals.
    pub intervals: usize,
    /// Total platform energy, joules.
    pub energy_j: f64,
    /// Mean platform power, watts.
    pub mean_platform_power_w: f64,
    /// Mean hot-spot temperature, °C.
    pub mean_temp_c: f64,
    /// Peak hot-spot temperature, °C.
    pub peak_temp_c: f64,
    /// Fraction of intervals the policy intervened in.
    pub intervention_rate: f64,
    /// Safety-ladder escalations recorded by the run.
    pub escalations: usize,
    /// Sensor-fault episodes recorded by the run.
    pub sensor_faults: usize,
    /// Whether the safety ladder's terminal rung retired the run.
    pub shut_down: bool,
}

impl From<&RunSummary> for CellStats {
    fn from(summary: &RunSummary) -> CellStats {
        CellStats {
            completed: summary.completed,
            execution_time_s: summary.execution_time_s,
            intervals: summary.intervals,
            energy_j: summary.energy_j,
            mean_platform_power_w: summary.mean_platform_power_w,
            mean_temp_c: summary.stability.mean_temp_c,
            peak_temp_c: summary.stability.peak_temp_c,
            intervention_rate: summary.intervention_rate,
            escalations: summary.incidents.escalations(),
            sensor_faults: summary.incidents.sensor_faults(),
            shut_down: summary.incidents.shut_down(),
        }
    }
}

/// A quarantined cell: the structured record a failing cell leaves behind
/// while the campaign continues without it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CellFailure {
    /// The cell's linear grid index.
    pub index: usize,
    /// The final [`SimError`] rendered as text (the error after the retry
    /// budget was spent, for retryable failures).
    pub error: String,
}

/// One cell's terminal outcome in the merge stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CellOutcome {
    /// The cell ran; its aggregation projection.
    Completed(CellStats),
    /// The cell was quarantined with a structured failure.
    Failed(CellFailure),
}

impl CellOutcome {
    /// The canonical projection from a run outcome to a cell outcome —
    /// every sink that feeds a merge fold (in-process or over a distributed
    /// transport) funnels through here, so the folded bits cannot depend on
    /// where the cell ran.
    pub(crate) fn from_run(index: usize, outcome: Result<RunReport, SimError>) -> CellOutcome {
        match outcome {
            Ok(report) => CellOutcome::Completed(CellStats::from(&report.summary)),
            Err(error) => CellOutcome::Failed(CellFailure {
                index,
                error: error.to_string(),
            }),
        }
    }
}

/// Campaign-level merged statistics: counts, totals, and Welford
/// accumulators over the per-cell summaries, maintained by [`MergeSink`] in
/// canonical cell order. Two aggregates over disjoint index ranges combine
/// exactly commutatively through [`CampaignAggregate::merge`].
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct CampaignAggregate {
    /// Cells folded into this aggregate (successes and failures).
    pub cells: usize,
    /// Cells whose benchmark ran to completion.
    pub completed_runs: usize,
    /// Cells quarantined with a failure.
    pub failed_cells: usize,
    /// Cells retired by the safety ladder's terminal rung.
    pub shutdowns: usize,
    /// Total absorbed control intervals across all folded cells.
    pub total_intervals: usize,
    /// Total safety-ladder escalations across all folded cells.
    pub escalations: usize,
    /// Total sensor-fault episodes across all folded cells.
    pub sensor_faults: usize,
    /// Total platform energy across all folded cells, joules.
    pub total_energy_j: f64,
    /// Per-cell energy distribution, joules.
    pub energy_j: Welford,
    /// Per-cell mean-platform-power distribution, watts.
    pub mean_power_w: Welford,
    /// Per-cell execution-time distribution, seconds.
    pub execution_time_s: Welford,
    /// Per-cell peak-temperature distribution, °C.
    pub peak_temp_c: Welford,
    /// Per-cell mean-temperature distribution, °C.
    pub mean_temp_c: Welford,
}

impl CampaignAggregate {
    /// Folds one cell outcome into the running statistics. The caller fixes
    /// the fold order (the merge sink folds strictly by cell index).
    pub fn fold_cell(&mut self, outcome: &CellOutcome) {
        self.cells += 1;
        match outcome {
            CellOutcome::Completed(stats) => {
                if stats.completed {
                    self.completed_runs += 1;
                }
                if stats.shut_down {
                    self.shutdowns += 1;
                }
                self.total_intervals += stats.intervals;
                self.escalations += stats.escalations;
                self.sensor_faults += stats.sensor_faults;
                self.total_energy_j += stats.energy_j;
                self.energy_j.push(stats.energy_j);
                self.mean_power_w.push(stats.mean_platform_power_w);
                self.execution_time_s.push(stats.execution_time_s);
                self.peak_temp_c.push(stats.peak_temp_c);
                self.mean_temp_c.push(stats.mean_temp_c);
            }
            CellOutcome::Failed(_) => self.failed_cells += 1,
        }
    }

    /// Combines two aggregates over disjoint cell sets (Chan et al. merge on
    /// every Welford accumulator, exact sums elsewhere). Exactly commutative
    /// — [`Welford::merge`] canonicalises its operands and f64 addition is
    /// commutative — so pairwise shard combination gives the same bits in
    /// either order; [`MergeSink::merge_all`] additionally fixes the fold
    /// order across *many* shards by sorting on range start.
    #[must_use]
    pub fn merge(&self, other: &CampaignAggregate) -> CampaignAggregate {
        CampaignAggregate {
            cells: self.cells + other.cells,
            completed_runs: self.completed_runs + other.completed_runs,
            failed_cells: self.failed_cells + other.failed_cells,
            shutdowns: self.shutdowns + other.shutdowns,
            total_intervals: self.total_intervals + other.total_intervals,
            escalations: self.escalations + other.escalations,
            sensor_faults: self.sensor_faults + other.sensor_faults,
            total_energy_j: self.total_energy_j + other.total_energy_j,
            energy_j: self.energy_j.merge(&other.energy_j),
            mean_power_w: self.mean_power_w.merge(&other.mean_power_w),
            execution_time_s: self.execution_time_s.merge(&other.execution_time_s),
            peak_temp_c: self.peak_temp_c.merge(&other.peak_temp_c),
            mean_temp_c: self.mean_temp_c.merge(&other.mean_temp_c),
        }
    }
}

/// A [`ResultSink`] that folds the per-cell reports of one contiguous
/// cell-index range into a [`CampaignAggregate`] in canonical (index)
/// order, regardless of arrival order: out-of-order arrivals are buffered
/// in an index-ordered pending map and drained the moment the next-in-order
/// cell lands, so the retained state stays proportional to the in-flight
/// spread, not the campaign size.
///
/// One sink per shard (or one over the whole grid for unsharded campaigns);
/// completed shard sinks combine through [`MergeSink::merge_all`]. The
/// sink's full state round-trips bit-exactly through
/// [`MergeSink::encode`]/[`MergeSink::decode`] — the shard wire format,
/// also embedded in campaign checkpoints.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MergeSink {
    start: usize,
    end: usize,
    /// The next cell index the in-order fold is waiting for; cells in
    /// `[start, next)` are folded into `aggregate`.
    next: usize,
    aggregate: CampaignAggregate,
    /// Arrived-but-not-yet-foldable outcomes, keyed by cell index.
    pending: BTreeMap<usize, CellOutcome>,
    /// The first [`RETAINED_FAILURES`] quarantined cells, in fold order
    /// (the aggregate's `failed_cells` count is always exact).
    failures: Vec<CellFailure>,
}

impl MergeSink {
    /// A sink accepting exactly the cells of `range` (global grid indices).
    ///
    /// # Panics
    ///
    /// Panics on an inverted range.
    pub fn new(range: Range<usize>) -> MergeSink {
        assert!(range.start <= range.end, "inverted cell range");
        MergeSink {
            start: range.start,
            end: range.end,
            next: range.start,
            aggregate: CampaignAggregate::default(),
            pending: BTreeMap::new(),
            failures: Vec::new(),
        }
    }

    /// The cell-index range this sink covers.
    pub fn range(&self) -> Range<usize> {
        self.start..self.end
    }

    /// Cells folded into the aggregate so far (the contiguous prefix).
    pub fn folded(&self) -> usize {
        self.next - self.start
    }

    /// Cells that have reported (folded prefix plus buffered arrivals).
    pub fn completed_cells(&self) -> usize {
        self.folded() + self.pending.len()
    }

    /// Whether the given cell has already reported into this sink.
    pub fn is_cell_complete(&self, index: usize) -> bool {
        index < self.next || self.pending.contains_key(&index)
    }

    /// Whether every cell of the range has reported (and is folded: a full
    /// range leaves nothing pending).
    pub fn is_complete(&self) -> bool {
        self.next == self.end && self.pending.is_empty()
    }

    /// The canonical-order aggregate over the folded prefix (`[start,
    /// next)`). For a [complete](MergeSink::is_complete) sink this is the
    /// whole range's aggregate, bit-identical however the cells arrived.
    pub fn aggregate(&self) -> &CampaignAggregate {
        &self.aggregate
    }

    /// The retained quarantined-cell records, in cell order (capped at an
    /// internal limit; `aggregate().failed_cells` is the exact count).
    pub fn failures(&self) -> &[CellFailure] {
        &self.failures
    }

    /// Offers one cell's terminal outcome. Folds immediately if `index` is
    /// next in canonical order (draining any buffered successors), buffers
    /// it otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `index` is outside the sink's range or was already offered
    /// — the sweep contract delivers each cell exactly once.
    pub fn offer(&mut self, index: usize, outcome: CellOutcome) {
        assert!(
            (self.start..self.end).contains(&index),
            "cell {index} outside the sink range {}..{}",
            self.start,
            self.end
        );
        assert!(!self.is_cell_complete(index), "cell {index} reported twice");
        self.pending.insert(index, outcome);
        while let Some(outcome) = self.pending.remove(&self.next) {
            self.fold_next(&outcome);
        }
    }

    /// Folds the outcome of cell `next` (in canonical order).
    fn fold_next(&mut self, outcome: &CellOutcome) {
        self.aggregate.fold_cell(outcome);
        if let CellOutcome::Failed(failure) = outcome {
            if self.failures.len() < RETAINED_FAILURES {
                self.failures.push(failure.clone());
            }
        }
        self.next += 1;
    }

    /// Combines any number of completed shard sinks into the campaign-level
    /// aggregate, independent of the order the shards are handed over in:
    /// sinks are sorted by range start and their aggregates folded pairwise
    /// in that canonical order.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if any sink is incomplete or two
    /// sinks' ranges overlap.
    pub fn merge_all(
        shards: impl IntoIterator<Item = MergeSink>,
    ) -> Result<CampaignAggregate, SimError> {
        let mut shards: Vec<MergeSink> = shards.into_iter().collect();
        shards.sort_by_key(|sink| (sink.start, sink.end));
        let mut merged = CampaignAggregate::default();
        let mut covered_to: Option<usize> = None;
        for shard in &shards {
            if !shard.is_complete() {
                return Err(SimError::InvalidConfig(
                    "cannot merge an incomplete shard sink",
                ));
            }
            if covered_to.is_some_and(|end| shard.start < end) {
                return Err(SimError::InvalidConfig("shard cell ranges overlap"));
            }
            covered_to = Some(shard.end);
            merged = merged.merge(&shard.aggregate);
        }
        Ok(merged)
    }

    /// Serialises the sink's full state (the shard wire format).
    pub fn encode(&self) -> String {
        let mut out = String::new();
        out.push_str("merge-sink v1\n");
        self.encode_into(&mut out);
        out
    }

    /// Decodes a sink serialised by [`MergeSink::encode`], bit-exactly.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Io`] on malformed input.
    pub fn decode(text: &str) -> Result<MergeSink, SimError> {
        let mut lines = text.lines();
        let header = lines.next().unwrap_or_default();
        if header != "merge-sink v1" {
            return Err(wire::malformed(format!("bad header {header:?}")));
        }
        let sink = MergeSink::decode_from(&mut lines)?;
        if lines.next().is_some() {
            return Err(wire::malformed("trailing data after merge sink"));
        }
        Ok(sink)
    }

    /// The fold cursor: the next cell index the in-order fold is waiting
    /// for. Crate-internal, for the wire codecs.
    pub(crate) fn next_index(&self) -> usize {
        self.next
    }

    /// The buffered out-of-order arrivals, keyed by cell index.
    /// Crate-internal, for the wire codecs.
    pub(crate) fn pending_outcomes(&self) -> &BTreeMap<usize, CellOutcome> {
        &self.pending
    }

    /// Reassembles a sink from its raw state, validating every structural
    /// invariant the field encoders cannot express: the range is ordered,
    /// the fold cursor lies inside it, the aggregate's cell count matches
    /// the folded prefix, and every pending outcome sits in the unfolded
    /// tail. Both wire decoders (text and binary) funnel through here, so
    /// the two formats reject exactly the same inconsistencies.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Io`] on any violated invariant.
    pub(crate) fn from_parts(
        start: usize,
        end: usize,
        next: usize,
        aggregate: CampaignAggregate,
        pending: BTreeMap<usize, CellOutcome>,
        failures: Vec<CellFailure>,
    ) -> Result<MergeSink, SimError> {
        if start > end {
            return Err(wire::malformed("inverted cell range"));
        }
        if next < start || next > end {
            return Err(wire::malformed("fold cursor outside the cell range"));
        }
        if aggregate.cells != next - start {
            return Err(wire::malformed(
                "aggregate cell count disagrees with cursor",
            ));
        }
        if let Some((&index, _)) = pending
            .iter()
            .find(|(&index, _)| index < next || index >= end)
        {
            return Err(wire::malformed(format!(
                "pending cell {index} outside the unfolded range"
            )));
        }
        Ok(MergeSink {
            start,
            end,
            next,
            aggregate,
            pending,
            failures,
        })
    }

    /// Writes the body lines of the wire format (shared with the campaign
    /// checkpoint, which embeds a sink section).
    pub(crate) fn encode_into(&self, out: &mut String) {
        use std::fmt::Write;
        writeln!(out, "range {} {}", self.start, self.end).expect("string write");
        writeln!(out, "next {}", self.next).expect("string write");
        let a = &self.aggregate;
        writeln!(
            out,
            "agg {} {} {} {} {} {} {} {}",
            a.cells,
            a.completed_runs,
            a.failed_cells,
            a.shutdowns,
            a.total_intervals,
            a.escalations,
            a.sensor_faults,
            wire::fmt_f64(a.total_energy_j),
        )
        .expect("string write");
        for (name, w) in [
            ("energy", &a.energy_j),
            ("power", &a.mean_power_w),
            ("exec", &a.execution_time_s),
            ("peak", &a.peak_temp_c),
            ("meantemp", &a.mean_temp_c),
        ] {
            writeln!(
                out,
                "welford {name} {} {} {} {} {}",
                w.count(),
                wire::fmt_f64(w.mean()),
                wire::fmt_f64(w.m2()),
                wire::fmt_f64(w.min()),
                wire::fmt_f64(w.max()),
            )
            .expect("string write");
        }
        writeln!(out, "failures {}", self.failures.len()).expect("string write");
        for failure in &self.failures {
            writeln!(
                out,
                "failure {} {}",
                failure.index,
                wire::fmt_str(&failure.error)
            )
            .expect("string write");
        }
        writeln!(out, "pending {}", self.pending.len()).expect("string write");
        for (index, outcome) in &self.pending {
            encode_outcome(out, *index, outcome);
        }
    }

    /// Parses the body lines written by [`MergeSink::encode_into`].
    pub(crate) fn decode_from<'a>(
        lines: &mut impl Iterator<Item = &'a str>,
    ) -> Result<MergeSink, SimError> {
        let mut range = expect_fields(lines, "range", 2)?;
        let (start, end) = (
            wire::parse_usize(&range.remove(0))?,
            wire::parse_usize(&range.remove(0))?,
        );
        let next = wire::parse_usize(&expect_fields(lines, "next", 1)?[0])?;
        let agg = expect_fields(lines, "agg", 8)?;
        let mut aggregate = CampaignAggregate {
            cells: wire::parse_usize(&agg[0])?,
            completed_runs: wire::parse_usize(&agg[1])?,
            failed_cells: wire::parse_usize(&agg[2])?,
            shutdowns: wire::parse_usize(&agg[3])?,
            total_intervals: wire::parse_usize(&agg[4])?,
            escalations: wire::parse_usize(&agg[5])?,
            sensor_faults: wire::parse_usize(&agg[6])?,
            total_energy_j: wire::parse_f64(&agg[7])?,
            ..CampaignAggregate::default()
        };
        for name in ["energy", "power", "exec", "peak", "meantemp"] {
            let fields = expect_fields(lines, "welford", 6)?;
            if fields[0] != name {
                return Err(wire::malformed(format!(
                    "expected welford {name}, got {:?}",
                    fields[0]
                )));
            }
            let w = Welford::from_parts(
                wire::parse_usize(&fields[1])?,
                wire::parse_f64(&fields[2])?,
                wire::parse_f64(&fields[3])?,
                wire::parse_f64(&fields[4])?,
                wire::parse_f64(&fields[5])?,
            );
            match name {
                "energy" => aggregate.energy_j = w,
                "power" => aggregate.mean_power_w = w,
                "exec" => aggregate.execution_time_s = w,
                "peak" => aggregate.peak_temp_c = w,
                _ => aggregate.mean_temp_c = w,
            }
        }
        let failure_count = wire::parse_usize(&expect_fields(lines, "failures", 1)?[0])?;
        let mut failures = Vec::with_capacity(failure_count.min(RETAINED_FAILURES));
        for _ in 0..failure_count {
            let fields = expect_fields(lines, "failure", 2)?;
            failures.push(CellFailure {
                index: wire::parse_usize(&fields[0])?,
                error: wire::parse_str(&fields[1])?,
            });
        }
        let pending_count = wire::parse_usize(&expect_fields(lines, "pending", 1)?[0])?;
        let mut pending = BTreeMap::new();
        for _ in 0..pending_count {
            let (index, outcome) = decode_outcome(lines)?;
            if pending.insert(index, outcome).is_some() {
                return Err(wire::malformed(format!("pending cell {index} duplicated")));
            }
        }
        MergeSink::from_parts(start, end, next, aggregate, pending, failures)
    }
}

impl ResultSink for MergeSink {
    fn accept(&mut self, index: usize, outcome: Result<RunReport, SimError>) {
        let outcome = CellOutcome::from_run(index, outcome);
        self.offer(index, outcome);
    }
}

/// Writes one `cell` line of the wire format.
fn encode_outcome(out: &mut String, index: usize, outcome: &CellOutcome) {
    use std::fmt::Write;
    match outcome {
        CellOutcome::Completed(s) => writeln!(
            out,
            "cell {index} ok {} {} {} {} {} {} {} {} {} {} {}",
            u8::from(s.completed),
            wire::fmt_f64(s.execution_time_s),
            s.intervals,
            wire::fmt_f64(s.energy_j),
            wire::fmt_f64(s.mean_platform_power_w),
            wire::fmt_f64(s.mean_temp_c),
            wire::fmt_f64(s.peak_temp_c),
            wire::fmt_f64(s.intervention_rate),
            s.escalations,
            s.sensor_faults,
            u8::from(s.shut_down),
        )
        .expect("string write"),
        CellOutcome::Failed(failure) => {
            writeln!(out, "cell {index} err {}", wire::fmt_str(&failure.error))
                .expect("string write")
        }
    }
}

/// Parses one `cell` line of the wire format.
fn decode_outcome<'a>(
    lines: &mut impl Iterator<Item = &'a str>,
) -> Result<(usize, CellOutcome), SimError> {
    let fields = expect_fields(lines, "cell", usize::MAX)?;
    if fields.len() < 2 {
        return Err(wire::malformed("truncated cell line"));
    }
    let index = wire::parse_usize(&fields[0])?;
    let outcome = match (fields[1].as_str(), fields.len()) {
        ("ok", 13) => CellOutcome::Completed(CellStats {
            completed: fields[2] == "1",
            execution_time_s: wire::parse_f64(&fields[3])?,
            intervals: wire::parse_usize(&fields[4])?,
            energy_j: wire::parse_f64(&fields[5])?,
            mean_platform_power_w: wire::parse_f64(&fields[6])?,
            mean_temp_c: wire::parse_f64(&fields[7])?,
            peak_temp_c: wire::parse_f64(&fields[8])?,
            intervention_rate: wire::parse_f64(&fields[9])?,
            escalations: wire::parse_usize(&fields[10])?,
            sensor_faults: wire::parse_usize(&fields[11])?,
            shut_down: fields[12] == "1",
        }),
        ("err", 3) => CellOutcome::Failed(CellFailure {
            index,
            error: wire::parse_str(&fields[2])?,
        }),
        _ => return Err(wire::malformed("unrecognised cell line shape")),
    };
    Ok((index, outcome))
}

/// Pulls the next line, checks its tag, and returns its whitespace-split
/// fields (exactly `arity` of them unless `arity` is `usize::MAX`).
fn expect_fields<'a>(
    lines: &mut impl Iterator<Item = &'a str>,
    tag: &str,
    arity: usize,
) -> Result<Vec<String>, SimError> {
    let line = lines
        .next()
        .ok_or_else(|| wire::malformed(format!("missing {tag} line")))?;
    let mut fields = line.split_whitespace().map(str::to_owned);
    match fields.next() {
        Some(found) if found == tag => {}
        found => {
            return Err(wire::malformed(format!(
                "expected {tag} line, found {found:?}"
            )))
        }
    }
    let fields: Vec<String> = fields.collect();
    if arity != usize::MAX && fields.len() != arity {
        return Err(wire::malformed(format!(
            "{tag} line carries {} fields, expected {arity}",
            fields.len()
        )));
    }
    Ok(fields)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(x: f64) -> CellStats {
        CellStats {
            completed: true,
            execution_time_s: 10.0 + x,
            intervals: 100 + x as usize,
            energy_j: 40.0 * x,
            mean_platform_power_w: 4.0 + x * 0.01,
            mean_temp_c: 50.0 + x,
            peak_temp_c: 60.0 + x,
            intervention_rate: 0.25,
            escalations: 1,
            sensor_faults: 0,
            shut_down: false,
        }
    }

    fn failure(index: usize) -> CellOutcome {
        CellOutcome::Failed(CellFailure {
            index,
            error: format!("cell panicked (contained): boom {index}"),
        })
    }

    #[test]
    fn folds_in_index_order_regardless_of_arrival_order() {
        let outcomes: Vec<CellOutcome> = (0..12)
            .map(|k| {
                if k == 5 {
                    failure(5)
                } else {
                    CellOutcome::Completed(stats(k as f64))
                }
            })
            .collect();
        let mut in_order = MergeSink::new(0..12);
        for (k, outcome) in outcomes.iter().enumerate() {
            in_order.offer(k, outcome.clone());
        }
        assert!(in_order.is_complete());

        // A scrambled arrival order (deterministic permutation).
        let mut scrambled = MergeSink::new(0..12);
        for &k in &[7, 0, 11, 3, 5, 1, 2, 10, 4, 9, 6, 8] {
            assert!(!scrambled.is_cell_complete(k));
            scrambled.offer(k, outcomes[k].clone());
            assert!(scrambled.is_cell_complete(k));
        }
        assert!(scrambled.is_complete());
        assert_eq!(scrambled, in_order, "bit-identical state either way");
        assert_eq!(scrambled.aggregate().cells, 12);
        assert_eq!(scrambled.aggregate().failed_cells, 1);
        assert_eq!(scrambled.failures().len(), 1);
        assert_eq!(scrambled.failures()[0].index, 5);
    }

    #[test]
    fn pending_is_bounded_by_the_arrival_spread() {
        let mut sink = MergeSink::new(10..20);
        sink.offer(12, CellOutcome::Completed(stats(2.0)));
        sink.offer(11, CellOutcome::Completed(stats(1.0)));
        assert_eq!(sink.folded(), 0, "still waiting on cell 10");
        assert_eq!(sink.completed_cells(), 2);
        sink.offer(10, CellOutcome::Completed(stats(0.0)));
        assert_eq!(sink.folded(), 3, "in-order arrival drains the buffer");
        assert!(!sink.is_complete());
    }

    #[test]
    fn shard_merge_is_arrival_order_independent() {
        let outcomes: Vec<CellOutcome> = (0..30)
            .map(|k| {
                if k % 13 == 7 {
                    failure(k)
                } else {
                    CellOutcome::Completed(stats(k as f64))
                }
            })
            .collect();
        let shard = |range: Range<usize>| {
            let mut sink = MergeSink::new(range.clone());
            for k in range {
                sink.offer(k, outcomes[k].clone());
            }
            sink
        };
        let (a, b, c) = (shard(0..9), shard(9..21), shard(21..30));
        let orders: [[&MergeSink; 3]; 3] = [[&a, &b, &c], [&c, &a, &b], [&b, &c, &a]];
        let merged: Vec<CampaignAggregate> = orders
            .iter()
            .map(|order| {
                MergeSink::merge_all(order.iter().map(|s| (*s).clone())).expect("shards merge")
            })
            .collect();
        assert_eq!(merged[0], merged[1]);
        assert_eq!(merged[1], merged[2]);
        assert_eq!(merged[0].cells, 30);
        assert_eq!(merged[0].failed_cells, 2, "cells 7 and 20 fail");
        // Counts and min/max agree exactly with a single whole-range fold;
        // the distribution moments agree to numerical noise.
        let whole = shard(0..30);
        let reference = whole.aggregate();
        assert_eq!(merged[0].completed_runs, reference.completed_runs);
        assert_eq!(merged[0].total_intervals, reference.total_intervals);
        assert_eq!(merged[0].peak_temp_c.min(), reference.peak_temp_c.min());
        assert_eq!(merged[0].peak_temp_c.max(), reference.peak_temp_c.max());
        assert!(
            (merged[0].energy_j.variance() - reference.energy_j.variance()).abs()
                <= 1e-9 * reference.energy_j.variance().max(1.0)
        );
    }

    #[test]
    fn merge_all_rejects_incomplete_and_overlapping_shards() {
        let mut incomplete = MergeSink::new(0..2);
        incomplete.offer(0, CellOutcome::Completed(stats(0.0)));
        assert!(MergeSink::merge_all([incomplete]).is_err());
        let full = |range: Range<usize>| {
            let mut sink = MergeSink::new(range.clone());
            for k in range {
                sink.offer(k, CellOutcome::Completed(stats(k as f64)));
            }
            sink
        };
        assert!(MergeSink::merge_all([full(0..3), full(2..5)]).is_err());
        assert!(
            MergeSink::merge_all([full(0..3), full(5..8)]).is_ok(),
            "gaps are fine"
        );
        assert_eq!(
            MergeSink::merge_all(std::iter::empty()).expect("empty merge"),
            CampaignAggregate::default()
        );
    }

    #[test]
    fn wire_round_trip_is_bit_exact_mid_flight() {
        let mut sink = MergeSink::new(3..40);
        for k in [3, 4, 5, 9, 12, 11, 30] {
            let outcome = if k == 9 {
                failure(9)
            } else {
                CellOutcome::Completed(stats(k as f64))
            };
            sink.offer(k, outcome);
        }
        let decoded = MergeSink::decode(&sink.encode()).expect("round trip");
        assert_eq!(decoded, sink);
        // And for a complete sink.
        let mut sink = MergeSink::new(0..4);
        for k in 0..4 {
            sink.offer(k, CellOutcome::Completed(stats(k as f64)));
        }
        assert_eq!(MergeSink::decode(&sink.encode()).expect("round trip"), sink);
        // Malformed inputs are rejected, not mis-parsed.
        assert!(MergeSink::decode("nonsense").is_err());
        assert!(MergeSink::decode("merge-sink v1\nrange 5 2\n").is_err());
    }

    #[test]
    #[should_panic(expected = "reported twice")]
    fn duplicate_cells_are_rejected() {
        let mut sink = MergeSink::new(0..2);
        sink.offer(0, CellOutcome::Completed(stats(0.0)));
        sink.offer(0, CellOutcome::Completed(stats(0.0)));
    }
}

//! Campaign checkpointing: durable, atomically-written snapshots of a
//! campaign's progress, and the [`CheckpointSink`] that maintains them as
//! results stream in.
//!
//! A [`CampaignCheckpoint`] is small and closed-form — a completed-cell
//! bitmap plus the canonical-order merge fold ([`MergeSink`]) over the
//! completed cells — so it costs O(cells/8) bytes no matter how much trace
//! data the campaign produced. Snapshots go to disk through the classic
//! temp-file + `sync` + rename dance, so a kill at any instant leaves either
//! the previous checkpoint or the new one, never a torn file. Because the
//! embedded fold replays cells in canonical index order and stores floats as
//! exact bit patterns, resuming from any checkpoint reproduces the
//! uninterrupted campaign's merged output bit-for-bit.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use super::merge::MergeSink;
use super::wire;
use crate::error::SimError;
use crate::experiment::{ResultSink, RunReport};

/// A fixed-size bitmap over campaign cell indices: which cells have reported
/// a terminal outcome (success or quarantined failure).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CellBitmap {
    words: Vec<u64>,
    len: usize,
}

impl CellBitmap {
    /// An all-clear bitmap over `len` cells.
    pub fn new(len: usize) -> CellBitmap {
        CellBitmap {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// The number of cells the bitmap covers.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the bitmap covers zero cells.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Marks a cell complete.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn set(&mut self, index: usize) {
        assert!(
            index < self.len,
            "cell {index} outside bitmap of {}",
            self.len
        );
        self.words[index / 64] |= 1u64 << (index % 64);
    }

    /// Whether a cell is marked complete.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn get(&self, index: usize) -> bool {
        assert!(
            index < self.len,
            "cell {index} outside bitmap of {}",
            self.len
        );
        self.words[index / 64] & (1u64 << (index % 64)) != 0
    }

    /// The number of cells marked complete.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// The indices of cells *not* marked complete, in ascending order.
    pub fn missing(&self) -> Vec<usize> {
        (0..self.len).filter(|&k| !self.get(k)).collect()
    }

    /// The raw 64-bit words backing the bitmap. Crate-internal, for the
    /// wire codecs.
    pub(crate) fn words(&self) -> &[u64] {
        &self.words
    }

    /// Reassembles a bitmap from its raw words, validating the word count
    /// and that no bit is set past the cell count. Both wire decoders (text
    /// and binary) funnel through here.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Io`] on any violated invariant.
    pub(crate) fn from_words(words: Vec<u64>, len: usize) -> Result<CellBitmap, SimError> {
        if words.len() != len.div_ceil(64) {
            return Err(wire::malformed("bitmap word count disagrees with cells"));
        }
        if !len.is_multiple_of(64) {
            if let Some(last) = words.last() {
                if last >> (len % 64) != 0 {
                    return Err(wire::malformed("bitmap has bits past the cell count"));
                }
            }
        }
        Ok(CellBitmap { words, len })
    }
}

/// A durable snapshot of a campaign's progress: which cells have reported
/// (bitmap) and the canonical-order merge fold over their outcomes. Bound to
/// its grid by the [`crate::SweepSpec`] fingerprint, so a checkpoint cannot
/// silently resume a different campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignCheckpoint {
    fingerprint: u64,
    bitmap: CellBitmap,
    fold: MergeSink,
}

impl CampaignCheckpoint {
    /// A fresh checkpoint for a campaign of `cells` cells whose grid hashes
    /// to `fingerprint` ([`crate::SweepSpec::fingerprint`]).
    pub fn new(fingerprint: u64, cells: usize) -> CampaignCheckpoint {
        CampaignCheckpoint {
            fingerprint,
            bitmap: CellBitmap::new(cells),
            fold: MergeSink::new(0..cells),
        }
    }

    /// The grid fingerprint this checkpoint is bound to.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The number of cells in the campaign grid.
    pub fn cells(&self) -> usize {
        self.bitmap.len()
    }

    /// The number of cells with a recorded terminal outcome.
    pub fn completed(&self) -> usize {
        self.bitmap.count_ones()
    }

    /// Whether the given cell already has a recorded outcome.
    pub fn is_cell_complete(&self, index: usize) -> bool {
        self.bitmap.get(index)
    }

    /// Whether every cell has reported.
    pub fn is_complete(&self) -> bool {
        self.fold.is_complete()
    }

    /// The indices still to run, in ascending order.
    pub fn remaining(&self) -> Vec<usize> {
        self.bitmap.missing()
    }

    /// The canonical-order merge fold over the recorded outcomes.
    pub fn fold(&self) -> &MergeSink {
        &self.fold
    }

    /// The completion bitmap. Crate-internal, for the wire codecs.
    pub(crate) fn bitmap(&self) -> &CellBitmap {
        &self.bitmap
    }

    /// Consumes the checkpoint, returning its merge fold (the campaign's
    /// aggregated result).
    pub fn into_fold(self) -> MergeSink {
        self.fold
    }

    /// Records one cell's terminal outcome.
    ///
    /// # Panics
    ///
    /// Panics if the cell is out of range or already recorded (the sweep
    /// contract delivers each cell exactly once; resume skips completed
    /// cells).
    pub fn record(&mut self, index: usize, outcome: Result<RunReport, SimError>) {
        self.bitmap.set(index);
        self.fold.accept(index, outcome);
    }

    /// Reassembles a checkpoint from its raw parts, validating the
    /// cross-field invariants: the fold covers exactly the bitmap's cells
    /// and the two completion counts agree. Both wire decoders (text and
    /// binary) funnel through here.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Io`] on any violated invariant.
    pub(crate) fn from_parts(
        fingerprint: u64,
        bitmap: CellBitmap,
        fold: MergeSink,
    ) -> Result<CampaignCheckpoint, SimError> {
        if fold.range() != (0..bitmap.len()) {
            return Err(wire::malformed("fold range disagrees with cell count"));
        }
        if fold.completed_cells() != bitmap.count_ones() {
            return Err(wire::malformed(
                "fold completion count disagrees with bitmap",
            ));
        }
        Ok(CampaignCheckpoint {
            fingerprint,
            bitmap,
            fold,
        })
    }

    /// Serialises the checkpoint (the on-disk format): the v1 body followed
    /// by a `crc32` integrity footer over every byte before it, so bit rot
    /// and torn writes are detected at load instead of skewing a resumed
    /// campaign.
    pub fn encode(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        out.push_str("dtpm-campaign-checkpoint v1\n");
        writeln!(out, "fingerprint {:016x}", self.fingerprint).expect("string write");
        writeln!(out, "cells {}", self.bitmap.len).expect("string write");
        out.push_str("bitmap");
        for word in &self.bitmap.words {
            use std::fmt::Write as _;
            write!(out, " {word:016x}").expect("string write");
        }
        out.push('\n');
        self.fold.encode_into(&mut out);
        let crc = numeric::codec::crc32(out.as_bytes());
        writeln!(out, "crc32 {crc:08x}").expect("string write");
        out
    }

    /// Splits a trailing `crc32` footer line off a checkpoint rendering,
    /// returning the covered body and the stated checksum — or `None` for a
    /// footerless (pre-footer) checkpoint, which stays decodable.
    fn split_crc_footer(text: &str) -> Result<Option<(&str, u32)>, SimError> {
        let Some(stripped) = text.strip_suffix('\n') else {
            return Ok(None);
        };
        let Some((head, last)) = stripped.rsplit_once('\n') else {
            return Ok(None);
        };
        let Some(bits) = last.strip_prefix("crc32 ") else {
            return Ok(None);
        };
        let stated = u32::from_str_radix(bits, 16)
            .map_err(|_| SimError::Corrupted(format!("unreadable crc32 footer {bits:?}")))?;
        // The footer covers everything before its own line, including the
        // preceding newline.
        Ok(Some((&text[..head.len() + 1], stated)))
    }

    /// Decodes a checkpoint serialised by [`CampaignCheckpoint::encode`],
    /// bit-exactly. Footerless checkpoints (written before the integrity
    /// footer existed) decode unchanged; a present footer is verified
    /// first, so corruption anywhere in the body is rejected wholesale.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Corrupted`] on a checksum mismatch and
    /// [`SimError::Io`] on structurally malformed input.
    pub fn decode(text: &str) -> Result<CampaignCheckpoint, SimError> {
        let text = match CampaignCheckpoint::split_crc_footer(text)? {
            Some((body, stated)) => {
                let computed = numeric::codec::crc32(body.as_bytes());
                if computed != stated {
                    return Err(SimError::Corrupted(format!(
                        "checkpoint crc32 mismatch: footer says {stated:08x}, \
                         content hashes to {computed:08x}"
                    )));
                }
                body
            }
            None => text,
        };
        let mut lines = text.lines();
        let header = lines.next().unwrap_or_default();
        if header != "dtpm-campaign-checkpoint v1" {
            return Err(wire::malformed(format!("bad checkpoint header {header:?}")));
        }
        let fingerprint_line = lines
            .next()
            .ok_or_else(|| wire::malformed("missing fingerprint line"))?;
        let fingerprint = match fingerprint_line.split_once(' ') {
            Some(("fingerprint", bits)) => wire::parse_u64_hex(bits)?,
            _ => return Err(wire::malformed("expected fingerprint line")),
        };
        let cells_line = lines
            .next()
            .ok_or_else(|| wire::malformed("missing cells line"))?;
        let cells = match cells_line.split_once(' ') {
            Some(("cells", n)) => wire::parse_usize(n)?,
            _ => return Err(wire::malformed("expected cells line")),
        };
        let bitmap_line = lines
            .next()
            .ok_or_else(|| wire::malformed("missing bitmap line"))?;
        let mut fields = bitmap_line.split_whitespace();
        if fields.next() != Some("bitmap") {
            return Err(wire::malformed("expected bitmap line"));
        }
        let words = fields
            .map(wire::parse_u64_hex)
            .collect::<Result<Vec<u64>, SimError>>()?;
        let bitmap = CellBitmap::from_words(words, cells)?;
        let fold = MergeSink::decode_from(&mut lines)?;
        if lines.next().is_some() {
            return Err(wire::malformed("trailing data after checkpoint"));
        }
        CampaignCheckpoint::from_parts(fingerprint, bitmap, fold)
    }

    /// Writes the checkpoint to `path` atomically: the serialised snapshot
    /// goes to a sibling temp file, is synced, and is renamed over `path` —
    /// a kill at any instant leaves either the old checkpoint or the new
    /// one, never a torn file.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Io`] if any filesystem step fails.
    pub fn write_atomic(&self, path: &Path) -> Result<(), SimError> {
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = PathBuf::from(tmp);
        {
            let mut file = fs::File::create(&tmp)?;
            file.write_all(self.encode().as_bytes())?;
            file.sync_all()?;
        }
        fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Loads a checkpoint previously written with
    /// [`CampaignCheckpoint::write_atomic`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Io`] if the file cannot be read or is malformed.
    pub fn load(path: &Path) -> Result<CampaignCheckpoint, SimError> {
        CampaignCheckpoint::decode(&fs::read_to_string(path)?)
    }
}

/// A [`ResultSink`] adapter that maintains a [`CampaignCheckpoint`] as
/// results stream in, persisting it atomically every `every` completed
/// cells, while forwarding every result unchanged to the wrapped sink.
///
/// Persistence failures never interrupt the campaign: a failed write is
/// recorded (and retried at the next checkpoint boundary) rather than
/// panicking a worker — losing checkpoint durability is strictly better
/// than losing the campaign. [`CheckpointSink::finish`] performs the final
/// write and surfaces any persistent failure.
#[derive(Debug)]
pub struct CheckpointSink<S: ResultSink> {
    inner: S,
    checkpoint: CampaignCheckpoint,
    path: PathBuf,
    every: usize,
    since_write: usize,
    last_write_error: Option<SimError>,
}

impl<S: ResultSink> CheckpointSink<S> {
    /// A sink for a fresh campaign: `fingerprint`/`cells` describe the grid
    /// ([`crate::SweepSpec::fingerprint`] / cell count), `path` is where
    /// snapshots land, and `every` is the checkpoint cadence in completed
    /// cells (clamped to at least 1).
    pub fn new(
        fingerprint: u64,
        cells: usize,
        path: impl Into<PathBuf>,
        every: usize,
        inner: S,
    ) -> CheckpointSink<S> {
        CheckpointSink::resume(
            CampaignCheckpoint::new(fingerprint, cells),
            path,
            every,
            inner,
        )
    }

    /// A sink continuing from a previously-loaded checkpoint: already
    /// recorded cells stay recorded, new results extend the fold.
    pub fn resume(
        checkpoint: CampaignCheckpoint,
        path: impl Into<PathBuf>,
        every: usize,
        inner: S,
    ) -> CheckpointSink<S> {
        CheckpointSink {
            inner,
            checkpoint,
            path: path.into(),
            every: every.max(1),
            since_write: 0,
            last_write_error: None,
        }
    }

    /// The current checkpoint state.
    pub fn checkpoint(&self) -> &CampaignCheckpoint {
        &self.checkpoint
    }

    /// The wrapped sink.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// The most recent persistence failure, if the last attempted write
    /// failed (`None` once a later write succeeds).
    pub fn last_write_error(&self) -> Option<&SimError> {
        self.last_write_error.as_ref()
    }

    /// Writes the final snapshot and dismantles the adapter, returning the
    /// checkpoint and the wrapped sink.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Io`] (alongside the state, which is never lost)
    /// if the final write fails.
    pub fn finish(self) -> (CampaignCheckpoint, S, Result<(), SimError>) {
        let result = self.checkpoint.write_atomic(&self.path);
        (self.checkpoint, self.inner, result)
    }

    /// Persists the checkpoint, recording rather than propagating failure.
    fn try_write(&mut self) {
        match self.checkpoint.write_atomic(&self.path) {
            Ok(()) => {
                self.since_write = 0;
                self.last_write_error = None;
            }
            Err(error) => {
                // Leave since_write at the threshold so the very next
                // completion retries the write.
                self.last_write_error = Some(error);
            }
        }
    }
}

impl<S: ResultSink> ResultSink for CheckpointSink<S> {
    fn accept(&mut self, index: usize, outcome: Result<RunReport, SimError>) {
        self.checkpoint.record(index, outcome.clone());
        self.inner.accept(index, outcome);
        self.since_write += 1;
        if self.since_write >= self.every {
            self.try_write();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("dtpm-checkpoint-{}-{tag}.ckpt", std::process::id()))
    }

    fn failed(index: usize) -> Result<RunReport, SimError> {
        Err(SimError::Panicked(format!("boom {index}")))
    }

    #[test]
    fn bitmap_tracks_cells_across_word_boundaries() {
        let mut bitmap = CellBitmap::new(130);
        assert_eq!(bitmap.len(), 130);
        assert!(!bitmap.is_empty());
        for k in [0, 63, 64, 65, 127, 128, 129] {
            assert!(!bitmap.get(k));
            bitmap.set(k);
            assert!(bitmap.get(k));
        }
        assert_eq!(bitmap.count_ones(), 7);
        assert_eq!(bitmap.missing().len(), 123);
        assert!(CellBitmap::new(0).is_empty());
    }

    #[test]
    #[should_panic(expected = "outside bitmap")]
    fn bitmap_rejects_out_of_range_cells() {
        CellBitmap::new(10).set(10);
    }

    #[test]
    fn checkpoint_round_trips_bit_exactly_through_text_and_disk() {
        let mut checkpoint = CampaignCheckpoint::new(0xDEAD_BEEF_F00D_CAFE, 70);
        for k in [0, 1, 2, 5, 64, 69] {
            checkpoint.record(k, failed(k));
        }
        assert_eq!(checkpoint.completed(), 6);
        assert!(checkpoint.is_cell_complete(64));
        assert!(!checkpoint.is_cell_complete(63));
        assert!(!checkpoint.is_complete());
        assert_eq!(checkpoint.remaining().len(), 64);

        let decoded = CampaignCheckpoint::decode(&checkpoint.encode()).expect("decode");
        assert_eq!(decoded, checkpoint);

        let path = temp_path("round-trip");
        checkpoint.write_atomic(&path).expect("write");
        let loaded = CampaignCheckpoint::load(&path).expect("load");
        assert_eq!(loaded, checkpoint);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn checkpoint_rejects_malformed_and_inconsistent_input() {
        assert!(CampaignCheckpoint::decode("not a checkpoint").is_err());
        let good = CampaignCheckpoint::new(7, 3).encode();
        // Flip the cell count without touching the rest: inconsistency caught.
        let bad = good.replace("cells 3", "cells 130");
        assert!(CampaignCheckpoint::decode(&bad).is_err());
        let truncated: String = good.lines().take(2).collect::<Vec<_>>().join("\n");
        assert!(CampaignCheckpoint::decode(&truncated).is_err());
    }

    #[test]
    fn crc_footer_detects_corruption_and_tolerates_legacy_files() {
        let mut checkpoint = CampaignCheckpoint::new(0xABCD, 70);
        for k in [0, 3, 64] {
            checkpoint.record(k, failed(k));
        }
        let encoded = checkpoint.encode();
        let footer = encoded.trim_end().lines().last().expect("footer line");
        assert!(footer.starts_with("crc32 "), "encode appends the footer");
        assert_eq!(
            CampaignCheckpoint::decode(&encoded).expect("round trip"),
            checkpoint
        );

        // A footerless rendering — the pre-footer on-disk format — still
        // decodes to the same state.
        let legacy: String = encoded
            .lines()
            .filter(|line| !line.starts_with("crc32 "))
            .map(|line| format!("{line}\n"))
            .collect();
        assert_eq!(
            CampaignCheckpoint::decode(&legacy).expect("legacy decode"),
            checkpoint
        );

        // A flipped hex digit in the body (here: the fingerprint) would
        // parse fine structurally — the checksum catches it wholesale.
        let flipped = encoded.replacen(
            "fingerprint 000000000000abcd",
            "fingerprint 000000000000abce",
            1,
        );
        assert_ne!(flipped, encoded, "corruption actually applied");
        assert!(matches!(
            CampaignCheckpoint::decode(&flipped),
            Err(SimError::Corrupted(_))
        ));

        // An unreadable footer is corruption, not a silent legacy fallback.
        let bad_footer = format!("{legacy}crc32 zzzzzzzz\n");
        assert!(matches!(
            CampaignCheckpoint::decode(&bad_footer),
            Err(SimError::Corrupted(_))
        ));

        // A file truncated mid-body (footer gone entirely) is still
        // rejected, through the structural checks.
        assert!(CampaignCheckpoint::decode(&encoded[..encoded.len() / 2]).is_err());
    }

    #[test]
    fn checkpoint_sink_persists_on_cadence_and_forwards_everything() {
        /// Counts forwarded outcomes.
        struct Counter(usize);
        impl ResultSink for Counter {
            fn accept(&mut self, _index: usize, _outcome: Result<RunReport, SimError>) {
                self.0 += 1;
            }
        }
        let path = temp_path("cadence");
        std::fs::remove_file(&path).ok();
        let mut sink = CheckpointSink::new(42, 10, &path, 4, Counter(0));
        for k in 0..3 {
            sink.accept(k, failed(k));
        }
        assert!(!path.exists(), "below the cadence: nothing written yet");
        sink.accept(3, failed(3));
        let on_disk = CampaignCheckpoint::load(&path).expect("written at cadence");
        assert_eq!(on_disk.completed(), 4);
        for k in 4..7 {
            sink.accept(k, failed(k));
        }
        assert_eq!(
            CampaignCheckpoint::load(&path).expect("load").completed(),
            4,
            "mid-cadence completions stay in memory"
        );
        assert!(sink.last_write_error().is_none());
        assert_eq!(sink.inner().0, 7, "every outcome forwarded");
        let (checkpoint, inner, write) = sink.finish();
        write.expect("final write");
        assert_eq!(inner.0, 7);
        assert_eq!(checkpoint.completed(), 7);
        assert_eq!(
            CampaignCheckpoint::load(&path).expect("load"),
            checkpoint,
            "finish persists the final state"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn checkpoint_aggregate_matches_a_plain_merge_sink() {
        // The checkpoint's embedded fold is a MergeSink over 0..cells: the
        // same outcomes produce the same bits.
        let mut checkpoint = CampaignCheckpoint::new(1, 5);
        let mut reference = MergeSink::new(0..5);
        for k in 0..5 {
            checkpoint.record(k, failed(k));
            reference.accept(k, failed(k));
        }
        assert!(checkpoint.is_complete());
        assert_eq!(checkpoint.fold(), &reference);
    }
}

//! Error type for the simulation crate.

use std::error::Error;
use std::fmt;

/// Errors produced while building or running a simulation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// A configuration value was invalid.
    InvalidConfig(&'static str),
    /// The platform model rejected a state or parameter.
    Platform(String),
    /// The thermal plant failed to integrate.
    Thermal(String),
    /// Power-model characterisation failed.
    Power(String),
    /// System identification failed.
    Identification(String),
    /// The DTPM policy failed.
    Dtpm(String),
    /// The sensor chain went unreliable past the configured budgets (and the
    /// degraded fallback was disabled, or a reading reached the control loop
    /// unscreened and invalid), so the run drained instead of deciding on
    /// corrupt data.
    Sensor(String),
    /// Writing an output file (CSV trace) failed.
    Io(String),
    /// A sensor [`crate::faults::FaultPlan`] failed validation (non-finite
    /// offset/magnitude, inverted or zero-length window, out-of-range
    /// channel), rejected at construction instead of producing silent
    /// nonsense mid-campaign.
    FaultPlan(String),
    /// A persisted or transported payload failed its integrity check (CRC
    /// mismatch, truncation past the structural headers): the data is
    /// rejected wholesale rather than partially decoded — a corrupted
    /// checkpoint resumed "best effort" would silently skew the campaign.
    Corrupted(String),
    /// The cell's control loop panicked and the panic was contained by the
    /// sweep executor: the cell is quarantined with this structured failure
    /// while sibling lanes keep running.
    Panicked(String),
    /// The cell exceeded its cooperative per-cell deadline (an interval-count
    /// watchdog in the executor) and was cancelled cleanly instead of
    /// hanging its worker.
    Deadline {
        /// The interval budget the cell exceeded.
        intervals: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig(msg) => write!(f, "invalid simulation configuration: {msg}"),
            SimError::Platform(msg) => write!(f, "platform error: {msg}"),
            SimError::Thermal(msg) => write!(f, "thermal plant error: {msg}"),
            SimError::Power(msg) => write!(f, "power model error: {msg}"),
            SimError::Identification(msg) => write!(f, "system identification error: {msg}"),
            SimError::Dtpm(msg) => write!(f, "DTPM policy error: {msg}"),
            SimError::Sensor(msg) => write!(f, "sensor chain error: {msg}"),
            SimError::Io(msg) => write!(f, "i/o error: {msg}"),
            SimError::FaultPlan(msg) => write!(f, "invalid fault plan: {msg}"),
            SimError::Corrupted(msg) => write!(f, "corrupted payload: {msg}"),
            SimError::Panicked(msg) => write!(f, "cell panicked (contained): {msg}"),
            SimError::Deadline { intervals } => write!(
                f,
                "cell exceeded its deadline of {intervals} control intervals"
            ),
        }
    }
}

impl Error for SimError {}

impl From<soc_model::SocError> for SimError {
    fn from(e: soc_model::SocError) -> Self {
        SimError::Platform(e.to_string())
    }
}

impl From<thermal_model::ThermalError> for SimError {
    fn from(e: thermal_model::ThermalError) -> Self {
        SimError::Thermal(e.to_string())
    }
}

impl From<power_model::PowerError> for SimError {
    fn from(e: power_model::PowerError) -> Self {
        SimError::Power(e.to_string())
    }
}

impl From<sysid::SysIdError> for SimError {
    fn from(e: sysid::SysIdError) -> Self {
        SimError::Identification(e.to_string())
    }
}

impl From<dtpm::DtpmError> for SimError {
    fn from(e: dtpm::DtpmError) -> Self {
        SimError::Dtpm(e.to_string())
    }
}

impl From<std::io::Error> for SimError {
    fn from(e: std::io::Error) -> Self {
        SimError::Io(e.to_string())
    }
}

//! Idle-power / hotplug governor: how many cores should be online.

use serde::{Deserialize, Serialize};

/// Decides how many cores of the active cluster should be online based on the
/// number of runnable work streams, with hysteresis so cores are not bounced
/// on and off every interval.
///
/// This models the stock idle-power management the paper leaves in place: "the
/// OS kernel wakes up more processors and increases their frequencies as the
/// workload intensifies".
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HotplugGovernor {
    /// A core is added when the runnable streams exceed
    /// `online_cores − 1 + up_margin`.
    pub up_margin: f64,
    /// A core is removed when the runnable streams fall below
    /// `online_cores − 1 − down_margin`.
    pub down_margin: f64,
    /// Minimum number of cores kept online.
    pub min_cores: usize,
    /// Maximum number of cores that may be online (cluster size).
    pub max_cores: usize,
}

impl HotplugGovernor {
    /// The default policy for a four-core Exynos cluster.
    pub fn exynos_default() -> Self {
        HotplugGovernor {
            up_margin: 0.20,
            down_margin: 0.40,
            min_cores: 1,
            max_cores: 4,
        }
    }

    /// Chooses the number of online cores for the next interval.
    ///
    /// `runnable_streams` is the demand observed over the last interval;
    /// `currently_online` is the present core count.
    pub fn select_core_count(&self, runnable_streams: f64, currently_online: usize) -> usize {
        let mut online = currently_online.clamp(self.min_cores, self.max_cores);
        // Bring cores up as long as demand exceeds the current capacity.
        while online < self.max_cores
            && runnable_streams > (online as f64 - 1.0) + self.up_margin + 1.0
        {
            online += 1;
        }
        // Take cores down while there is comfortable slack.
        while online > self.min_cores && runnable_streams < (online as f64 - 1.0) - self.down_margin
        {
            online -= 1;
        }
        online.clamp(self.min_cores, self.max_cores)
    }
}

impl Default for HotplugGovernor {
    fn default() -> Self {
        HotplugGovernor::exynos_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_stream_keeps_one_or_two_cores() {
        let gov = HotplugGovernor::exynos_default();
        let online = gov.select_core_count(1.1, 4);
        assert!(online <= 2, "got {online}");
        assert!(online >= 1);
    }

    #[test]
    fn four_streams_bring_all_cores_online() {
        let gov = HotplugGovernor::exynos_default();
        assert_eq!(gov.select_core_count(3.8, 1), 4);
        assert_eq!(gov.select_core_count(4.0, 4), 4);
    }

    #[test]
    fn hysteresis_avoids_bouncing() {
        let gov = HotplugGovernor::exynos_default();
        // With two cores online and demand right at the boundary, nothing changes.
        assert_eq!(gov.select_core_count(1.0, 2), 2);
        // Only a clearly lower demand drops the core.
        assert_eq!(gov.select_core_count(0.4, 2), 1);
    }

    #[test]
    fn respects_min_and_max() {
        let gov = HotplugGovernor {
            min_cores: 2,
            max_cores: 3,
            ..HotplugGovernor::exynos_default()
        };
        assert_eq!(gov.select_core_count(0.0, 4), 2);
        assert_eq!(gov.select_core_count(4.0, 1), 3);
    }

    #[test]
    fn intermediate_demand_gets_intermediate_core_count() {
        let gov = HotplugGovernor::exynos_default();
        let online = gov.select_core_count(2.5, 1);
        assert!(online == 2 || online == 3, "got {online}");
    }
}

//! CPU frequency governors (DVFS policies).

use serde::{Deserialize, Serialize};
use soc_model::{Frequency, OppTable};

/// Input the kernel hands a cpufreq governor at every sampling interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GovernorInput {
    /// Busy fraction of the most loaded online core over the last interval,
    /// 0..1 (what `ondemand` calls the load).
    pub load: f64,
    /// Frequency the cluster ran at during that interval.
    pub current: Frequency,
}

/// A CPU frequency governor: given the observed load, pick the next operating
/// frequency from the cluster's OPP table.
pub trait CpufreqGovernor {
    /// Selects the frequency for the next interval.
    fn select_frequency(&mut self, input: &GovernorInput, opps: &OppTable) -> Frequency;

    /// Human-readable governor name (matches the Linux sysfs names).
    fn name(&self) -> &'static str;
}

/// Which stock governor to instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GovernorKind {
    /// The `ondemand` governor (the paper's default configuration).
    Ondemand,
    /// The `interactive` governor common on Android devices.
    Interactive,
    /// Always the maximum frequency.
    Performance,
    /// Always the minimum frequency.
    Powersave,
}

/// The classic `ondemand` governor: jump to the maximum frequency when the
/// load exceeds the up-threshold, otherwise pick the lowest frequency that
/// can serve the measured load with some headroom.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OndemandGovernor {
    /// Load above which the governor jumps straight to the maximum frequency.
    pub up_threshold: f64,
    /// Headroom factor when scaling down (the selected frequency can serve the
    /// load at no more than this utilisation).
    pub down_headroom: f64,
}

impl Default for OndemandGovernor {
    fn default() -> Self {
        OndemandGovernor {
            up_threshold: 0.80,
            down_headroom: 0.80,
        }
    }
}

impl CpufreqGovernor for OndemandGovernor {
    fn select_frequency(&mut self, input: &GovernorInput, opps: &OppTable) -> Frequency {
        let load = input.load.clamp(0.0, 1.0);
        if load > self.up_threshold {
            return opps.highest().frequency;
        }
        // Capacity needed so the load would sit at `down_headroom` utilisation.
        let required_mhz = input.current.mhz() as f64 * load / self.down_headroom;
        opps.ceil(Frequency::from_mhz(required_mhz.ceil() as u32))
            .frequency
    }

    fn name(&self) -> &'static str {
        "ondemand"
    }
}

/// A simplified `interactive` governor: ramp to a high-speed frequency as soon
/// as the load crosses `go_hispeed_load`, then adjust around a target load.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InteractiveGovernor {
    /// Load that triggers the jump to the hi-speed frequency.
    pub go_hispeed_load: f64,
    /// Fraction of the maximum frequency used as the hi-speed frequency.
    pub hispeed_fraction: f64,
    /// Long-run target load the governor tries to keep the CPU at.
    pub target_load: f64,
}

impl Default for InteractiveGovernor {
    fn default() -> Self {
        InteractiveGovernor {
            go_hispeed_load: 0.85,
            hispeed_fraction: 0.75,
            target_load: 0.90,
        }
    }
}

impl CpufreqGovernor for InteractiveGovernor {
    fn select_frequency(&mut self, input: &GovernorInput, opps: &OppTable) -> Frequency {
        let load = input.load.clamp(0.0, 1.0);
        let max_mhz = opps.highest().frequency.mhz() as f64;
        let target_mhz = input.current.mhz() as f64 * load / self.target_load;
        let chosen = if load >= self.go_hispeed_load {
            // At sustained high load keep climbing past the hi-speed point.
            let hispeed = self.hispeed_fraction * max_mhz;
            target_mhz.max(hispeed)
        } else {
            target_mhz
        };
        opps.ceil(Frequency::from_mhz(chosen.ceil() as u32))
            .frequency
    }

    fn name(&self) -> &'static str {
        "interactive"
    }
}

/// The `performance` governor: always the maximum frequency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PerformanceGovernor;

impl CpufreqGovernor for PerformanceGovernor {
    fn select_frequency(&mut self, _input: &GovernorInput, opps: &OppTable) -> Frequency {
        opps.highest().frequency
    }

    fn name(&self) -> &'static str {
        "performance"
    }
}

/// The `powersave` governor: always the minimum frequency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PowersaveGovernor;

impl CpufreqGovernor for PowersaveGovernor {
    fn select_frequency(&mut self, _input: &GovernorInput, opps: &OppTable) -> Frequency {
        opps.lowest().frequency
    }

    fn name(&self) -> &'static str {
        "powersave"
    }
}

/// The `userspace` governor: a fixed frequency chosen by the caller (used by
/// the PRBS identification experiments, which toggle the frequency directly).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UserspaceGovernor {
    /// The pinned frequency.
    pub frequency: Frequency,
}

impl UserspaceGovernor {
    /// Creates a userspace governor pinned to `frequency`.
    pub fn new(frequency: Frequency) -> Self {
        UserspaceGovernor { frequency }
    }

    /// Re-pins the governor to a new frequency (how the PRBS experiment
    /// toggles between the minimum and maximum levels).
    pub fn set_frequency(&mut self, frequency: Frequency) {
        self.frequency = frequency;
    }
}

impl CpufreqGovernor for UserspaceGovernor {
    fn select_frequency(&mut self, _input: &GovernorInput, opps: &OppTable) -> Frequency {
        // Snap to the nearest supported operating point at or below the pin.
        opps.floor(self.frequency)
            .unwrap_or_else(|| opps.lowest())
            .frequency
    }

    fn name(&self) -> &'static str {
        "userspace"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn input(load: f64, mhz: u32) -> GovernorInput {
        GovernorInput {
            load,
            current: Frequency::from_mhz(mhz),
        }
    }

    #[test]
    fn ondemand_jumps_to_max_under_high_load() {
        let opps = OppTable::exynos5410_big();
        let mut gov = OndemandGovernor::default();
        assert_eq!(gov.select_frequency(&input(0.95, 800), &opps).mhz(), 1600);
        assert_eq!(gov.select_frequency(&input(1.0, 1600), &opps).mhz(), 1600);
    }

    #[test]
    fn ondemand_scales_down_proportionally_to_load() {
        let opps = OppTable::exynos5410_big();
        let mut gov = OndemandGovernor::default();
        // 40% load at 1.6 GHz needs ~800 MHz at 80% headroom.
        assert_eq!(gov.select_frequency(&input(0.40, 1600), &opps).mhz(), 800);
        // 60% load at 1.6 GHz needs 1200 MHz.
        assert_eq!(gov.select_frequency(&input(0.60, 1600), &opps).mhz(), 1200);
        // Idle load clamps at the minimum.
        assert_eq!(gov.select_frequency(&input(0.0, 1600), &opps).mhz(), 800);
    }

    #[test]
    fn ondemand_clamps_out_of_range_load() {
        let opps = OppTable::exynos5410_big();
        let mut gov = OndemandGovernor::default();
        assert_eq!(gov.select_frequency(&input(7.0, 800), &opps).mhz(), 1600);
        assert_eq!(gov.select_frequency(&input(-1.0, 1600), &opps).mhz(), 800);
    }

    #[test]
    fn interactive_ramps_to_hispeed() {
        let opps = OppTable::exynos5410_big();
        let mut gov = InteractiveGovernor::default();
        // A burst of load from a low frequency jumps at least to the hi-speed point.
        let f = gov.select_frequency(&input(0.9, 800), &opps);
        assert!(f.mhz() >= 1200, "hispeed jump gave {f}");
        // Low load tracks the target load downwards.
        let f = gov.select_frequency(&input(0.3, 1600), &opps);
        assert!(f.mhz() <= 900, "low load gave {f}");
    }

    #[test]
    fn interactive_sustained_full_load_reaches_max() {
        let opps = OppTable::exynos5410_big();
        let mut gov = InteractiveGovernor::default();
        let mut freq = opps.lowest().frequency;
        for _ in 0..10 {
            freq = gov.select_frequency(&input(1.0, freq.mhz()), &opps);
        }
        assert_eq!(freq.mhz(), 1600);
    }

    #[test]
    fn performance_and_powersave_pin_the_extremes() {
        let opps = OppTable::exynos5410_little();
        assert_eq!(
            PerformanceGovernor
                .select_frequency(&input(0.1, 500), &opps)
                .mhz(),
            1200
        );
        assert_eq!(
            PowersaveGovernor
                .select_frequency(&input(1.0, 1200), &opps)
                .mhz(),
            500
        );
    }

    #[test]
    fn userspace_pins_and_snaps_to_table() {
        let opps = OppTable::exynos5410_big();
        let mut gov = UserspaceGovernor::new(Frequency::from_mhz(1234));
        assert_eq!(gov.select_frequency(&input(1.0, 800), &opps).mhz(), 1200);
        gov.set_frequency(Frequency::from_mhz(100));
        assert_eq!(gov.select_frequency(&input(1.0, 800), &opps).mhz(), 800);
    }

    #[test]
    fn governor_names_match_linux() {
        assert_eq!(OndemandGovernor::default().name(), "ondemand");
        assert_eq!(InteractiveGovernor::default().name(), "interactive");
        assert_eq!(PerformanceGovernor.name(), "performance");
        assert_eq!(PowersaveGovernor.name(), "powersave");
        assert_eq!(
            UserspaceGovernor::new(Frequency::from_mhz(800)).name(),
            "userspace"
        );
    }
}

//! The board's default fan controller.

use serde::{Deserialize, Serialize};
use soc_model::{FanLevel, FanPolicy};

/// Stateful wrapper around the default fan policy: remembers the current level
/// so that the hysteresis of [`FanPolicy::level_for`] applies across control
/// intervals.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FanController {
    policy: FanPolicy,
    level: FanLevel,
    /// `false` models the fan being physically removed (the "without fan" and
    /// DTPM configurations): the level is forced to `Off` regardless of
    /// temperature.
    enabled: bool,
}

impl FanController {
    /// A controller running the board's default 57/63/68 °C policy.
    pub fn odroid_default() -> Self {
        FanController {
            policy: FanPolicy::odroid_default(),
            level: FanLevel::Off,
            enabled: true,
        }
    }

    /// A controller for a board whose fan has been removed or disabled.
    pub fn disabled() -> Self {
        FanController {
            policy: FanPolicy::odroid_default(),
            level: FanLevel::Off,
            enabled: false,
        }
    }

    /// Whether the fan is physically present and under control.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The current fan level.
    pub fn level(&self) -> FanLevel {
        self.level
    }

    /// Updates the fan level from the current maximum core temperature and
    /// returns the new level.
    pub fn update(&mut self, max_core_temp_c: f64) -> FanLevel {
        if !self.enabled {
            self.level = FanLevel::Off;
            return self.level;
        }
        self.level = self.policy.level_for(max_core_temp_c, self.level);
        self.level
    }
}

impl Default for FanController {
    fn default() -> Self {
        FanController::odroid_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steps_through_levels_as_temperature_rises() {
        let mut fan = FanController::odroid_default();
        assert_eq!(fan.update(45.0), FanLevel::Off);
        assert_eq!(fan.update(58.0), FanLevel::Base);
        assert_eq!(fan.update(64.0), FanLevel::Half);
        assert_eq!(fan.update(70.0), FanLevel::Full);
        assert!(fan.is_enabled());
    }

    #[test]
    fn hysteresis_holds_level_near_threshold() {
        let mut fan = FanController::odroid_default();
        fan.update(64.0);
        assert_eq!(fan.level(), FanLevel::Half);
        // Dropping just below the threshold keeps the fan at half speed.
        assert_eq!(fan.update(62.5), FanLevel::Half);
        // A clear drop steps it down.
        assert_eq!(fan.update(58.0), FanLevel::Base);
    }

    #[test]
    fn disabled_fan_never_spins() {
        let mut fan = FanController::disabled();
        assert!(!fan.is_enabled());
        assert_eq!(fan.update(90.0), FanLevel::Off);
        assert_eq!(fan.level(), FanLevel::Off);
    }
}

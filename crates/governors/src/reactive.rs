//! Reactive thermal-throttling heuristic (the software analogue of the fan).
//!
//! Section 6.2: "we also implemented a heuristic thermal management algorithm
//! which mimics the fan control algorithm. Instead of increasing the fan
//! speed, this heuristic throttles the frequency by 18 % and 25 % when the
//! temperature passes 63 °C and 68 °C, respectively." The paper measures a
//! ≈20 % performance loss for this baseline, which the proposed predictive
//! DTPM algorithm beats by a wide margin.

use serde::{Deserialize, Serialize};
use soc_model::{Frequency, OppTable};

/// Throttling state of the reactive heuristic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum ThrottleStage {
    /// No throttling.
    None,
    /// 18 % frequency reduction (above the first threshold).
    Mild,
    /// 25 % frequency reduction (above the second threshold).
    Strong,
}

/// Reactive frequency throttler with the paper's thresholds and factors.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReactiveThrottler {
    /// Temperature (°C) above which the mild throttle engages.
    pub mild_threshold_c: f64,
    /// Temperature (°C) above which the strong throttle engages.
    pub strong_threshold_c: f64,
    /// Temperature (°C) below which throttling is released.
    pub release_threshold_c: f64,
    /// Frequency multiplier for the mild stage (0.82 = −18 %).
    pub mild_factor: f64,
    /// Frequency multiplier for the strong stage (0.75 = −25 %).
    pub strong_factor: f64,
    stage: ThrottleStage,
}

impl ReactiveThrottler {
    /// The heuristic exactly as described in Section 6.2.
    pub fn paper_default() -> Self {
        ReactiveThrottler {
            mild_threshold_c: 63.0,
            strong_threshold_c: 68.0,
            release_threshold_c: 57.0,
            mild_factor: 0.82,
            strong_factor: 0.75,
            stage: ThrottleStage::None,
        }
    }

    /// A throttler re-anchored to an arbitrary temperature constraint,
    /// keeping the paper's threshold spacing and cut factors: the strong
    /// stage engages at the constraint, the mild stage 5 °C below it and the
    /// release 11 °C below it (the 63/68/57 °C geometry of
    /// [`ReactiveThrottler::paper_default`], slid to `constraint_c`). This is
    /// the degraded-mode fallback a predictive policy demotes to when its
    /// sensor chain goes unreliable — same constraint, no model in the loop.
    pub fn for_constraint(constraint_c: f64) -> Self {
        ReactiveThrottler {
            mild_threshold_c: constraint_c - 5.0,
            strong_threshold_c: constraint_c,
            release_threshold_c: constraint_c - 11.0,
            ..ReactiveThrottler::paper_default()
        }
    }

    /// Whether the throttler is currently limiting the frequency.
    pub fn is_throttling(&self) -> bool {
        self.stage != ThrottleStage::None
    }

    /// Applies the heuristic: given the current maximum core temperature and
    /// the frequency the stock governor requested, returns the (possibly
    /// throttled) frequency to actually program.
    pub fn apply(
        &mut self,
        max_core_temp_c: f64,
        requested: Frequency,
        opps: &OppTable,
    ) -> Frequency {
        // Stage transitions (reactive: they only fire after the temperature
        // has already crossed the threshold).
        self.stage = if max_core_temp_c > self.strong_threshold_c {
            ThrottleStage::Strong
        } else if max_core_temp_c > self.mild_threshold_c {
            // Never relax directly from Strong to Mild unless below the mild threshold.
            if self.stage == ThrottleStage::Strong {
                ThrottleStage::Strong
            } else {
                ThrottleStage::Mild
            }
        } else if max_core_temp_c < self.release_threshold_c {
            ThrottleStage::None
        } else {
            self.stage
        };

        match self.stage {
            ThrottleStage::None => requested,
            ThrottleStage::Mild => opps.scaled_floor(requested, self.mild_factor).frequency,
            ThrottleStage::Strong => opps.scaled_floor(requested, self.strong_factor).frequency,
        }
    }
}

impl Default for ReactiveThrottler {
    fn default() -> Self {
        ReactiveThrottler::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_throttle_below_thresholds() {
        let opps = OppTable::exynos5410_big();
        let mut t = ReactiveThrottler::paper_default();
        let f = t.apply(55.0, Frequency::from_mhz(1600), &opps);
        assert_eq!(f.mhz(), 1600);
        assert!(!t.is_throttling());
    }

    #[test]
    fn mild_throttle_cuts_18_percent() {
        let opps = OppTable::exynos5410_big();
        let mut t = ReactiveThrottler::paper_default();
        let f = t.apply(64.0, Frequency::from_mhz(1600), &opps);
        // 1600 * 0.82 = 1312 -> snaps down to 1300 MHz.
        assert_eq!(f.mhz(), 1300);
        assert!(t.is_throttling());
    }

    #[test]
    fn strong_throttle_cuts_25_percent() {
        let opps = OppTable::exynos5410_big();
        let mut t = ReactiveThrottler::paper_default();
        let f = t.apply(69.0, Frequency::from_mhz(1600), &opps);
        assert_eq!(f.mhz(), 1200);
    }

    #[test]
    fn strong_stage_sticks_until_temperature_recovers() {
        let opps = OppTable::exynos5410_big();
        let mut t = ReactiveThrottler::paper_default();
        t.apply(69.0, Frequency::from_mhz(1600), &opps);
        // Still above the mild threshold: remains at the strong cut.
        let f = t.apply(65.0, Frequency::from_mhz(1600), &opps);
        assert_eq!(f.mhz(), 1200);
        // Between release and mild: holds whatever stage it was in.
        let f = t.apply(60.0, Frequency::from_mhz(1600), &opps);
        assert_eq!(f.mhz(), 1200);
        // Below the release threshold: back to the governor's request.
        let f = t.apply(55.0, Frequency::from_mhz(1600), &opps);
        assert_eq!(f.mhz(), 1600);
        assert!(!t.is_throttling());
    }

    #[test]
    fn throttles_relative_to_requested_frequency() {
        let opps = OppTable::exynos5410_big();
        let mut t = ReactiveThrottler::paper_default();
        let f = t.apply(64.0, Frequency::from_mhz(1000), &opps);
        // 1000 * 0.82 = 820 -> snaps to 800 MHz.
        assert_eq!(f.mhz(), 800);
    }
}

//! Linux-style governors and baseline thermal-management policies.
//!
//! The DTPM framework of the paper is *non-intrusive*: the stock kernel
//! governors keep making their decisions and the DTPM algorithm only
//! overrides them when a thermal violation is predicted (Figure 3.1). This
//! crate provides those stock pieces plus the baselines the evaluation
//! compares against:
//!
//! * [`cpufreq`] — the `ondemand` and `interactive` frequency governors the
//!   default configuration runs, along with `performance`, `powersave` and
//!   `userspace`,
//! * [`hotplug`] — the idle-state/core-count governor that wakes additional
//!   cores as the number of runnable threads grows,
//! * [`fan`] — the board's default fan controller (57/63/68 °C thresholds),
//! * [`reactive`] — the reactive throttling heuristic that mimics the fan
//!   controller in software (−18 % / −25 % frequency at 63 / 68 °C), the
//!   baseline the paper reports as costing ≈20 % performance.
//!
//! # Example
//!
//! ```
//! use governors::{CpufreqGovernor, GovernorInput, OndemandGovernor};
//! use soc_model::{Frequency, OppTable};
//!
//! let opps = OppTable::exynos5410_big();
//! let mut gov = OndemandGovernor::default();
//! let busy = GovernorInput { load: 0.97, current: Frequency::from_mhz(800) };
//! assert_eq!(gov.select_frequency(&busy, &opps).mhz(), 1600);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cpufreq;
pub mod fan;
pub mod hotplug;
pub mod reactive;

pub use cpufreq::{
    CpufreqGovernor, GovernorInput, GovernorKind, InteractiveGovernor, OndemandGovernor,
    PerformanceGovernor, PowersaveGovernor, UserspaceGovernor,
};
pub use fan::FanController;
pub use hotplug::HotplugGovernor;
pub use reactive::ReactiveThrottler;

//! Power domains measured by the on-board sensors.

use serde::{Deserialize, Serialize};

use crate::cluster::ClusterKind;

/// The four power domains whose consumption the Odroid-XU+E measures with
/// dedicated current sensors, and which form the input vector
/// `P = [P_big, P_little, P_gpu, P_mem]ᵀ` of the thermal model (Eq. 5.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PowerDomain {
    /// The Cortex-A15 (big) CPU cluster.
    BigCpu,
    /// The Cortex-A7 (little) CPU cluster.
    LittleCpu,
    /// The GPU.
    Gpu,
    /// The memory subsystem.
    Memory,
}

impl PowerDomain {
    /// All four measured domains in the order used by the thermal model's
    /// power input vector.
    pub const ALL: [PowerDomain; 4] = [
        PowerDomain::BigCpu,
        PowerDomain::LittleCpu,
        PowerDomain::Gpu,
        PowerDomain::Memory,
    ];

    /// Number of measured power domains.
    pub const COUNT: usize = 4;

    /// Index of this domain in the thermal-model power vector.
    pub fn index(self) -> usize {
        match self {
            PowerDomain::BigCpu => 0,
            PowerDomain::LittleCpu => 1,
            PowerDomain::Gpu => 2,
            PowerDomain::Memory => 3,
        }
    }

    /// The domain at the given power-vector index, if valid.
    pub fn from_index(index: usize) -> Option<PowerDomain> {
        PowerDomain::ALL.get(index).copied()
    }

    /// The CPU power domain corresponding to a cluster.
    pub fn from_cluster(kind: ClusterKind) -> PowerDomain {
        match kind {
            ClusterKind::Big => PowerDomain::BigCpu,
            ClusterKind::Little => PowerDomain::LittleCpu,
        }
    }

    /// Returns `true` if this domain is one of the CPU clusters.
    pub fn is_cpu(self) -> bool {
        matches!(self, PowerDomain::BigCpu | PowerDomain::LittleCpu)
    }
}

impl std::fmt::Display for PowerDomain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            PowerDomain::BigCpu => "A15 (big) cluster",
            PowerDomain::LittleCpu => "A7 (little) cluster",
            PowerDomain::Gpu => "GPU",
            PowerDomain::Memory => "memory",
        };
        write!(f, "{name}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_round_trip() {
        for domain in PowerDomain::ALL {
            assert_eq!(PowerDomain::from_index(domain.index()), Some(domain));
        }
        assert_eq!(PowerDomain::from_index(4), None);
        assert_eq!(PowerDomain::ALL.len(), PowerDomain::COUNT);
    }

    #[test]
    fn cluster_mapping() {
        assert_eq!(
            PowerDomain::from_cluster(ClusterKind::Big),
            PowerDomain::BigCpu
        );
        assert_eq!(
            PowerDomain::from_cluster(ClusterKind::Little),
            PowerDomain::LittleCpu
        );
        assert!(PowerDomain::BigCpu.is_cpu());
        assert!(PowerDomain::LittleCpu.is_cpu());
        assert!(!PowerDomain::Gpu.is_cpu());
        assert!(!PowerDomain::Memory.is_cpu());
    }

    #[test]
    fn display_is_descriptive() {
        assert!(PowerDomain::BigCpu.to_string().contains("big"));
        assert!(PowerDomain::Memory.to_string().contains("memory"));
    }
}

//! Error type for platform-model operations.

use std::error::Error;
use std::fmt;

use crate::cluster::ClusterKind;

/// Errors returned when constructing or manipulating the platform model.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SocError {
    /// A frequency that is not one of the discrete operating points was requested.
    UnsupportedFrequency {
        /// The cluster or device the frequency was requested for.
        target: &'static str,
        /// The requested frequency in MHz.
        requested_mhz: u32,
    },
    /// A core index outside the cluster was addressed.
    InvalidCoreIndex {
        /// The cluster addressed.
        cluster: ClusterKind,
        /// The offending index.
        index: usize,
        /// Number of cores in that cluster.
        core_count: usize,
    },
    /// An operating-point table was empty or not strictly increasing.
    InvalidOppTable(&'static str),
    /// The platform state violates an invariant (e.g. no online core at all).
    InvalidState(&'static str),
}

impl fmt::Display for SocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SocError::UnsupportedFrequency {
                target,
                requested_mhz,
            } => write!(f, "unsupported frequency {requested_mhz} MHz for {target}"),
            SocError::InvalidCoreIndex {
                cluster,
                index,
                core_count,
            } => write!(
                f,
                "core index {index} out of range for {cluster} cluster with {core_count} cores"
            ),
            SocError::InvalidOppTable(msg) => write!(f, "invalid operating-point table: {msg}"),
            SocError::InvalidState(msg) => write!(f, "invalid platform state: {msg}"),
        }
    }
}

impl Error for SocError {}

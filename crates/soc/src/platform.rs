//! The complete platform specification and its run-time actuator state.

use serde::{Deserialize, Serialize};

use crate::cluster::{ClusterKind, ClusterSpec};
use crate::fan::{FanModel, FanPolicy};
use crate::opp::{Frequency, OppTable, Voltage};
use crate::SocError;

/// Static description of the SoC and board: clusters, GPU, fan.
///
/// # Example
///
/// ```
/// use soc_model::SocSpec;
///
/// let spec = SocSpec::odroid_xu_e();
/// assert_eq!(spec.big_cluster().core_count, 4);
/// assert_eq!(spec.gpu_opps().len(), 5);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SocSpec {
    big: ClusterSpec,
    little: ClusterSpec,
    gpu_opps: OppTable,
    fan: FanModel,
    fan_policy: FanPolicy,
    /// Ambient temperature around the board in °C.
    ambient_c: f64,
}

impl SocSpec {
    /// The Odroid-XU+E board with the Samsung Exynos 5410 used by the paper.
    pub fn odroid_xu_e() -> Self {
        SocSpec {
            big: ClusterSpec::exynos5410_big(),
            little: ClusterSpec::exynos5410_little(),
            gpu_opps: OppTable::exynos5410_gpu(),
            fan: FanModel::odroid_xu_e(),
            fan_policy: FanPolicy::odroid_default(),
            ambient_c: 28.0,
        }
    }

    /// Returns a copy of this spec with a different ambient temperature, used
    /// by the furnace characterisation experiments that sweep the ambient
    /// from 40 °C to 80 °C.
    pub fn with_ambient_c(mut self, ambient_c: f64) -> Self {
        self.ambient_c = ambient_c;
        self
    }

    /// The big (Cortex-A15) cluster description.
    pub fn big_cluster(&self) -> &ClusterSpec {
        &self.big
    }

    /// The little (Cortex-A7) cluster description.
    pub fn little_cluster(&self) -> &ClusterSpec {
        &self.little
    }

    /// The cluster description for the given kind.
    pub fn cluster(&self, kind: ClusterKind) -> &ClusterSpec {
        match kind {
            ClusterKind::Big => &self.big,
            ClusterKind::Little => &self.little,
        }
    }

    /// Operating points of the big cluster (Table 6.1).
    pub fn big_opps(&self) -> &OppTable {
        &self.big.opps
    }

    /// Operating points of the little cluster (Table 6.2).
    pub fn little_opps(&self) -> &OppTable {
        &self.little.opps
    }

    /// Operating points of the GPU (Table 6.3).
    pub fn gpu_opps(&self) -> &OppTable {
        &self.gpu_opps
    }

    /// Operating points of the given cluster.
    pub fn cluster_opps(&self, kind: ClusterKind) -> &OppTable {
        &self.cluster(kind).opps
    }

    /// The board fan model.
    pub fn fan(&self) -> &FanModel {
        &self.fan
    }

    /// The default fan-control thresholds.
    pub fn fan_policy(&self) -> &FanPolicy {
        &self.fan_policy
    }

    /// Ambient temperature around the board, in °C.
    pub fn ambient_c(&self) -> f64 {
        self.ambient_c
    }

    /// Number of temperature hotspots with dedicated sensors. On the Exynos
    /// 5410 each of the four big cores has its own sensor; these are the
    /// states of the identified thermal model.
    pub fn hotspot_count(&self) -> usize {
        self.big.core_count
    }
}

impl Default for SocSpec {
    fn default() -> Self {
        SocSpec::odroid_xu_e()
    }
}

/// The actuator state of the platform: everything a governor or the DTPM
/// algorithm can change at run time.
///
/// # Example
///
/// ```
/// use soc_model::{ClusterKind, Frequency, PlatformState, SocSpec};
///
/// let spec = SocSpec::odroid_xu_e();
/// let mut state = PlatformState::default_for(&spec);
/// state.set_cluster_frequency(ClusterKind::Big, Frequency::from_mhz(1200));
/// assert_eq!(state.active_frequency().mhz(), 1200);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlatformState {
    /// Which CPU cluster is currently powered (cluster-exclusive switching).
    pub active_cluster: ClusterKind,
    /// Operating frequency of the big cluster (applies when it is active).
    pub big_frequency: Frequency,
    /// Operating frequency of the little cluster (applies when it is active).
    pub little_frequency: Frequency,
    /// Operating frequency of the GPU.
    pub gpu_frequency: Frequency,
    /// Hotplug state of the big cores (`true` = online).
    pub big_cores_online: Vec<bool>,
    /// Hotplug state of the little cores (`true` = online).
    pub little_cores_online: Vec<bool>,
    /// Current fan level (always `Off` when the fan is removed/disabled).
    pub fan_level: crate::fan::FanLevel,
}

impl PlatformState {
    /// The state the board boots into: big cluster active, all cores online,
    /// maximum frequencies (the `performance`/`ondemand` governor will adjust
    /// from there), fan off.
    pub fn default_for(spec: &SocSpec) -> Self {
        PlatformState {
            active_cluster: ClusterKind::Big,
            big_frequency: spec.big_opps().highest().frequency,
            little_frequency: spec.little_opps().highest().frequency,
            gpu_frequency: spec.gpu_opps().lowest().frequency,
            big_cores_online: vec![true; spec.big_cluster().core_count],
            little_cores_online: vec![true; spec.little_cluster().core_count],
            fan_level: crate::fan::FanLevel::Off,
        }
    }

    /// Frequency of the currently active cluster.
    pub fn active_frequency(&self) -> Frequency {
        match self.active_cluster {
            ClusterKind::Big => self.big_frequency,
            ClusterKind::Little => self.little_frequency,
        }
    }

    /// Frequency of the given cluster.
    pub fn cluster_frequency(&self, kind: ClusterKind) -> Frequency {
        match kind {
            ClusterKind::Big => self.big_frequency,
            ClusterKind::Little => self.little_frequency,
        }
    }

    /// Sets the frequency of the given cluster.
    pub fn set_cluster_frequency(&mut self, kind: ClusterKind, frequency: Frequency) {
        match kind {
            ClusterKind::Big => self.big_frequency = frequency,
            ClusterKind::Little => self.little_frequency = frequency,
        }
    }

    /// Supply voltage of the active cluster at its current frequency.
    ///
    /// # Errors
    ///
    /// Returns [`SocError::UnsupportedFrequency`] if the current frequency is
    /// not one of the cluster's operating points.
    pub fn active_voltage(&self, spec: &SocSpec) -> Result<Voltage, SocError> {
        spec.cluster_opps(self.active_cluster)
            .voltage_for(self.active_frequency())
    }

    /// Number of online cores in the given cluster.
    pub fn online_core_count(&self, kind: ClusterKind) -> usize {
        self.core_mask(kind).iter().filter(|&&on| on).count()
    }

    /// Number of online cores in the currently active cluster.
    pub fn active_online_core_count(&self) -> usize {
        self.online_core_count(self.active_cluster)
    }

    /// The hotplug mask of the given cluster.
    pub fn core_mask(&self, kind: ClusterKind) -> &[bool] {
        match kind {
            ClusterKind::Big => &self.big_cores_online,
            ClusterKind::Little => &self.little_cores_online,
        }
    }

    /// Whether the given core is online.
    ///
    /// Cores outside the cluster are reported offline.
    pub fn is_core_online(&self, kind: ClusterKind, core: usize) -> bool {
        self.core_mask(kind).get(core).copied().unwrap_or(false)
    }

    /// Sets the hotplug state of one core. Indices outside the cluster are
    /// ignored (the kernel would reject the sysfs write the same way).
    pub fn set_core_online(&mut self, kind: ClusterKind, core: usize, online: bool) {
        let mask = match kind {
            ClusterKind::Big => &mut self.big_cores_online,
            ClusterKind::Little => &mut self.little_cores_online,
        };
        if let Some(slot) = mask.get_mut(core) {
            *slot = online;
        }
    }

    /// Brings all cores of the given cluster online.
    pub fn bring_all_cores_online(&mut self, kind: ClusterKind) {
        let mask = match kind {
            ClusterKind::Big => &mut self.big_cores_online,
            ClusterKind::Little => &mut self.little_cores_online,
        };
        mask.iter_mut().for_each(|c| *c = true);
    }

    /// Switches the active cluster, bringing all cores of the target cluster
    /// online (this is what the kernel switcher does on a cluster migration)
    /// and setting its frequency to the given value.
    pub fn migrate_to_cluster(&mut self, kind: ClusterKind, frequency: Frequency) {
        self.active_cluster = kind;
        self.bring_all_cores_online(kind);
        self.set_cluster_frequency(kind, frequency);
    }

    /// Validates the state against the platform spec.
    ///
    /// # Errors
    ///
    /// Returns [`SocError::InvalidState`] if the active cluster has no online
    /// core, or [`SocError::UnsupportedFrequency`] if any configured frequency
    /// is not an operating point of its device.
    pub fn validate(&self, spec: &SocSpec) -> Result<(), SocError> {
        if self.active_online_core_count() == 0 {
            return Err(SocError::InvalidState("active cluster has no online cores"));
        }
        if self.big_cores_online.len() != spec.big_cluster().core_count
            || self.little_cores_online.len() != spec.little_cluster().core_count
        {
            return Err(SocError::InvalidState(
                "hotplug mask length does not match cluster size",
            ));
        }
        for (table, freq, target) in [
            (spec.big_opps(), self.big_frequency, "big cluster"),
            (spec.little_opps(), self.little_frequency, "little cluster"),
            (spec.gpu_opps(), self.gpu_frequency, "gpu"),
        ] {
            if table.index_of(freq).is_none() {
                return Err(SocError::UnsupportedFrequency {
                    target,
                    requested_mhz: freq.mhz(),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fan::FanLevel;

    #[test]
    fn default_state_is_valid() {
        let spec = SocSpec::odroid_xu_e();
        let state = PlatformState::default_for(&spec);
        assert!(state.validate(&spec).is_ok());
        assert_eq!(state.active_cluster, ClusterKind::Big);
        assert_eq!(state.active_frequency().mhz(), 1600);
        assert_eq!(state.online_core_count(ClusterKind::Big), 4);
        assert_eq!(state.fan_level, FanLevel::Off);
    }

    #[test]
    fn hotplug_changes_online_count() {
        let spec = SocSpec::odroid_xu_e();
        let mut state = PlatformState::default_for(&spec);
        state.set_core_online(ClusterKind::Big, 0, false);
        state.set_core_online(ClusterKind::Big, 3, false);
        assert_eq!(state.online_core_count(ClusterKind::Big), 2);
        assert!(!state.is_core_online(ClusterKind::Big, 0));
        assert!(state.is_core_online(ClusterKind::Big, 1));
        // Out-of-range indices are ignored and read as offline.
        state.set_core_online(ClusterKind::Big, 99, true);
        assert!(!state.is_core_online(ClusterKind::Big, 99));
        state.bring_all_cores_online(ClusterKind::Big);
        assert_eq!(state.online_core_count(ClusterKind::Big), 4);
    }

    #[test]
    fn cluster_migration_brings_target_online() {
        let spec = SocSpec::odroid_xu_e();
        let mut state = PlatformState::default_for(&spec);
        state.set_core_online(ClusterKind::Little, 1, false);
        state.migrate_to_cluster(ClusterKind::Little, Frequency::from_mhz(1000));
        assert_eq!(state.active_cluster, ClusterKind::Little);
        assert_eq!(state.active_frequency().mhz(), 1000);
        assert_eq!(state.online_core_count(ClusterKind::Little), 4);
        assert!(state.validate(&spec).is_ok());
    }

    #[test]
    fn validate_rejects_all_cores_offline() {
        let spec = SocSpec::odroid_xu_e();
        let mut state = PlatformState::default_for(&spec);
        for i in 0..4 {
            state.set_core_online(ClusterKind::Big, i, false);
        }
        assert!(matches!(
            state.validate(&spec),
            Err(SocError::InvalidState(_))
        ));
    }

    #[test]
    fn validate_rejects_off_table_frequency() {
        let spec = SocSpec::odroid_xu_e();
        let mut state = PlatformState::default_for(&spec);
        state.big_frequency = Frequency::from_mhz(1234);
        assert!(matches!(
            state.validate(&spec),
            Err(SocError::UnsupportedFrequency { .. })
        ));
    }

    #[test]
    fn active_voltage_follows_frequency() {
        let spec = SocSpec::odroid_xu_e();
        let mut state = PlatformState::default_for(&spec);
        assert_eq!(state.active_voltage(&spec).unwrap().volts(), 1.20);
        state.set_cluster_frequency(ClusterKind::Big, Frequency::from_mhz(800));
        assert_eq!(state.active_voltage(&spec).unwrap().volts(), 0.92);
        state.migrate_to_cluster(ClusterKind::Little, Frequency::from_mhz(500));
        assert_eq!(state.active_voltage(&spec).unwrap().volts(), 0.90);
    }

    #[test]
    fn spec_accessors() {
        let spec = SocSpec::odroid_xu_e();
        assert_eq!(spec.hotspot_count(), 4);
        assert_eq!(spec.cluster(ClusterKind::Big).kind, ClusterKind::Big);
        assert_eq!(spec.cluster_opps(ClusterKind::Little).len(), 8);
        assert_eq!(spec.ambient_c(), 28.0);
        let hot = spec.clone().with_ambient_c(60.0);
        assert_eq!(hot.ambient_c(), 60.0);
        assert_eq!(SocSpec::default(), SocSpec::odroid_xu_e());
    }
}

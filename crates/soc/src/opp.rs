//! Operating performance points (frequency/voltage pairs) and OPP tables.
//!
//! The Exynos 5410 exposes nine discrete frequency levels for the big (A15)
//! cluster, eight for the little (A7) cluster and five for the GPU — Tables
//! 6.1, 6.2 and 6.3 of the paper. Each frequency implies a supply voltage
//! (DVFS), which the power model needs for `P_dyn = αCV²f` and
//! `P_leak = V·I_leak`.

use serde::{Deserialize, Serialize};

use crate::SocError;

/// A clock frequency, stored in MHz.
///
/// # Example
///
/// ```
/// use soc_model::Frequency;
///
/// let f = Frequency::from_mhz(1600);
/// assert_eq!(f.mhz(), 1600);
/// assert!((f.ghz() - 1.6).abs() < 1e-12);
/// assert!((f.hz() - 1.6e9).abs() < 1.0);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Frequency(u32);

impl Frequency {
    /// Creates a frequency from a value in MHz.
    pub fn from_mhz(mhz: u32) -> Self {
        Frequency(mhz)
    }

    /// Frequency in MHz.
    pub fn mhz(self) -> u32 {
        self.0
    }

    /// Frequency in GHz.
    pub fn ghz(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// Frequency in Hz.
    pub fn hz(self) -> f64 {
        self.0 as f64 * 1.0e6
    }
}

impl std::fmt::Display for Frequency {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} MHz", self.0)
    }
}

/// A supply voltage in volts.
///
/// # Example
///
/// ```
/// use soc_model::Voltage;
///
/// let v = Voltage::from_volts(1.1);
/// assert_eq!(v.volts(), 1.1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Voltage(f64);

impl Voltage {
    /// Creates a voltage from a value in volts.
    pub fn from_volts(volts: f64) -> Self {
        Voltage(volts)
    }

    /// Voltage in volts.
    pub fn volts(self) -> f64 {
        self.0
    }
}

impl std::fmt::Display for Voltage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.3} V", self.0)
    }
}

/// One operating performance point: a frequency and the voltage it requires.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OperatingPoint {
    /// Clock frequency of this operating point.
    pub frequency: Frequency,
    /// Supply voltage required at this frequency.
    pub voltage: Voltage,
}

impl OperatingPoint {
    /// Creates an operating point from a frequency in MHz and a voltage in volts.
    pub fn new(mhz: u32, volts: f64) -> Self {
        OperatingPoint {
            frequency: Frequency::from_mhz(mhz),
            voltage: Voltage::from_volts(volts),
        }
    }
}

/// An ordered table of operating performance points (lowest frequency first).
///
/// # Example
///
/// ```
/// use soc_model::{Frequency, OppTable};
///
/// let table = OppTable::exynos5410_big();
/// assert_eq!(table.len(), 9);                         // Table 6.1
/// assert_eq!(table.lowest().frequency.mhz(), 800);
/// assert_eq!(table.highest().frequency.mhz(), 1600);
///
/// // The DTPM algorithm maps a continuous budget frequency onto the next
/// // lower discrete level.
/// let f = table.floor(Frequency::from_mhz(1234)).unwrap();
/// assert_eq!(f.frequency.mhz(), 1200);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OppTable {
    points: Vec<OperatingPoint>,
}

impl OppTable {
    /// Builds an OPP table from the given points.
    ///
    /// # Errors
    ///
    /// Returns [`SocError::InvalidOppTable`] if the table is empty or the
    /// frequencies are not strictly increasing.
    pub fn new(points: Vec<OperatingPoint>) -> Result<Self, SocError> {
        if points.is_empty() {
            return Err(SocError::InvalidOppTable("table must not be empty"));
        }
        if points.windows(2).any(|w| w[1].frequency <= w[0].frequency) {
            return Err(SocError::InvalidOppTable(
                "frequencies must be strictly increasing",
            ));
        }
        if points.iter().any(|p| p.voltage.volts() <= 0.0) {
            return Err(SocError::InvalidOppTable("voltages must be positive"));
        }
        Ok(OppTable { points })
    }

    /// Big (Cortex-A15) cluster table of the Exynos 5410 — Table 6.1 of the
    /// paper (800–1600 MHz in 100 MHz steps) with representative supply
    /// voltages.
    pub fn exynos5410_big() -> Self {
        OppTable::new(vec![
            OperatingPoint::new(800, 0.92),
            OperatingPoint::new(900, 0.95),
            OperatingPoint::new(1000, 0.98),
            OperatingPoint::new(1100, 1.01),
            OperatingPoint::new(1200, 1.04),
            OperatingPoint::new(1300, 1.08),
            OperatingPoint::new(1400, 1.12),
            OperatingPoint::new(1500, 1.16),
            OperatingPoint::new(1600, 1.20),
        ])
        .expect("static table is valid")
    }

    /// Little (Cortex-A7) cluster table — Table 6.2 of the paper
    /// (500–1200 MHz in 100 MHz steps).
    pub fn exynos5410_little() -> Self {
        OppTable::new(vec![
            OperatingPoint::new(500, 0.90),
            OperatingPoint::new(600, 0.92),
            OperatingPoint::new(700, 0.95),
            OperatingPoint::new(800, 0.98),
            OperatingPoint::new(900, 1.02),
            OperatingPoint::new(1000, 1.05),
            OperatingPoint::new(1100, 1.10),
            OperatingPoint::new(1200, 1.15),
        ])
        .expect("static table is valid")
    }

    /// GPU table — Table 6.3 of the paper (177–533 MHz, five levels).
    pub fn exynos5410_gpu() -> Self {
        OppTable::new(vec![
            OperatingPoint::new(177, 0.85),
            OperatingPoint::new(266, 0.90),
            OperatingPoint::new(350, 0.95),
            OperatingPoint::new(480, 1.02),
            OperatingPoint::new(533, 1.05),
        ])
        .expect("static table is valid")
    }

    /// Number of operating points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` if the table has no entries (never the case for a
    /// successfully constructed table).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Operating points, lowest frequency first.
    pub fn points(&self) -> &[OperatingPoint] {
        &self.points
    }

    /// Lowest-frequency operating point.
    pub fn lowest(&self) -> OperatingPoint {
        self.points[0]
    }

    /// Highest-frequency operating point.
    pub fn highest(&self) -> OperatingPoint {
        *self.points.last().expect("table is non-empty")
    }

    /// Index of the operating point with exactly the given frequency.
    pub fn index_of(&self, frequency: Frequency) -> Option<usize> {
        self.points.iter().position(|p| p.frequency == frequency)
    }

    /// Operating point at `index`, if it exists.
    pub fn get(&self, index: usize) -> Option<OperatingPoint> {
        self.points.get(index).copied()
    }

    /// The voltage of the operating point with the given frequency.
    ///
    /// # Errors
    ///
    /// Returns [`SocError::UnsupportedFrequency`] if the frequency is not in
    /// the table.
    pub fn voltage_for(&self, frequency: Frequency) -> Result<Voltage, SocError> {
        self.points
            .iter()
            .find(|p| p.frequency == frequency)
            .map(|p| p.voltage)
            .ok_or(SocError::UnsupportedFrequency {
                target: "opp table",
                requested_mhz: frequency.mhz(),
            })
    }

    /// Highest operating point whose frequency does not exceed `frequency`.
    ///
    /// Returns `None` when `frequency` is below the lowest supported level;
    /// this is the signal the DTPM algorithm uses to conclude that the budget
    /// cannot be met even at `f_min` and that it must drop a core or migrate
    /// to the little cluster.
    pub fn floor(&self, frequency: Frequency) -> Option<OperatingPoint> {
        self.points
            .iter()
            .rev()
            .find(|p| p.frequency <= frequency)
            .copied()
    }

    /// Lowest operating point whose frequency is at least `frequency`
    /// (clamped to the highest level).
    pub fn ceil(&self, frequency: Frequency) -> OperatingPoint {
        self.points
            .iter()
            .find(|p| p.frequency >= frequency)
            .copied()
            .unwrap_or_else(|| self.highest())
    }

    /// The operating point one level below the given frequency, or `None` if
    /// already at (or below) the lowest level.
    pub fn step_down(&self, frequency: Frequency) -> Option<OperatingPoint> {
        let idx = self.index_of(frequency)?;
        if idx == 0 {
            None
        } else {
            Some(self.points[idx - 1])
        }
    }

    /// The operating point one level above the given frequency, or `None` if
    /// already at (or above) the highest level.
    pub fn step_up(&self, frequency: Frequency) -> Option<OperatingPoint> {
        let idx = self.index_of(frequency)?;
        self.points.get(idx + 1).copied()
    }

    /// Returns the operating point closest to scaling `frequency` by `factor`
    /// without exceeding it (used by the reactive throttling heuristic that
    /// cuts the frequency by 18 % / 25 %).
    pub fn scaled_floor(&self, frequency: Frequency, factor: f64) -> OperatingPoint {
        let target = Frequency::from_mhz((frequency.mhz() as f64 * factor).round() as u32);
        self.floor(target).unwrap_or_else(|| self.lowest())
    }

    /// All frequencies in the table, lowest first.
    pub fn frequencies(&self) -> Vec<Frequency> {
        self.points.iter().map(|p| p.frequency).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_tables_have_documented_sizes() {
        assert_eq!(OppTable::exynos5410_big().len(), 9);
        assert_eq!(OppTable::exynos5410_little().len(), 8);
        assert_eq!(OppTable::exynos5410_gpu().len(), 5);
    }

    #[test]
    fn paper_table_frequency_ranges() {
        let big = OppTable::exynos5410_big();
        assert_eq!(big.lowest().frequency.mhz(), 800);
        assert_eq!(big.highest().frequency.mhz(), 1600);
        let little = OppTable::exynos5410_little();
        assert_eq!(little.lowest().frequency.mhz(), 500);
        assert_eq!(little.highest().frequency.mhz(), 1200);
        let gpu = OppTable::exynos5410_gpu();
        assert_eq!(gpu.lowest().frequency.mhz(), 177);
        assert_eq!(gpu.highest().frequency.mhz(), 533);
    }

    #[test]
    fn voltages_increase_with_frequency() {
        for table in [
            OppTable::exynos5410_big(),
            OppTable::exynos5410_little(),
            OppTable::exynos5410_gpu(),
        ] {
            let volts: Vec<f64> = table.points().iter().map(|p| p.voltage.volts()).collect();
            assert!(volts.windows(2).all(|w| w[1] > w[0]), "{volts:?}");
        }
    }

    #[test]
    fn empty_and_unsorted_tables_rejected() {
        assert!(OppTable::new(vec![]).is_err());
        assert!(OppTable::new(vec![
            OperatingPoint::new(1000, 1.0),
            OperatingPoint::new(900, 0.9),
        ])
        .is_err());
        assert!(OppTable::new(vec![
            OperatingPoint::new(900, 0.9),
            OperatingPoint::new(900, 1.0),
        ])
        .is_err());
        assert!(OppTable::new(vec![OperatingPoint::new(900, 0.0)]).is_err());
    }

    #[test]
    fn floor_and_ceil() {
        let t = OppTable::exynos5410_big();
        assert_eq!(
            t.floor(Frequency::from_mhz(1650)).unwrap().frequency.mhz(),
            1600
        );
        assert_eq!(
            t.floor(Frequency::from_mhz(1599)).unwrap().frequency.mhz(),
            1500
        );
        assert_eq!(
            t.floor(Frequency::from_mhz(800)).unwrap().frequency.mhz(),
            800
        );
        assert!(t.floor(Frequency::from_mhz(799)).is_none());
        assert_eq!(t.ceil(Frequency::from_mhz(0)).frequency.mhz(), 800);
        assert_eq!(t.ceil(Frequency::from_mhz(1601)).frequency.mhz(), 1600);
        assert_eq!(t.ceil(Frequency::from_mhz(1250)).frequency.mhz(), 1300);
    }

    #[test]
    fn step_up_and_down() {
        let t = OppTable::exynos5410_little();
        let f = Frequency::from_mhz(500);
        assert!(t.step_down(f).is_none());
        assert_eq!(t.step_up(f).unwrap().frequency.mhz(), 600);
        let top = Frequency::from_mhz(1200);
        assert!(t.step_up(top).is_none());
        assert_eq!(t.step_down(top).unwrap().frequency.mhz(), 1100);
        // Frequencies not in the table have no neighbours.
        assert!(t.step_up(Frequency::from_mhz(555)).is_none());
    }

    #[test]
    fn scaled_floor_mimics_reactive_throttling() {
        let t = OppTable::exynos5410_big();
        // 18% throttle from 1600 MHz -> 1312 MHz -> snaps to 1300 MHz.
        let op = t.scaled_floor(Frequency::from_mhz(1600), 0.82);
        assert_eq!(op.frequency.mhz(), 1300);
        // 25% throttle from 1600 MHz -> 1200 MHz exactly.
        let op = t.scaled_floor(Frequency::from_mhz(1600), 0.75);
        assert_eq!(op.frequency.mhz(), 1200);
        // Throttling below the minimum clamps to the minimum.
        let op = t.scaled_floor(Frequency::from_mhz(800), 0.5);
        assert_eq!(op.frequency.mhz(), 800);
    }

    #[test]
    fn voltage_lookup() {
        let t = OppTable::exynos5410_big();
        assert_eq!(
            t.voltage_for(Frequency::from_mhz(1600)).unwrap().volts(),
            1.20
        );
        assert!(matches!(
            t.voltage_for(Frequency::from_mhz(1234)),
            Err(SocError::UnsupportedFrequency { .. })
        ));
    }

    #[test]
    fn index_and_get_round_trip() {
        let t = OppTable::exynos5410_gpu();
        for (i, p) in t.points().iter().enumerate() {
            assert_eq!(t.index_of(p.frequency), Some(i));
            assert_eq!(t.get(i), Some(*p));
        }
        assert_eq!(t.get(100), None);
        assert_eq!(t.index_of(Frequency::from_mhz(1)), None);
    }

    #[test]
    fn frequency_conversions() {
        let f = Frequency::from_mhz(1500);
        assert_eq!(f.ghz(), 1.5);
        assert_eq!(f.hz(), 1.5e9);
        assert_eq!(format!("{f}"), "1500 MHz");
        assert_eq!(format!("{}", Voltage::from_volts(1.05)), "1.050 V");
    }
}

//! Fan model of the Odroid-XU+E development board.
//!
//! The board's default configuration cools the SoC with a small fan: it is
//! switched on when the maximum core temperature exceeds 57 °C, raised to 50 %
//! speed above 63 °C and to 100 % above 68 °C (Section 6.2 of the paper). The
//! paper's whole point is that phones cannot carry a fan, so the proposed DTPM
//! algorithm must regulate temperature with the fan removed while matching or
//! beating the fan's thermal stability.

use serde::{Deserialize, Serialize};

/// Discrete fan speed levels used by the default configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum FanLevel {
    /// Fan switched off.
    #[default]
    Off,
    /// Fan switched on at its base speed (trips at 57 °C).
    Base,
    /// Fan at 50 % speed (trips at 63 °C).
    Half,
    /// Fan at 100 % speed (trips at 68 °C).
    Full,
}

impl FanLevel {
    /// All levels in increasing cooling order.
    pub const ALL: [FanLevel; 4] = [
        FanLevel::Off,
        FanLevel::Base,
        FanLevel::Half,
        FanLevel::Full,
    ];

    /// Fraction of the maximum fan speed this level corresponds to.
    ///
    /// The base speed is deliberately weak — on the real board the fan at its
    /// activation speed barely slows the temperature rise, which is why the
    /// default configuration cycles through the 57/63/68 °C thresholds and
    /// shows the large temperature swings of Figures 6.3–6.5.
    pub fn speed_fraction(self) -> f64 {
        match self {
            FanLevel::Off => 0.0,
            FanLevel::Base => 0.12,
            FanLevel::Half => 0.50,
            FanLevel::Full => 1.00,
        }
    }

    /// Returns `true` if the fan is spinning at all.
    pub fn is_on(self) -> bool {
        !matches!(self, FanLevel::Off)
    }
}

impl std::fmt::Display for FanLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FanLevel::Off => "off",
            FanLevel::Base => "on (base speed)",
            FanLevel::Half => "50%",
            FanLevel::Full => "100%",
        };
        write!(f, "{s}")
    }
}

/// Physical model of the fan: electrical power drawn and the additional
/// convective conductance it provides from the SoC case to ambient.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FanModel {
    /// Electrical power drawn at full speed, in watts.
    pub max_power_w: f64,
    /// Additional case-to-ambient thermal conductance at full speed, in W/K.
    /// The plant adds `speed_fraction × max_conductance_boost` to its passive
    /// case-to-ambient conductance.
    pub max_conductance_boost_w_per_k: f64,
}

impl FanModel {
    /// Fan of the Odroid-XU+E board: a small 5 V fan drawing roughly half a
    /// watt at full speed and roughly doubling the convective heat removal
    /// from the heat sink to ambient.
    pub fn odroid_xu_e() -> Self {
        FanModel {
            max_power_w: 0.45,
            max_conductance_boost_w_per_k: 0.28,
        }
    }

    /// Electrical power drawn at the given level, in watts.
    pub fn power_w(&self, level: FanLevel) -> f64 {
        // Fan power grows roughly with the cube of speed for an ideal fan, but
        // small DC fans have significant fixed losses; a linear model between
        // a base offset and the maximum is a good approximation.
        match level {
            FanLevel::Off => 0.0,
            level => 0.15 * self.max_power_w + 0.85 * self.max_power_w * level.speed_fraction(),
        }
    }

    /// Additional case-to-ambient conductance provided at the given level, in W/K.
    pub fn conductance_boost_w_per_k(&self, level: FanLevel) -> f64 {
        self.max_conductance_boost_w_per_k * level.speed_fraction()
    }
}

impl Default for FanModel {
    fn default() -> Self {
        FanModel::odroid_xu_e()
    }
}

/// The temperature thresholds of the board's default fan-control policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FanPolicy {
    /// Temperature (°C) above which the fan is switched on.
    pub on_threshold_c: f64,
    /// Temperature (°C) above which the fan runs at 50 %.
    pub half_threshold_c: f64,
    /// Temperature (°C) above which the fan runs at 100 %.
    pub full_threshold_c: f64,
    /// Hysteresis (°C) applied when stepping back down to avoid chattering.
    pub hysteresis_c: f64,
}

impl FanPolicy {
    /// The default 57/63/68 °C policy described in Section 6.2.
    pub fn odroid_default() -> Self {
        FanPolicy {
            on_threshold_c: 57.0,
            half_threshold_c: 63.0,
            full_threshold_c: 68.0,
            hysteresis_c: 2.0,
        }
    }

    /// The fan level this policy selects for the given maximum core
    /// temperature, given the level currently active (hysteresis applies when
    /// stepping down).
    pub fn level_for(&self, max_core_temp_c: f64, current: FanLevel) -> FanLevel {
        // Step up based on raw thresholds.
        let up = if max_core_temp_c > self.full_threshold_c {
            FanLevel::Full
        } else if max_core_temp_c > self.half_threshold_c {
            FanLevel::Half
        } else if max_core_temp_c > self.on_threshold_c {
            FanLevel::Base
        } else {
            FanLevel::Off
        };
        if rank(up) >= rank(current) {
            return up;
        }
        // Stepping down: only when the temperature has fallen below the
        // threshold of the current level minus the hysteresis.
        let down_threshold = match current {
            FanLevel::Full => self.full_threshold_c,
            FanLevel::Half => self.half_threshold_c,
            FanLevel::Base => self.on_threshold_c,
            FanLevel::Off => return FanLevel::Off,
        };
        if max_core_temp_c < down_threshold - self.hysteresis_c {
            up
        } else {
            current
        }
    }
}

impl Default for FanPolicy {
    fn default() -> Self {
        FanPolicy::odroid_default()
    }
}

fn rank(level: FanLevel) -> u8 {
    match level {
        FanLevel::Off => 0,
        FanLevel::Base => 1,
        FanLevel::Half => 2,
        FanLevel::Full => 3,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speed_fractions_are_monotonic() {
        let fractions: Vec<f64> = FanLevel::ALL.iter().map(|l| l.speed_fraction()).collect();
        assert!(fractions.windows(2).all(|w| w[1] > w[0]));
        assert_eq!(fractions[0], 0.0);
        assert_eq!(fractions[3], 1.0);
    }

    #[test]
    fn fan_power_increases_with_level() {
        let fan = FanModel::odroid_xu_e();
        assert_eq!(fan.power_w(FanLevel::Off), 0.0);
        let powers: Vec<f64> = FanLevel::ALL.iter().map(|&l| fan.power_w(l)).collect();
        assert!(powers.windows(2).all(|w| w[1] > w[0]));
        assert!((fan.power_w(FanLevel::Full) - fan.max_power_w).abs() < 1e-12);
    }

    #[test]
    fn conductance_boost_scales_with_speed() {
        let fan = FanModel::odroid_xu_e();
        assert_eq!(fan.conductance_boost_w_per_k(FanLevel::Off), 0.0);
        assert!(
            fan.conductance_boost_w_per_k(FanLevel::Half)
                < fan.conductance_boost_w_per_k(FanLevel::Full)
        );
    }

    #[test]
    fn policy_steps_up_at_paper_thresholds() {
        let p = FanPolicy::odroid_default();
        assert_eq!(p.level_for(50.0, FanLevel::Off), FanLevel::Off);
        assert_eq!(p.level_for(58.0, FanLevel::Off), FanLevel::Base);
        assert_eq!(p.level_for(64.0, FanLevel::Off), FanLevel::Half);
        assert_eq!(p.level_for(69.0, FanLevel::Off), FanLevel::Full);
    }

    #[test]
    fn policy_applies_hysteresis_when_stepping_down() {
        let p = FanPolicy::odroid_default();
        // At 62°C a fan already at Half stays at Half (62 > 63 - 2).
        assert_eq!(p.level_for(62.0, FanLevel::Half), FanLevel::Half);
        // Once the temperature drops below 61°C the fan steps down.
        assert_eq!(p.level_for(60.5, FanLevel::Half), FanLevel::Base);
        // An off fan stays off regardless.
        assert_eq!(p.level_for(40.0, FanLevel::Off), FanLevel::Off);
        // Cooling all the way down turns the fan off even from Full.
        assert_eq!(p.level_for(40.0, FanLevel::Full), FanLevel::Off);
    }

    #[test]
    fn fan_is_on_reports_spinning() {
        assert!(!FanLevel::Off.is_on());
        assert!(FanLevel::Base.is_on());
        assert!(FanLevel::Full.is_on());
    }
}

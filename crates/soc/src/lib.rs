//! Model of the heterogeneous mobile platform used by the DTPM paper.
//!
//! The paper evaluates on the Odroid-XU+E board built around the Samsung
//! Exynos 5410 MPSoC: a big.LITTLE processor with a 4-core ARM Cortex-A15
//! ("big") cluster, a 4-core Cortex-A7 ("little") cluster, a GPU, memory and
//! accelerators. This crate captures everything the DTPM algorithm can observe
//! or actuate on that platform:
//!
//! * the discrete operating performance points of each cluster and the GPU
//!   (Tables 6.1–6.3 of the paper) together with their supply voltages
//!   ([`opp`]),
//! * the cluster-exclusive big/little switching and per-core hotplug state
//!   ([`cluster`], [`platform`]),
//! * the power domains whose consumption is measured by the built-in sensors
//!   ([`domain`]),
//! * the fan of the development board, including the 57/63/68 °C control
//!   thresholds of the default configuration ([`fan`]).
//!
//! # Example
//!
//! ```
//! use soc_model::{ClusterKind, PlatformState, SocSpec};
//!
//! let spec = SocSpec::odroid_xu_e();
//! let mut state = PlatformState::default_for(&spec);
//! assert_eq!(state.active_cluster, ClusterKind::Big);
//! assert_eq!(state.online_core_count(ClusterKind::Big), 4);
//!
//! // The DTPM algorithm can cap the big-cluster frequency...
//! state.big_frequency = spec.big_opps().lowest().frequency;
//! // ...or put the hottest core to sleep.
//! state.set_core_online(ClusterKind::Big, 2, false);
//! assert_eq!(state.online_core_count(ClusterKind::Big), 3);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cluster;
pub mod domain;
pub mod error;
pub mod fan;
pub mod opp;
pub mod platform;

pub use cluster::{ClusterKind, ClusterSpec, CoreId};
pub use domain::PowerDomain;
pub use error::SocError;
pub use fan::{FanLevel, FanModel, FanPolicy};
pub use opp::{Frequency, OperatingPoint, OppTable, Voltage};
pub use platform::{PlatformState, SocSpec};

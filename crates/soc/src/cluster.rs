//! CPU clusters of the big.LITTLE processor.

use serde::{Deserialize, Serialize};

use crate::opp::OppTable;

/// The two CPU cluster types of the ARM big.LITTLE architecture.
///
/// The Exynos 5410 uses *cluster switching*: either the big (Cortex-A15) or
/// the little (Cortex-A7) cluster is active at any time, never both.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ClusterKind {
    /// High-performance Cortex-A15 cluster ("big").
    Big,
    /// Energy-efficient Cortex-A7 cluster ("little").
    Little,
}

impl ClusterKind {
    /// Both cluster kinds, big first.
    pub const ALL: [ClusterKind; 2] = [ClusterKind::Big, ClusterKind::Little];

    /// The other cluster.
    pub fn other(self) -> ClusterKind {
        match self {
            ClusterKind::Big => ClusterKind::Little,
            ClusterKind::Little => ClusterKind::Big,
        }
    }

    /// `true` for the big cluster.
    pub fn is_big(self) -> bool {
        matches!(self, ClusterKind::Big)
    }
}

impl std::fmt::Display for ClusterKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterKind::Big => write!(f, "big"),
            ClusterKind::Little => write!(f, "little"),
        }
    }
}

/// Identifier of a core inside a cluster (0-based).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct CoreId(pub usize);

impl std::fmt::Display for CoreId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "core{}", self.0)
    }
}

/// Static description of one CPU cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Which cluster this is.
    pub kind: ClusterKind,
    /// Number of cores in the cluster (4 for both clusters of the Exynos 5410).
    pub core_count: usize,
    /// Operating performance points supported by the cluster. All cores of a
    /// cluster share a single frequency/voltage domain.
    pub opps: OppTable,
    /// Relative single-thread performance of one core of this cluster at a
    /// given frequency, normalised so that a big core at 1 GHz delivers 1.0
    /// "work units" per second. The A7 delivers roughly a third of the A15's
    /// per-clock performance.
    pub performance_per_ghz: f64,
}

impl ClusterSpec {
    /// The Exynos 5410 big cluster: 4× Cortex-A15.
    pub fn exynos5410_big() -> Self {
        ClusterSpec {
            kind: ClusterKind::Big,
            core_count: 4,
            opps: OppTable::exynos5410_big(),
            performance_per_ghz: 1.0,
        }
    }

    /// The Exynos 5410 little cluster: 4× Cortex-A7.
    pub fn exynos5410_little() -> Self {
        ClusterSpec {
            kind: ClusterKind::Little,
            core_count: 4,
            opps: OppTable::exynos5410_little(),
            performance_per_ghz: 0.35,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn other_is_involution() {
        for kind in ClusterKind::ALL {
            assert_eq!(kind.other().other(), kind);
            assert_ne!(kind.other(), kind);
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(ClusterKind::Big.to_string(), "big");
        assert_eq!(ClusterKind::Little.to_string(), "little");
        assert_eq!(CoreId(3).to_string(), "core3");
    }

    #[test]
    fn exynos_clusters_have_four_cores() {
        assert_eq!(ClusterSpec::exynos5410_big().core_count, 4);
        assert_eq!(ClusterSpec::exynos5410_little().core_count, 4);
    }

    #[test]
    fn big_cluster_outperforms_little_per_clock() {
        let big = ClusterSpec::exynos5410_big();
        let little = ClusterSpec::exynos5410_little();
        assert!(big.performance_per_ghz > little.performance_per_ghz);
        assert!(big.is_big_kind());
    }

    impl ClusterSpec {
        fn is_big_kind(&self) -> bool {
            self.kind.is_big()
        }
    }
}

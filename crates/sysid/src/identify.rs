//! Least-squares identification of the discrete thermal model.
//!
//! Each row of `[As | Bs]` is identified independently: for hotspot `i` the
//! regression target is `T_i[k+1]` and the regressors are all hotspot
//! temperatures `T[k]` followed by all domain powers `P[k]` (temperatures
//! relative to ambient). This is exactly the ARX structure the paper fits
//! with MATLAB's System Identification Toolbox.

use numeric::{ridge_lstsq, Matrix, Vector};
use serde::{Deserialize, Serialize};
use thermal_model::DiscreteThermalModel;

use crate::{IdentificationDataset, SysIdError};

/// Options controlling the identification.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IdentificationOptions {
    /// Ridge (Tikhonov) regularisation applied to the normal equations. A
    /// small positive value keeps the problem well-conditioned when one input
    /// channel is barely excited (e.g. memory power during a CPU-only PRBS).
    pub ridge_lambda: f64,
    /// Reject identified models whose spectral radius is not strictly below
    /// one. A physical thermal model is always stable, so an unstable fit
    /// indicates an inadequate experiment.
    pub require_stable: bool,
}

impl Default for IdentificationOptions {
    fn default() -> Self {
        IdentificationOptions {
            ridge_lambda: 1e-9,
            require_stable: true,
        }
    }
}

/// Identifies a [`DiscreteThermalModel`] from a logged dataset.
///
/// # Errors
///
/// * [`SysIdError::InsufficientData`] if the dataset has fewer samples than
///   regressors (plus one).
/// * [`SysIdError::Numeric`] if the least-squares problem is singular even
///   with regularisation.
/// * [`SysIdError::UnstableModel`] if the fit is unstable and
///   [`IdentificationOptions::require_stable`] is set.
pub fn identify(
    dataset: &IdentificationDataset,
    options: &IdentificationOptions,
) -> Result<DiscreteThermalModel, SysIdError> {
    let n_states = dataset.state_count();
    let n_inputs = dataset.input_count();
    let n_regressors = n_states + n_inputs;
    let n_samples = dataset.len();
    if n_samples < n_regressors + 1 {
        return Err(SysIdError::InsufficientData {
            required: n_regressors + 1,
            provided: n_samples,
        });
    }

    let temps = dataset.relative_temps();
    let powers = dataset.powers();

    // Build the shared regressor matrix Φ: one row per transition k -> k+1.
    let rows = n_samples - 1;
    let mut phi = Matrix::zeros(rows, n_regressors);
    for k in 0..rows {
        for s in 0..n_states {
            phi[(k, s)] = temps[k][s];
        }
        for u in 0..n_inputs {
            phi[(k, n_states + u)] = powers[k][u];
        }
    }

    let mut a = Matrix::zeros(n_states, n_states);
    let mut b = Matrix::zeros(n_states, n_inputs);
    for i in 0..n_states {
        let target = Vector::from_iter((0..rows).map(|k| temps[k + 1][i]));
        let theta = ridge_lstsq(&phi, &target, options.ridge_lambda)?;
        for s in 0..n_states {
            a[(i, s)] = theta[s];
        }
        for u in 0..n_inputs {
            b[(i, u)] = theta[n_states + u];
        }
    }

    let model = DiscreteThermalModel::new(a, b, dataset.sample_period_s())?;
    if options.require_stable {
        let rho = model.spectral_radius()?;
        if rho >= 1.0 {
            return Err(SysIdError::UnstableModel {
                spectral_radius: rho,
            });
        }
    }
    Ok(model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use numeric::Matrix;

    /// Generates a dataset by simulating a known discrete model under a
    /// square-wave excitation on each input in turn.
    fn simulate_dataset(
        truth: &DiscreteThermalModel,
        steps: usize,
        ambient: f64,
    ) -> IdentificationDataset {
        let n_states = truth.state_count();
        let n_inputs = truth.input_count();
        let mut ds =
            IdentificationDataset::new(n_states, n_inputs, truth.sample_period_s(), ambient)
                .unwrap();
        let mut t = Vector::zeros(n_states);
        for k in 0..steps {
            // Excite each input with a different-period square wave so every
            // column of B is observable.
            let p = Vector::from_iter((0..n_inputs).map(|u| {
                let period = 8 + 6 * u;
                if (k / period) % 2 == 0 {
                    0.3
                } else {
                    2.0 + u as f64 * 0.5
                }
            }));
            let abs_t = Vector::from_iter(t.iter().map(|x| x + ambient));
            ds.push(abs_t, p.clone()).unwrap();
            t = truth.step(&t, &p).unwrap();
        }
        ds
    }

    fn example_truth() -> DiscreteThermalModel {
        // All rows distinct so every state trajectory is distinguishable and
        // the parameters are identifiable from input-output data.
        let a = Matrix::from_rows(&[
            &[0.930, 0.020, 0.025, 0.010],
            &[0.015, 0.920, 0.010, 0.030],
            &[0.030, 0.012, 0.940, 0.015],
            &[0.008, 0.028, 0.018, 0.910],
        ])
        .unwrap();
        let b = Matrix::from_rows(&[
            &[0.25, 0.04, 0.08, 0.03],
            &[0.20, 0.06, 0.05, 0.04],
            &[0.28, 0.03, 0.09, 0.02],
            &[0.22, 0.07, 0.04, 0.05],
        ])
        .unwrap();
        DiscreteThermalModel::new(a, b, 0.1).unwrap()
    }

    #[test]
    fn recovers_exact_model_from_noise_free_data() {
        let truth = example_truth();
        let ds = simulate_dataset(&truth, 800, 25.0);
        let model = identify(&ds, &IdentificationOptions::default()).unwrap();
        let a_err = model.a().sub(truth.a()).unwrap().max_abs();
        let b_err = model.b().sub(truth.b()).unwrap().max_abs();
        assert!(a_err < 1e-6, "A error {a_err}");
        assert!(b_err < 1e-6, "B error {b_err}");
        assert!(model.is_stable());
    }

    #[test]
    fn identified_model_predicts_held_out_data() {
        let truth = example_truth();
        let ds = simulate_dataset(&truth, 1200, 25.0);
        let (train, test) = ds.split(0.6).unwrap();
        let model = identify(&train, &IdentificationOptions::default()).unwrap();
        // Free-run the identified model over the validation segment.
        let rel = test.relative_temps();
        let mut state = rel[0].clone();
        let mut worst = 0.0f64;
        for k in 0..test.len() - 1 {
            state = model.step(&state, &test.powers()[k]).unwrap();
            worst = worst.max((state[0] - rel[k + 1][0]).abs());
        }
        assert!(worst < 0.05, "free-run error {worst}");
    }

    #[test]
    fn rejects_insufficient_data() {
        let truth = example_truth();
        let ds = simulate_dataset(&truth, 6, 25.0);
        assert!(matches!(
            identify(&ds, &IdentificationOptions::default()),
            Err(SysIdError::InsufficientData { .. })
        ));
    }

    #[test]
    fn unexcited_input_needs_ridge() {
        // Build a dataset where input 3 is exactly constant; without
        // regularisation the normal equations are singular (constant column is
        // collinear with nothing but still rank-deficient together with the
        // steady temperature offset pattern it induces).
        let truth = example_truth();
        let mut ds = IdentificationDataset::new(4, 4, 0.1, 25.0).unwrap();
        let mut t = Vector::zeros(4);
        for k in 0..600 {
            let p = Vector::from_slice(&[
                if (k / 10) % 2 == 0 { 0.3 } else { 2.0 },
                if (k / 16) % 2 == 0 { 0.1 } else { 0.8 },
                0.0, // GPU never excited
                0.0, // memory never excited
            ]);
            ds.push(Vector::from_iter(t.iter().map(|x| x + 25.0)), p.clone())
                .unwrap();
            t = truth.step(&t, &p).unwrap();
        }
        let options = IdentificationOptions {
            ridge_lambda: 1e-6,
            require_stable: true,
        };
        let model = identify(&ds, &options).unwrap();
        // The excited columns must still be accurate.
        for i in 0..4 {
            assert!((model.b()[(i, 0)] - truth.b()[(i, 0)]).abs() < 1e-3);
            assert!((model.b()[(i, 1)] - truth.b()[(i, 1)]).abs() < 1e-3);
        }
    }

    #[test]
    fn stability_requirement_can_be_relaxed() {
        // A dataset from an *unstable* artificial system: identification
        // succeeds only when the stability check is disabled.
        let a = Matrix::from_rows(&[&[1.02]]).unwrap();
        let b = Matrix::from_rows(&[&[0.5]]).unwrap();
        let truth = DiscreteThermalModel::new(a, b, 0.1).unwrap();
        let mut ds = IdentificationDataset::new(1, 1, 0.1, 25.0).unwrap();
        let mut t = Vector::zeros(1);
        for k in 0..100 {
            let p = Vector::from_slice(&[if (k / 5) % 2 == 0 { 0.1 } else { 1.0 }]);
            ds.push(Vector::from_iter(t.iter().map(|x| x + 25.0)), p.clone())
                .unwrap();
            t = truth.step(&t, &p).unwrap();
        }
        assert!(matches!(
            identify(&ds, &IdentificationOptions::default()),
            Err(SysIdError::UnstableModel { .. })
        ));
        let relaxed = IdentificationOptions {
            require_stable: false,
            ..IdentificationOptions::default()
        };
        let model = identify(&ds, &relaxed).unwrap();
        assert!((model.a()[(0, 0)] - 1.02).abs() < 1e-6);
    }
}

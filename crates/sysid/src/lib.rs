//! System identification of the thermal model (Section 4.2.1).
//!
//! Instead of deriving the thermal conductance and capacitance matrices from
//! floorplans and material properties (which are not public), the paper
//! identifies the discrete model `T[k+1] = As·T[k] + Bs·P[k]` directly from
//! measurements:
//!
//! 1. excite one power source at a time with a pseudo-random bit sequence
//!    (PRBS) that toggles its frequency between the minimum and maximum
//!    levels ([`prbs`]),
//! 2. log the power inputs and hotspot temperatures at the control-interval
//!    rate ([`dataset`]),
//! 3. fit each row of `As` and `Bs` with linear least squares
//!    ([`identify`](mod@identify)) — the Rust stand-in for MATLAB's System Identification
//!    Toolbox,
//! 4. validate the identified model against held-out measurements
//!    ([`validate`]), reporting the fit percentage and the n-step prediction
//!    error the paper quotes (< 3 % on average at a 1 s horizon).
//!
//! # Example
//!
//! ```
//! use numeric::{Matrix, Vector};
//! use sysid::{identify, IdentificationDataset, IdentificationOptions};
//! use thermal_model::DiscreteThermalModel;
//!
//! # fn main() -> Result<(), sysid::SysIdError> {
//! // Generate data from a known 1-state, 1-input model and re-identify it.
//! // The model works on temperatures relative to the 25 °C ambient, so the
//! // logged (absolute) temperatures are the state plus the ambient.
//! let a = Matrix::from_rows(&[&[0.9]]).unwrap();
//! let b = Matrix::from_rows(&[&[0.5]]).unwrap();
//! let truth = DiscreteThermalModel::new(a, b, 0.1).unwrap();
//! let mut dataset = IdentificationDataset::new(1, 1, 0.1, 25.0)?;
//! let mut t = Vector::zeros(1);
//! for k in 0..200 {
//!     let p = Vector::from_slice(&[if (k / 10) % 2 == 0 { 2.0 } else { 0.5 }]);
//!     dataset.push(Vector::from_slice(&[t[0] + 25.0]), p.clone())?;
//!     t = truth.step(&t, &p).unwrap();
//! }
//! let model = identify(&dataset, &IdentificationOptions::default())?;
//! assert!((model.a()[(0, 0)] - 0.9).abs() < 1e-6);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod dataset;
pub mod error;
pub mod identify;
pub mod prbs;
pub mod validate;

pub use dataset::IdentificationDataset;
pub use error::SysIdError;
pub use identify::{identify, IdentificationOptions};
pub use prbs::{PrbsConfig, PrbsSignal};
pub use validate::{n_step_prediction, validate_free_run, PredictionErrorReport, ValidationReport};

//! Validation of identified thermal models.
//!
//! Two validation views are used by the paper:
//!
//! * a *free-run* comparison — simulate the identified model from the first
//!   measured state using only the recorded powers and compare against the
//!   measured temperatures (the classic `compare` plot, Figure 4.9),
//! * an *n-step prediction error* — at every sample `k`, predict `T[k+n]`
//!   from the measured `T[k]` and the recorded powers, then compare with the
//!   measurement at `k+n`; the paper reports the average percentage error at
//!   a 1 s horizon (< 3 %) and its growth with the horizon (Figure 4.10,
//!   Figure 6.2).

use serde::{Deserialize, Serialize};

use numeric::stats;
use thermal_model::DiscreteThermalModel;

use crate::{IdentificationDataset, SysIdError};

/// Free-run validation metrics (per the hottest-tracked hotspot and averaged).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ValidationReport {
    /// Root-mean-square error per hotspot, in °C.
    pub rmse_per_state_c: Vec<f64>,
    /// Maximum absolute error over all hotspots and samples, in °C.
    pub max_abs_error_c: f64,
    /// Normalised fit percentage per hotspot (100 = perfect).
    pub fit_percent_per_state: Vec<f64>,
    /// Number of validation samples.
    pub samples: usize,
}

impl ValidationReport {
    /// Mean RMSE across hotspots, in °C.
    pub fn mean_rmse_c(&self) -> f64 {
        stats::mean(&self.rmse_per_state_c)
    }

    /// Mean fit percentage across hotspots.
    pub fn mean_fit_percent(&self) -> f64 {
        stats::mean(&self.fit_percent_per_state)
    }
}

/// n-step prediction error metrics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PredictionErrorReport {
    /// Horizon in control intervals.
    pub horizon_steps: usize,
    /// Horizon in seconds.
    pub horizon_s: f64,
    /// Mean absolute error in °C over all hotspots and samples.
    pub mean_abs_error_c: f64,
    /// Mean absolute percentage error (temperatures in °C, as the paper
    /// reports it).
    pub mean_percent_error: f64,
    /// Maximum absolute error in °C.
    pub max_abs_error_c: f64,
    /// Maximum percentage error.
    pub max_percent_error: f64,
    /// Number of prediction points evaluated.
    pub samples: usize,
}

/// Free-runs the identified model over the dataset and reports fit metrics.
///
/// # Errors
///
/// Returns [`SysIdError::DimensionMismatch`] if the model and dataset
/// dimensions disagree, or [`SysIdError::InsufficientData`] for fewer than two
/// samples.
pub fn validate_free_run(
    model: &DiscreteThermalModel,
    dataset: &IdentificationDataset,
) -> Result<ValidationReport, SysIdError> {
    check_compat(model, dataset)?;
    if dataset.len() < 2 {
        return Err(SysIdError::InsufficientData {
            required: 2,
            provided: dataset.len(),
        });
    }
    let measured = dataset.relative_temps();
    let powers = dataset.powers();
    let n_states = dataset.state_count();

    let mut simulated = Vec::with_capacity(dataset.len());
    let mut state = measured[0].clone();
    simulated.push(state.clone());
    for power in powers.iter().take(dataset.len() - 1) {
        state = model.step(&state, power)?;
        simulated.push(state.clone());
    }

    let mut rmse_per_state_c = Vec::with_capacity(n_states);
    let mut fit_percent_per_state = Vec::with_capacity(n_states);
    let mut max_abs = 0.0f64;
    for s in 0..n_states {
        let sim: Vec<f64> = simulated.iter().map(|v| v[s]).collect();
        let meas: Vec<f64> = measured.iter().map(|v| v[s]).collect();
        rmse_per_state_c.push(stats::rmse(&sim, &meas));
        fit_percent_per_state.push(stats::fit_percentage(&sim, &meas));
        max_abs = max_abs.max(stats::max_absolute_error(&sim, &meas));
    }
    Ok(ValidationReport {
        rmse_per_state_c,
        max_abs_error_c: max_abs,
        fit_percent_per_state,
        samples: dataset.len(),
    })
}

/// Evaluates the n-step-ahead prediction error of the model over the dataset.
///
/// At every sample `k` the model predicts `T[k+horizon]` starting from the
/// *measured* `T[k]`, applying the recorded powers `P[k..k+horizon]`. Errors
/// are evaluated on absolute temperatures in °C (relative-to-ambient
/// temperatures are shifted back), matching how the paper quotes percentages.
///
/// # Errors
///
/// Returns [`SysIdError::InvalidConfig`] for a zero horizon,
/// [`SysIdError::DimensionMismatch`] for incompatible dimensions, or
/// [`SysIdError::InsufficientData`] if the dataset is shorter than the horizon
/// plus one.
pub fn n_step_prediction(
    model: &DiscreteThermalModel,
    dataset: &IdentificationDataset,
    horizon_steps: usize,
) -> Result<PredictionErrorReport, SysIdError> {
    if horizon_steps == 0 {
        return Err(SysIdError::InvalidConfig(
            "horizon must be at least one step",
        ));
    }
    check_compat(model, dataset)?;
    if dataset.len() < horizon_steps + 1 {
        return Err(SysIdError::InsufficientData {
            required: horizon_steps + 1,
            provided: dataset.len(),
        });
    }

    let measured_rel = dataset.relative_temps();
    let powers = dataset.powers();
    let ambient = dataset.ambient_c();
    let n_states = dataset.state_count();

    let mut abs_errors = Vec::new();
    let mut pct_errors = Vec::new();
    for k in 0..dataset.len() - horizon_steps {
        let mut state = measured_rel[k].clone();
        for j in 0..horizon_steps {
            state = model.step(&state, &powers[k + j])?;
        }
        let truth = &measured_rel[k + horizon_steps];
        for s in 0..n_states {
            let predicted_c = state[s] + ambient;
            let measured_c = truth[s] + ambient;
            let err = (predicted_c - measured_c).abs();
            abs_errors.push(err);
            if measured_c.abs() > f64::EPSILON {
                pct_errors.push(100.0 * err / measured_c.abs());
            }
        }
    }

    let samples = abs_errors.len();
    Ok(PredictionErrorReport {
        horizon_steps,
        horizon_s: horizon_steps as f64 * dataset.sample_period_s(),
        mean_abs_error_c: stats::mean(&abs_errors),
        mean_percent_error: stats::mean(&pct_errors),
        max_abs_error_c: abs_errors.iter().copied().fold(0.0, f64::max),
        max_percent_error: pct_errors.iter().copied().fold(0.0, f64::max),
        samples,
    })
}

fn check_compat(
    model: &DiscreteThermalModel,
    dataset: &IdentificationDataset,
) -> Result<(), SysIdError> {
    if model.state_count() != dataset.state_count() {
        return Err(SysIdError::DimensionMismatch {
            what: "model state count",
            expected: dataset.state_count(),
            actual: model.state_count(),
        });
    }
    if model.input_count() != dataset.input_count() {
        return Err(SysIdError::DimensionMismatch {
            what: "model input count",
            expected: dataset.input_count(),
            actual: model.input_count(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::identify::{identify, IdentificationOptions};
    use numeric::{Matrix, Vector};

    fn truth_model() -> DiscreteThermalModel {
        let a = Matrix::from_rows(&[&[0.94, 0.02], &[0.02, 0.94]]).unwrap();
        let b = Matrix::from_rows(&[&[0.20, 0.05], &[0.18, 0.06]]).unwrap();
        DiscreteThermalModel::new(a, b, 0.1).unwrap()
    }

    fn make_dataset(truth: &DiscreteThermalModel, steps: usize) -> IdentificationDataset {
        let mut ds = IdentificationDataset::new(2, 2, 0.1, 25.0).unwrap();
        let mut t = Vector::from_slice(&[20.0, 18.0]);
        for k in 0..steps {
            let p = Vector::from_slice(&[
                if (k / 12) % 2 == 0 { 0.4 } else { 2.2 },
                if (k / 20) % 2 == 0 { 0.1 } else { 0.9 },
            ]);
            ds.push(Vector::from_iter(t.iter().map(|x| x + 25.0)), p.clone())
                .unwrap();
            t = truth.step(&t, &p).unwrap();
        }
        ds
    }

    #[test]
    fn perfect_model_validates_perfectly() {
        let truth = truth_model();
        let ds = make_dataset(&truth, 400);
        let report = validate_free_run(&truth, &ds).unwrap();
        assert!(report.mean_rmse_c() < 1e-9);
        assert!(report.max_abs_error_c < 1e-9);
        assert!(report.mean_fit_percent() > 99.9);

        let pred = n_step_prediction(&truth, &ds, 10).unwrap();
        assert!(pred.mean_abs_error_c < 1e-9);
        assert!(pred.mean_percent_error < 1e-9);
        assert!((pred.horizon_s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn identified_model_keeps_errors_small() {
        let truth = truth_model();
        let ds = make_dataset(&truth, 800);
        let (train, test) = ds.split(0.5).unwrap();
        let model = identify(&train, &IdentificationOptions::default()).unwrap();
        let report = validate_free_run(&model, &test).unwrap();
        assert!(report.mean_rmse_c() < 0.05, "rmse {}", report.mean_rmse_c());
        let pred = n_step_prediction(&model, &test, 10).unwrap();
        assert!(pred.mean_percent_error < 1.0);
    }

    #[test]
    fn prediction_error_grows_with_horizon_for_wrong_model() {
        // Deliberately perturbed model: longer horizons accumulate more error.
        let truth = truth_model();
        let ds = make_dataset(&truth, 600);
        let wrong = DiscreteThermalModel::new(
            truth.a().scale(0.98),
            truth.b().scale(1.1),
            truth.sample_period_s(),
        )
        .unwrap();
        let e1 = n_step_prediction(&wrong, &ds, 1).unwrap();
        let e10 = n_step_prediction(&wrong, &ds, 10).unwrap();
        let e50 = n_step_prediction(&wrong, &ds, 50).unwrap();
        assert!(e1.mean_abs_error_c < e10.mean_abs_error_c);
        assert!(e10.mean_abs_error_c < e50.mean_abs_error_c);
    }

    #[test]
    fn rejects_incompatible_dimensions_and_tiny_data() {
        let truth = truth_model();
        let ds = make_dataset(&truth, 30);
        let other =
            DiscreteThermalModel::new(Matrix::identity(3).scale(0.9), Matrix::zeros(3, 2), 0.1)
                .unwrap();
        assert!(validate_free_run(&other, &ds).is_err());
        assert!(n_step_prediction(&truth, &ds, 0).is_err());
        assert!(n_step_prediction(&truth, &ds, 40).is_err());

        let tiny = make_dataset(&truth, 1);
        assert!(validate_free_run(&truth, &tiny).is_err());
    }
}

//! Pseudo-random binary sequence (PRBS) excitation signals.
//!
//! The paper oscillates the frequency of one power source between its minimum
//! and maximum values following a PRBS, because the PRBS spectrum is much
//! broader than anything an ordinary application would excite (Section 4.2.1,
//! Figure 4.8). The sequence here is generated with a maximal-length linear
//! feedback shift register, so it is reproducible from a seed.

use serde::{Deserialize, Serialize};

use crate::SysIdError;

/// Configuration of a PRBS excitation signal.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrbsConfig {
    /// LFSR register length in bits (4..=16). A register of `n` bits yields a
    /// sequence that repeats after `2^n − 1` bits.
    pub register_bits: u32,
    /// How many control intervals each PRBS bit is held for. The paper's
    /// control interval is 100 ms and thermal time constants are seconds, so
    /// holding each bit for several intervals concentrates the excitation in
    /// the thermally relevant band.
    pub hold_intervals: usize,
    /// Signal value when the bit is 0 (e.g. the minimum frequency or power).
    pub low: f64,
    /// Signal value when the bit is 1 (e.g. the maximum frequency or power).
    pub high: f64,
    /// Seed for the LFSR initial state (must not be zero; it is masked to the
    /// register length).
    pub seed: u32,
}

impl Default for PrbsConfig {
    fn default() -> Self {
        PrbsConfig {
            register_bits: 10,
            hold_intervals: 5,
            low: 0.0,
            high: 1.0,
            seed: 0x2f5,
        }
    }
}

/// A generated PRBS signal, one value per control interval.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrbsSignal {
    values: Vec<f64>,
    config: PrbsConfig,
}

/// Feedback tap masks producing maximal-length sequences for register lengths
/// 4..=16 (taps from the standard LFSR tables, expressed as XOR masks).
fn taps_for(register_bits: u32) -> Option<u32> {
    let mask = match register_bits {
        4 => 0b1001,
        5 => 0b10010,
        6 => 0b100001,
        7 => 0b1000001,
        8 => 0b10111000,
        9 => 0b100001000,
        10 => 0b1000000100,
        11 => 0b10000000010,
        12 => 0b100000101001,
        13 => 0b1000000001101,
        14 => 0b10000000010101,
        15 => 0b100000000000001,
        16 => 0b1000000000010110,
        _ => return None,
    };
    Some(mask)
}

impl PrbsSignal {
    /// Generates `length` control-interval values according to the config.
    ///
    /// # Errors
    ///
    /// Returns [`SysIdError::InvalidConfig`] if the register length is outside
    /// 4..=16, the hold count is zero, the length is zero, or the high level
    /// is not above the low level.
    pub fn generate(config: PrbsConfig, length: usize) -> Result<Self, SysIdError> {
        let taps = taps_for(config.register_bits).ok_or(SysIdError::InvalidConfig(
            "register length must be in 4..=16",
        ))?;
        if config.hold_intervals == 0 {
            return Err(SysIdError::InvalidConfig(
                "hold interval count must be non-zero",
            ));
        }
        if length == 0 {
            return Err(SysIdError::InvalidConfig("signal length must be non-zero"));
        }
        if !(config.high > config.low) {
            return Err(SysIdError::InvalidConfig(
                "high level must be greater than low level",
            ));
        }
        let register_mask = (1u32 << config.register_bits) - 1;
        let mut state = config.seed & register_mask;
        if state == 0 {
            state = 1;
        }

        let mut values = Vec::with_capacity(length);
        let mut current_bit = (state & 1) == 1;
        let mut hold = 0usize;
        while values.len() < length {
            if hold == 0 {
                // Galois LFSR step.
                let lsb = state & 1;
                state >>= 1;
                if lsb == 1 {
                    state ^= taps >> 1;
                    state |= 1 << (config.register_bits - 1);
                }
                state &= register_mask;
                current_bit = (state & 1) == 1;
                hold = config.hold_intervals;
            }
            values.push(if current_bit { config.high } else { config.low });
            hold -= 1;
        }
        Ok(PrbsSignal { values, config })
    }

    /// The generated values, one per control interval.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The configuration used to generate the signal.
    pub fn config(&self) -> &PrbsConfig {
        &self.config
    }

    /// Number of control intervals.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` if the signal is empty (never the case for a generated
    /// signal).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Fraction of intervals spent at the high level.
    pub fn duty_cycle(&self) -> f64 {
        let high = self
            .values
            .iter()
            .filter(|&&v| (v - self.config.high).abs() < f64::EPSILON)
            .count();
        high as f64 / self.values.len() as f64
    }

    /// Number of low/high transitions in the signal.
    pub fn transition_count(&self) -> usize {
        self.values
            .windows(2)
            .filter(|w| (w[0] - w[1]).abs() > f64::EPSILON)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_length_with_two_levels() {
        let cfg = PrbsConfig {
            low: 800.0,
            high: 1600.0,
            ..PrbsConfig::default()
        };
        let signal = PrbsSignal::generate(cfg, 5000).unwrap();
        assert_eq!(signal.len(), 5000);
        assert!(signal.values().iter().all(|&v| v == 800.0 || v == 1600.0));
    }

    #[test]
    fn duty_cycle_is_roughly_balanced() {
        let signal = PrbsSignal::generate(PrbsConfig::default(), 10_000).unwrap();
        let duty = signal.duty_cycle();
        assert!((0.4..0.6).contains(&duty), "duty cycle {duty}");
    }

    #[test]
    fn holds_each_bit_for_the_configured_intervals() {
        let cfg = PrbsConfig {
            hold_intervals: 7,
            ..PrbsConfig::default()
        };
        let signal = PrbsSignal::generate(cfg, 2000).unwrap();
        // Run lengths must be multiples of the hold count (except possibly the
        // last, truncated run).
        let mut run = 1usize;
        let mut runs = Vec::new();
        for w in signal.values().windows(2) {
            if (w[0] - w[1]).abs() > f64::EPSILON {
                runs.push(run);
                run = 1;
            } else {
                run += 1;
            }
        }
        assert!(!runs.is_empty());
        assert!(runs.iter().all(|r| r % 7 == 0), "runs {runs:?}");
    }

    #[test]
    fn is_reproducible_and_seed_sensitive() {
        let a = PrbsSignal::generate(PrbsConfig::default(), 500).unwrap();
        let b = PrbsSignal::generate(PrbsConfig::default(), 500).unwrap();
        assert_eq!(a.values(), b.values());
        let c = PrbsSignal::generate(
            PrbsConfig {
                seed: 0x1ab,
                ..PrbsConfig::default()
            },
            500,
        )
        .unwrap();
        assert_ne!(a.values(), c.values());
    }

    #[test]
    fn has_many_transitions() {
        let signal = PrbsSignal::generate(PrbsConfig::default(), 5000).unwrap();
        // With a hold of 5 the expected number of transitions is ~500.
        assert!(
            signal.transition_count() > 200,
            "{}",
            signal.transition_count()
        );
    }

    #[test]
    fn zero_seed_is_fixed_up() {
        let signal = PrbsSignal::generate(
            PrbsConfig {
                seed: 0,
                ..PrbsConfig::default()
            },
            100,
        )
        .unwrap();
        // A zero seed would lock a plain LFSR at zero; the generator must
        // still produce both levels.
        assert!(signal.transition_count() > 0);
    }

    #[test]
    fn all_register_lengths_produce_balanced_sequences() {
        for bits in 4..=16 {
            let cfg = PrbsConfig {
                register_bits: bits,
                hold_intervals: 1,
                ..PrbsConfig::default()
            };
            let signal = PrbsSignal::generate(cfg, 4000).unwrap();
            let duty = signal.duty_cycle();
            assert!(
                (0.3..0.7).contains(&duty),
                "register {bits} duty cycle {duty}"
            );
        }
    }

    #[test]
    fn rejects_invalid_configs() {
        assert!(PrbsSignal::generate(
            PrbsConfig {
                register_bits: 3,
                ..PrbsConfig::default()
            },
            100
        )
        .is_err());
        assert!(PrbsSignal::generate(
            PrbsConfig {
                hold_intervals: 0,
                ..PrbsConfig::default()
            },
            100
        )
        .is_err());
        assert!(PrbsSignal::generate(PrbsConfig::default(), 0).is_err());
        assert!(PrbsSignal::generate(
            PrbsConfig {
                low: 2.0,
                high: 1.0,
                ..PrbsConfig::default()
            },
            100
        )
        .is_err());
    }
}

//! Error type for system-identification operations.

use std::error::Error;
use std::fmt;

/// Errors returned by dataset construction, identification and validation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SysIdError {
    /// A sample had the wrong number of states or inputs.
    DimensionMismatch {
        /// What was mis-sized.
        what: &'static str,
        /// Expected length.
        expected: usize,
        /// Actual length.
        actual: usize,
    },
    /// Not enough samples to identify the requested model.
    InsufficientData {
        /// Minimum number of samples required.
        required: usize,
        /// Number available.
        provided: usize,
    },
    /// A configuration parameter was invalid.
    InvalidConfig(&'static str),
    /// The underlying numerical routine failed.
    Numeric(String),
    /// The identified model is unstable and `require_stable` was requested.
    UnstableModel {
        /// Estimated spectral radius of the identified `As`.
        spectral_radius: f64,
    },
}

impl fmt::Display for SysIdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SysIdError::DimensionMismatch {
                what,
                expected,
                actual,
            } => write!(f, "{what} has length {actual}, expected {expected}"),
            SysIdError::InsufficientData { required, provided } => write!(
                f,
                "insufficient identification data: {provided} samples, need at least {required}"
            ),
            SysIdError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            SysIdError::Numeric(msg) => write!(f, "numeric failure: {msg}"),
            SysIdError::UnstableModel { spectral_radius } => write!(
                f,
                "identified model is unstable (spectral radius {spectral_radius:.4})"
            ),
        }
    }
}

impl Error for SysIdError {}

impl From<numeric::NumericError> for SysIdError {
    fn from(err: numeric::NumericError) -> Self {
        SysIdError::Numeric(err.to_string())
    }
}

impl From<thermal_model::ThermalError> for SysIdError {
    fn from(err: thermal_model::ThermalError) -> Self {
        SysIdError::Numeric(err.to_string())
    }
}

//! Logged identification data: synchronous temperature and power time series.

use serde::{Deserialize, Serialize};

use numeric::Vector;

use crate::SysIdError;

/// A time-synchronous log of hotspot temperatures and domain powers, sampled
/// at the control-interval rate, used as input to the identification.
///
/// Temperatures are stored as measured (absolute °C); the identification and
/// validation routines work on temperatures *relative to the ambient*, which
/// the dataset computes via [`IdentificationDataset::relative_temps`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IdentificationDataset {
    state_count: usize,
    input_count: usize,
    sample_period_s: f64,
    ambient_c: f64,
    temps: Vec<Vector>,
    powers: Vec<Vector>,
}

impl IdentificationDataset {
    /// Creates an empty dataset for `state_count` hotspots and `input_count`
    /// power inputs.
    ///
    /// # Errors
    ///
    /// Returns [`SysIdError::InvalidConfig`] if either count is zero or the
    /// sample period is not positive.
    pub fn new(
        state_count: usize,
        input_count: usize,
        sample_period_s: f64,
        ambient_c: f64,
    ) -> Result<Self, SysIdError> {
        if state_count == 0 || input_count == 0 {
            return Err(SysIdError::InvalidConfig(
                "state and input counts must be non-zero",
            ));
        }
        if !(sample_period_s > 0.0) || !sample_period_s.is_finite() {
            return Err(SysIdError::InvalidConfig("sample period must be positive"));
        }
        Ok(IdentificationDataset {
            state_count,
            input_count,
            sample_period_s,
            ambient_c,
            temps: Vec::new(),
            powers: Vec::new(),
        })
    }

    /// Appends one synchronous sample (absolute temperatures in °C, powers in
    /// watts).
    ///
    /// # Errors
    ///
    /// Returns [`SysIdError::DimensionMismatch`] if the vectors do not match
    /// the dataset dimensions.
    pub fn push(&mut self, temps_c: Vector, powers_w: Vector) -> Result<(), SysIdError> {
        if temps_c.len() != self.state_count {
            return Err(SysIdError::DimensionMismatch {
                what: "temperature sample",
                expected: self.state_count,
                actual: temps_c.len(),
            });
        }
        if powers_w.len() != self.input_count {
            return Err(SysIdError::DimensionMismatch {
                what: "power sample",
                expected: self.input_count,
                actual: powers_w.len(),
            });
        }
        self.temps.push(temps_c);
        self.powers.push(powers_w);
        Ok(())
    }

    /// Appends every sample of `other` to this dataset. The paper applies a
    /// separate PRBS experiment per power source; concatenating the logs lets
    /// a single least-squares problem see all of them.
    ///
    /// # Errors
    ///
    /// Returns [`SysIdError::DimensionMismatch`] if the datasets have
    /// different dimensions, or [`SysIdError::InvalidConfig`] if the sample
    /// periods differ.
    pub fn concatenate(&mut self, other: &IdentificationDataset) -> Result<(), SysIdError> {
        if other.state_count != self.state_count {
            return Err(SysIdError::DimensionMismatch {
                what: "state count",
                expected: self.state_count,
                actual: other.state_count,
            });
        }
        if other.input_count != self.input_count {
            return Err(SysIdError::DimensionMismatch {
                what: "input count",
                expected: self.input_count,
                actual: other.input_count,
            });
        }
        if (other.sample_period_s - self.sample_period_s).abs() > 1e-12 {
            return Err(SysIdError::InvalidConfig(
                "cannot concatenate datasets with different sample periods",
            ));
        }
        self.temps.extend(other.temps.iter().cloned());
        self.powers.extend(other.powers.iter().cloned());
        Ok(())
    }

    /// Number of logged samples.
    pub fn len(&self) -> usize {
        self.temps.len()
    }

    /// Returns `true` if nothing has been logged yet.
    pub fn is_empty(&self) -> bool {
        self.temps.is_empty()
    }

    /// Number of hotspot states.
    pub fn state_count(&self) -> usize {
        self.state_count
    }

    /// Number of power inputs.
    pub fn input_count(&self) -> usize {
        self.input_count
    }

    /// Sample period in seconds.
    pub fn sample_period_s(&self) -> f64 {
        self.sample_period_s
    }

    /// Ambient temperature the relative temperatures are referenced to, in °C.
    pub fn ambient_c(&self) -> f64 {
        self.ambient_c
    }

    /// The logged absolute temperature samples.
    pub fn temps(&self) -> &[Vector] {
        &self.temps
    }

    /// The logged power samples.
    pub fn powers(&self) -> &[Vector] {
        &self.powers
    }

    /// Temperatures relative to the ambient (`T − T_amb`), the quantity the
    /// linear model is fitted on.
    pub fn relative_temps(&self) -> Vec<Vector> {
        self.temps
            .iter()
            .map(|t| Vector::from_iter(t.iter().map(|x| x - self.ambient_c)))
            .collect()
    }

    /// Splits the dataset into an identification part (the first
    /// `fraction` of the samples) and a validation part (the rest).
    ///
    /// # Errors
    ///
    /// Returns [`SysIdError::InvalidConfig`] if `fraction` is not strictly
    /// between 0 and 1, or [`SysIdError::InsufficientData`] if either part
    /// would be empty.
    pub fn split(
        &self,
        fraction: f64,
    ) -> Result<(IdentificationDataset, IdentificationDataset), SysIdError> {
        if !(fraction > 0.0 && fraction < 1.0) {
            return Err(SysIdError::InvalidConfig(
                "split fraction must be strictly between 0 and 1",
            ));
        }
        let cut = (self.len() as f64 * fraction).round() as usize;
        if cut == 0 || cut >= self.len() {
            return Err(SysIdError::InsufficientData {
                required: 2,
                provided: self.len(),
            });
        }
        let mut train = IdentificationDataset::new(
            self.state_count,
            self.input_count,
            self.sample_period_s,
            self.ambient_c,
        )?;
        let mut test = train.clone();
        for k in 0..cut {
            train.push(self.temps[k].clone(), self.powers[k].clone())?;
        }
        for k in cut..self.len() {
            test.push(self.temps[k].clone(), self.powers[k].clone())?;
        }
        Ok((train, test))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_dataset(n: usize) -> IdentificationDataset {
        let mut ds = IdentificationDataset::new(2, 3, 0.1, 25.0).unwrap();
        for k in 0..n {
            ds.push(
                Vector::from_slice(&[30.0 + k as f64, 31.0 + k as f64]),
                Vector::from_slice(&[1.0, 0.5, 0.2]),
            )
            .unwrap();
        }
        ds
    }

    #[test]
    fn construction_validates_arguments() {
        assert!(IdentificationDataset::new(0, 1, 0.1, 25.0).is_err());
        assert!(IdentificationDataset::new(1, 0, 0.1, 25.0).is_err());
        assert!(IdentificationDataset::new(1, 1, 0.0, 25.0).is_err());
        assert!(IdentificationDataset::new(4, 4, 0.1, 25.0).is_ok());
    }

    #[test]
    fn push_validates_dimensions() {
        let mut ds = IdentificationDataset::new(2, 2, 0.1, 25.0).unwrap();
        assert!(ds.push(Vector::zeros(3), Vector::zeros(2)).is_err());
        assert!(ds.push(Vector::zeros(2), Vector::zeros(1)).is_err());
        assert!(ds.push(Vector::zeros(2), Vector::zeros(2)).is_ok());
        assert_eq!(ds.len(), 1);
        assert!(!ds.is_empty());
    }

    #[test]
    fn relative_temps_subtract_ambient() {
        let ds = sample_dataset(3);
        let rel = ds.relative_temps();
        assert_eq!(rel[0].as_slice(), &[5.0, 6.0]);
        assert_eq!(rel[2].as_slice(), &[7.0, 8.0]);
    }

    #[test]
    fn concatenation_appends_samples() {
        let mut a = sample_dataset(5);
        let b = sample_dataset(7);
        a.concatenate(&b).unwrap();
        assert_eq!(a.len(), 12);

        let mismatched = IdentificationDataset::new(3, 3, 0.1, 25.0).unwrap();
        assert!(a.concatenate(&mismatched).is_err());
        let wrong_period = IdentificationDataset::new(2, 3, 0.2, 25.0).unwrap();
        assert!(a.concatenate(&wrong_period).is_err());
    }

    #[test]
    fn split_partitions_in_order() {
        let ds = sample_dataset(10);
        let (train, test) = ds.split(0.7).unwrap();
        assert_eq!(train.len(), 7);
        assert_eq!(test.len(), 3);
        assert_eq!(train.temps()[0].as_slice(), ds.temps()[0].as_slice());
        assert_eq!(test.temps()[0].as_slice(), ds.temps()[7].as_slice());
        assert!(ds.split(0.0).is_err());
        assert!(ds.split(1.0).is_err());
    }

    #[test]
    fn split_rejects_tiny_datasets() {
        let ds = sample_dataset(1);
        assert!(ds.split(0.5).is_err());
    }
}

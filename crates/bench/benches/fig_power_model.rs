//! Criterion benchmarks for the power-modelling pipeline (Chapter 4.1 /
//! Figures 4.2–4.7): furnace synthesis, the nonlinear leakage fit and the
//! run-time power predictions the DTPM algorithm calls every interval.

use criterion::{criterion_group, criterion_main, Criterion};
use power_model::{FurnaceDataset, LeakageModel, PowerModel};
use soc_model::{Frequency, PowerDomain, Voltage};
use std::hint::black_box;

fn bench_furnace_fit(c: &mut Criterion) {
    let dataset = FurnaceDataset::synthesize(
        &LeakageModel::exynos5410_big(),
        Voltage::from_volts(1.2),
        0.31,
        &FurnaceDataset::PAPER_SWEEP_C,
        2.0,
        400.0,
        1.0,
        || 0.0,
    );
    c.bench_function("fig4_3/leakage_fit_from_furnace_sweep", |b| {
        b.iter(|| {
            let model = black_box(&dataset).fit_leakage().expect("fit succeeds");
            black_box(model)
        })
    });
}

fn bench_furnace_synthesis(c: &mut Criterion) {
    c.bench_function("fig4_2/furnace_dataset_synthesis", |b| {
        b.iter(|| {
            let dataset = FurnaceDataset::synthesize(
                &LeakageModel::exynos5410_big(),
                Voltage::from_volts(1.2),
                0.31,
                &FurnaceDataset::PAPER_SWEEP_C,
                2.0,
                400.0,
                1.0,
                || 0.0,
            );
            black_box(dataset)
        })
    });
}

fn bench_runtime_prediction(c: &mut Criterion) {
    let mut model = PowerModel::exynos5410_defaults();
    let v = Voltage::from_volts(1.2);
    let f = Frequency::from_mhz(1600);
    for _ in 0..10 {
        model.observe(PowerDomain::BigCpu, 3.0, 58.0, v, f);
    }
    c.bench_function("fig4_7/per_interval_power_prediction", |b| {
        b.iter(|| {
            // One observation plus the per-OPP predictions the DTPM frequency
            // scan performs in a control interval.
            model.observe(PowerDomain::BigCpu, black_box(3.1), 58.0, v, f);
            let mut total = 0.0;
            for mhz in (800..=1600).step_by(100) {
                total += model.predict_total(
                    PowerDomain::BigCpu,
                    58.0,
                    Voltage::from_volts(1.0),
                    Frequency::from_mhz(mhz),
                );
            }
            black_box(total)
        })
    });
}

criterion_group!(
    benches,
    bench_furnace_fit,
    bench_furnace_synthesis,
    bench_runtime_prediction
);
criterion_main!(benches);

//! Criterion benchmarks for the power/performance summary pipeline
//! (Figures 6.9 / 6.10) and the future-work budget distribution (Figure 7.1).

use bench::ExperimentContext;
use criterion::{criterion_group, criterion_main, Criterion};
use dtpm::{distribute_budget, DistributionMethod, ResourceLoad};
use platform_sim::{BenchmarkComparison, Experiment, ExperimentConfig, ExperimentKind};
use soc_model::OppTable;
use std::hint::black_box;
use workload::BenchmarkId;

fn bench_benchmark_comparison(c: &mut Criterion) {
    let context = ExperimentContext::new(true).expect("calibration succeeds");
    let mut group = c.benchmark_group("fig6_9/benchmark_comparison");
    group.sample_size(10);
    group.bench_function("crc32_dtpm_vs_fan", |b| {
        b.iter(|| {
            let baseline = Experiment::new(
                &ExperimentConfig::new(ExperimentKind::DefaultWithFan, BenchmarkId::Crc32)
                    .with_seed(7),
                &context.calibration,
            )
            .unwrap()
            .run()
            .unwrap();
            let dtpm = Experiment::new(
                &ExperimentConfig::new(ExperimentKind::Dtpm, BenchmarkId::Crc32).with_seed(7),
                &context.calibration,
            )
            .unwrap()
            .run()
            .unwrap();
            black_box(BenchmarkComparison::against_baseline(&baseline, &dtpm))
        })
    });
    group.finish();
}

fn bench_budget_distribution(c: &mut Criterion) {
    let resources = vec![
        ResourceLoad {
            name: "big-cpu".to_owned(),
            performance_weight: 3.0,
            power_coefficient: 0.9,
            opps: OppTable::exynos5410_big(),
        },
        ResourceLoad {
            name: "little-cpu".to_owned(),
            performance_weight: 0.6,
            power_coefficient: 0.12,
            opps: OppTable::exynos5410_little(),
        },
        ResourceLoad {
            name: "gpu".to_owned(),
            performance_weight: 1.2,
            power_coefficient: 2.0,
            opps: OppTable::exynos5410_gpu(),
        },
    ];
    let mut group = c.benchmark_group("fig7_1/budget_distribution");
    group.bench_function("greedy", |b| {
        b.iter(|| {
            black_box(
                distribute_budget(black_box(&resources), 2.5, DistributionMethod::Greedy).unwrap(),
            )
        })
    });
    group.bench_function("branch_and_bound", |b| {
        b.iter(|| {
            black_box(
                distribute_budget(
                    black_box(&resources),
                    2.5,
                    DistributionMethod::BranchAndBound,
                )
                .unwrap(),
            )
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_benchmark_comparison,
    bench_budget_distribution
);
criterion_main!(benches);

//! Criterion benchmark for the structure-of-arrays batched plant engine.
//!
//! Measures `BatchPlant::step_interval` advancing eight scenarios per
//! instruction stream against the per-scenario scalar loop (eight independent
//! `PhysicalPlant`s stepped back to back — what `ScenarioSweep` does per
//! worker thread without lanes). Besides the per-case criterion numbers it
//! prints total integrator micro-steps per second for both engines and the
//! batched-over-scalar speedup; the repo's acceptance bar is ≥ 2× at eight
//! lanes, asserted as a floor in the full (non `--test`) run.
//!
//! The measured numbers are also written to `BENCH_sweep_step.json` at the
//! workspace root so sweeps of the bench can be tracked over time.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Instant;

use platform_sim::{BatchPlant, LaneInput, PhysicalPlant, PlantPowerParams};
use soc_model::{FanLevel, PlatformState, SocSpec};
use workload::Demand;

const CONTROL_PERIOD_S: f64 = 0.1;
/// Micro-steps per control interval (the plant integrates at dt = 10 ms).
const MICRO_STEPS_PER_INTERVAL: f64 = 10.0;
/// Scenarios advanced per instruction stream in the batched engine.
const LANES: usize = 8;
/// Acceptance floor for the batched engine at eight lanes. Re-baselined
/// upward from 2.0 after the explicit SIMD panel kernels landed (measured
/// 2.84x on the AVX2 reference host, up from 2.35x with autovectorized
/// scalar kernels).
const SPEEDUP_FLOOR: f64 = 2.5;

fn busy_demand() -> Demand {
    Demand {
        cpu_streams: 3.5,
        activity_factor: 0.9,
        gpu_utilization: 0.4,
        memory_intensity: 0.5,
        frequency_scalability: 0.9,
    }
}

fn bench_sweep_step(c: &mut Criterion) {
    let spec = SocSpec::odroid_xu_e();
    let demand = busy_demand();
    let state = PlatformState::default_for(&spec);
    let params = [PlantPowerParams::default(); LANES];

    let mut group = c.benchmark_group("sweep_step/8_scenarios_100ms");
    let mut batched = BatchPlant::new(spec.clone(), &params);
    group.bench_function("batched", |b| {
        b.iter(|| {
            let inputs: [LaneInput<'_>; LANES] = std::array::from_fn(|_| LaneInput {
                state: black_box(&state),
                demand: black_box(&demand),
                fan_level: FanLevel::Off,
                ambient_c: 28.0,
            });
            black_box(batched.step_interval(&inputs, CONTROL_PERIOD_S).unwrap())
        })
    });
    let mut scalars: Vec<PhysicalPlant> = params
        .iter()
        .map(|p| PhysicalPlant::new(spec.clone(), *p))
        .collect();
    group.bench_function("scalar_per_scenario", |b| {
        b.iter(|| {
            for plant in &mut scalars {
                black_box(
                    plant
                        .step_interval(
                            black_box(&state),
                            black_box(&demand),
                            FanLevel::Off,
                            28.0,
                            CONTROL_PERIOD_S,
                        )
                        .unwrap(),
                );
            }
        })
    });
    group.finish();

    report_steps_per_second(&spec, &state, &demand);
}

/// Times both engines over the same simulated horizon and prints lane
/// micro-steps/sec plus the speedup factor; asserts the acceptance floor.
fn report_steps_per_second(spec: &SocSpec, state: &PlatformState, demand: &Demand) {
    let test_mode = std::env::args().any(|a| a == "--test");
    let intervals: usize = if test_mode { 20 } else { 2_000 };
    let passes: usize = if test_mode { 1 } else { 8 };
    let params = [PlantPowerParams::default(); LANES];

    // Best-of-N wall-clock per engine, with the two engines' passes
    // interleaved: the minimum is the least-interference estimate on a shared
    // machine, and alternating passes keeps frequency drift from landing on
    // one engine only (the simulated trajectory is identical in every pass).
    let mut batched = BatchPlant::new(spec.clone(), &params);
    let mut scalars: Vec<PhysicalPlant> = params
        .iter()
        .map(|p| PhysicalPlant::new(spec.clone(), *p))
        .collect();
    let mut batched_elapsed = std::time::Duration::MAX;
    let mut scalar_elapsed = std::time::Duration::MAX;
    for _ in 0..passes {
        let start = Instant::now();
        for _ in 0..intervals {
            let inputs: [LaneInput<'_>; LANES] = std::array::from_fn(|_| LaneInput {
                state,
                demand,
                fan_level: FanLevel::Off,
                ambient_c: 28.0,
            });
            black_box(batched.step_interval(&inputs, CONTROL_PERIOD_S).unwrap());
        }
        batched_elapsed = batched_elapsed.min(start.elapsed());

        let start = Instant::now();
        for _ in 0..intervals {
            for plant in &mut scalars {
                black_box(
                    plant
                        .step_interval(state, demand, FanLevel::Off, 28.0, CONTROL_PERIOD_S)
                        .unwrap(),
                );
            }
        }
        scalar_elapsed = scalar_elapsed.min(start.elapsed());
    }

    // Both engines advanced LANES scenarios for `intervals` control
    // intervals; count lane micro-steps.
    let micro_steps = (intervals * LANES) as f64 * MICRO_STEPS_PER_INTERVAL;
    let batched_sps = micro_steps / batched_elapsed.as_secs_f64();
    let scalar_sps = micro_steps / scalar_elapsed.as_secs_f64();
    let speedup = batched_sps / scalar_sps;
    println!(
        "sweep_step/lane_steps_per_sec/batched    {batched_sps:>14.0} steps/s ({LANES} lanes)"
    );
    println!("sweep_step/lane_steps_per_sec/scalar     {scalar_sps:>14.0} steps/s");
    println!(
        "sweep_step/speedup_vs_scalar             {speedup:>14.2}x (acceptance floor: >= {SPEEDUP_FLOOR}x)"
    );

    // Cross-check the engines while we have them side by side: after the
    // same simulated horizon every lane must match its scalar twin far below
    // any physically meaningful scale.
    let mut worst = 0.0f64;
    let mut lane_temps = vec![0.0; batched.node_count()];
    for (lane, plant) in scalars.iter().enumerate() {
        batched.node_temps_into(lane, &mut lane_temps);
        for (a, b) in lane_temps.iter().zip(plant.node_temps_c().iter()) {
            worst = worst.max((a - b).abs());
        }
    }
    println!("sweep_step/max_lane_divergence_degc      {worst:>14.2e}");
    assert!(
        worst < 1e-9,
        "batched and scalar trajectories diverged: {worst} degC"
    );

    if !test_mode {
        write_bench_json(batched_sps, scalar_sps, speedup, worst);
        // Regression guard: asserted only on the full run — the --test smoke
        // run is too short to measure meaningfully.
        assert!(
            speedup >= SPEEDUP_FLOOR,
            "batched engine regressed to {speedup:.2}x over the scalar per-scenario loop \
             (floor: {SPEEDUP_FLOOR}x)"
        );
    }
}

/// Records the measured numbers for tracking (`BENCH_sweep_step.json`).
fn write_bench_json(batched_sps: f64, scalar_sps: f64, speedup: f64, divergence_c: f64) {
    let json = format!(
        "{{\n  \"bench\": \"sweep_step\",\n  \"lanes\": {LANES},\n  \
         \"batched_lane_steps_per_sec\": {batched_sps:.0},\n  \
         \"scalar_lane_steps_per_sec\": {scalar_sps:.0},\n  \
         \"speedup_vs_scalar\": {speedup:.3},\n  \
         \"max_lane_divergence_degc\": {divergence_c:.3e},\n  \
         \"floor\": {SPEEDUP_FLOOR}\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sweep_step.json");
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("warning: could not write {path}: {e}");
    }
}

criterion_group!(benches, bench_sweep_step);
criterion_main!(benches);

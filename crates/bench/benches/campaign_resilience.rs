//! Wall-clock overhead of checkpointed campaigns.
//!
//! The same ~200-cell summaries-only grid as `sweep_campaign` is run through
//! two sinks:
//!
//! * **plain** — a bare [`MergeSink`]: the in-memory canonical fold, no
//!   persistence.
//! * **checkpointed** — a [`CheckpointSink`] around the same fold, writing
//!   an atomic on-disk snapshot every [`CHECKPOINT_EVERY`] completed cells
//!   (temp-file + sync + rename, the crash-safe path a long campaign uses).
//!
//! The acceptance bar: resilience must be close to free. The checkpointed
//! arm's best-of-two wall clock must stay within [`OVERHEAD_CEILING`] of the
//! plain arm's, and both arms must fold to the **bit-identical** aggregate
//! (compared by wire encoding, where every float is a bit pattern). The
//! measured numbers land in `BENCH_campaign_resilience.json`.

use std::time::{Duration, Instant};

use platform_sim::{
    Calibration, CalibrationCampaign, CheckpointSink, DtpmVariant, ExperimentKind, MergeSink,
    SweepSpec, TracePolicy,
};
use workload::BenchmarkId;

/// Lanes per worker engine (batch width) for both arms.
const LANES: usize = 8;
/// Simulated duration cap per cell in the full run, seconds. Long enough
/// that cells carry a realistic amount of simulation work: the checkpoint
/// bar is about amortised cost, and a campaign of trivially short cells
/// would measure little but the fsync floor.
const FULL_DURATION_S: f64 = 60.0;
/// Checkpoint cadence, completed cells per snapshot.
const CHECKPOINT_EVERY: usize = 25;
/// Acceptance ceiling: checkpointed wall over plain wall.
const OVERHEAD_CEILING: f64 = 1.05;

/// The campaign grid: 2 kinds × 5 benchmarks × 2 ambients × 2 DTPM variants
/// × 5 replicates = 200 cells (8 cells in `--test` mode).
fn campaign(test_mode: bool) -> SweepSpec {
    let (benchmarks, ambients, variants, replicates) = if test_mode {
        (
            vec![BenchmarkId::Crc32],
            vec![28.0],
            vec![DtpmVariant::default()],
            4,
        )
    } else {
        (
            vec![
                BenchmarkId::Crc32,
                BenchmarkId::Qsort,
                BenchmarkId::Dijkstra,
                BenchmarkId::Basicmath,
                BenchmarkId::Templerun,
            ],
            vec![26.0, 32.0],
            vec![
                DtpmVariant::default(),
                DtpmVariant {
                    horizon_steps: 20,
                    constraint_c: 60.0,
                },
            ],
            5,
        )
    };
    SweepSpec::new(
        vec![ExperimentKind::Reactive, ExperimentKind::Dtpm],
        benchmarks,
    )
    .with_ambients_c(ambients)
    .with_dtpm_variants(variants)
    .with_replicates(replicates)
    .with_campaign_seed(0x5EED_CA4D)
    .with_max_duration_s(if test_mode { 1.0 } else { FULL_DURATION_S })
    .with_ideal_sensors(true)
}

fn run_plain(spec: &SweepSpec, calibration: &Calibration) -> (Duration, MergeSink) {
    let mut sink = MergeSink::new(0..spec.cells());
    let start = Instant::now();
    spec.runner()
        .with_threads(1)
        .with_lanes(LANES)
        .with_recording(TracePolicy::SummaryOnly)
        .run_into(calibration, &mut sink);
    (start.elapsed(), sink)
}

fn run_checkpointed(
    spec: &SweepSpec,
    calibration: &Calibration,
    path: &std::path::Path,
) -> (Duration, MergeSink) {
    let mut sink =
        CheckpointSink::new(spec.fingerprint(), spec.cells(), path, CHECKPOINT_EVERY, ());
    let start = Instant::now();
    spec.runner()
        .with_threads(1)
        .with_lanes(LANES)
        .with_recording(TracePolicy::SummaryOnly)
        .run_into(calibration, &mut sink);
    let wall = start.elapsed();
    let (checkpoint, (), write) = sink.finish();
    write.expect("final checkpoint write must succeed");
    assert!(checkpoint.is_complete(), "every cell must be recorded");
    (wall, checkpoint.into_fold())
}

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");
    let spec = campaign(test_mode);
    let cells = spec.cells();
    let path = std::env::temp_dir().join(format!(
        "dtpm-bench-campaign-resilience-{}.ckpt",
        std::process::id()
    ));

    let calibration = CalibrationCampaign {
        prbs_duration_s: 120.0,
        run_furnace: false,
        ..CalibrationCampaign::default()
    }
    .run(41)
    .expect("calibration campaign must succeed");

    // Two interleaved passes per arm; best-of-two removes warm-up noise.
    let (plain_a, plain_fold) = run_plain(&spec, &calibration);
    let (ckpt_a, ckpt_fold) = run_checkpointed(&spec, &calibration, &path);
    let (ckpt_b, _) = run_checkpointed(&spec, &calibration, &path);
    let (plain_b, _) = run_plain(&spec, &calibration);
    let plain_wall = plain_a.min(plain_b);
    let ckpt_wall = ckpt_a.min(ckpt_b);
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(path.with_extension("ckpt.tmp")).ok();

    // Resilience must be invisible in the numbers: the checkpointed fold is
    // bit-identical to the plain one (the wire encoding renders every float
    // by bit pattern).
    assert!(plain_fold.is_complete() && ckpt_fold.is_complete());
    assert_eq!(
        plain_fold.encode(),
        ckpt_fold.encode(),
        "checkpointed fold diverged from the plain fold"
    );
    assert_eq!(plain_fold.aggregate().cells, cells);

    let plain_ms = plain_wall.as_secs_f64() * 1e3;
    let ckpt_ms = ckpt_wall.as_secs_f64() * 1e3;
    let overhead = ckpt_ms / plain_ms;
    let snapshots = cells.div_ceil(CHECKPOINT_EVERY);
    println!("campaign_resilience/cells               {cells:>14}");
    println!("campaign_resilience/checkpoint_every    {CHECKPOINT_EVERY:>14}");
    println!("campaign_resilience/snapshots           {snapshots:>14}");
    println!("campaign_resilience/plain_wall          {plain_ms:>14.2} ms");
    println!("campaign_resilience/checkpointed_wall   {ckpt_ms:>14.2} ms");
    println!(
        "campaign_resilience/overhead            {overhead:>14.3}x \
         (acceptance ceiling: <= {OVERHEAD_CEILING}x)"
    );

    if !test_mode {
        write_bench_json(cells, snapshots, plain_ms, ckpt_ms, overhead);
        assert!(
            overhead <= OVERHEAD_CEILING,
            "checkpointing overhead regressed to {overhead:.3}x \
             (ceiling: {OVERHEAD_CEILING}x)"
        );
    }
}

/// Records the measured numbers for tracking
/// (`BENCH_campaign_resilience.json`).
fn write_bench_json(cells: usize, snapshots: usize, plain_ms: f64, ckpt_ms: f64, overhead: f64) {
    let json = format!(
        "{{\n  \"bench\": \"campaign_resilience\",\n  \"cells\": {cells},\n  \
         \"lanes\": {LANES},\n  \
         \"max_duration_s\": {FULL_DURATION_S},\n  \
         \"checkpoint_every\": {CHECKPOINT_EVERY},\n  \
         \"snapshots\": {snapshots},\n  \
         \"plain_wall_ms\": {plain_ms:.2},\n  \
         \"checkpointed_wall_ms\": {ckpt_ms:.2},\n  \
         \"overhead\": {overhead:.3},\n  \
         \"ceiling\": {OVERHEAD_CEILING}\n}}\n"
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_campaign_resilience.json"
    );
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("warning: could not write {path}: {e}");
    }
}

//! Wall-clock benchmark of the batched two-phase control decision.
//!
//! PRs 1–3 batched the plant integrator, so on a lockstep sweep the
//! per-interval `decide` became the dominant scalar fraction (Amdahl): every
//! lane used to iterate the discrete thermal model `horizon` times — two
//! mat-vecs per step, per lane, per interval. The two-phase decide replaces
//! that with one fused panel application of the precomputed horizon map
//! `(Aₙ, Bₙ)` classifying **all** lanes at once; only lanes predicted to
//! violate fall through to the scalar actuation walk.
//!
//! The workload is control-heavy by construction — a long prediction horizon
//! (32 steps, vs the paper's 10) over a sweep-wide lane group — i.e. the
//! regime where the prediction pre-pass dominated. Both arms run the *full*
//! decision (proposal power vector, classification, affirm-or-actuate
//! resolution) on identical inputs:
//!
//! * **per-lane scalar** — the pre-PR path: each lane classifies through
//!   [`ThermalPredictor::predict_peak_iterated`], the `horizon`-length model
//!   loop.
//! * **batched two-phase** — every lane's proposal assembled into one
//!   [`BatchPredictor`] panel, one prediction for the whole group.
//!
//! The acceptance bar is ≥ 1.5× decisions/s for the batched arm, asserted as
//! a floor in the full (non `--test`) run; measured numbers land in
//! `BENCH_sweep_decide.json` together with an end-to-end control-heavy
//! `run_lockstep` sweep for context.

use std::time::{Duration, Instant};

use dtpm::{BatchPredictor, DtpmAction, DtpmConfig, DtpmInputs, DtpmPolicy};
use platform_sim::{run_lockstep, CalibrationCampaign, ExperimentConfig, ExperimentKind};
use power_model::{DomainPower, PowerModel};
use soc_model::{Frequency, PlatformState, PowerDomain, SocSpec, Voltage};
use workload::BenchmarkId;

/// Scenario lanes advanced per instruction stream (the sweep batch width).
const LANES: usize = 8;
/// Prediction horizon in control intervals: control-heavy (the paper's
/// configuration uses 10).
const HORIZON: usize = 32;
/// Control period of the end-to-end sweep, seconds (10 ms: ten times the
/// paper's rate, so decisions dominate the sweep).
const CONTROL_PERIOD_S: f64 = 0.01;
/// Acceptance floor: batched two-phase over per-lane scalar decisions/s.
/// Re-baselined upward from 1.5 after the explicit SIMD panel kernels landed
/// (measured 13.1x on the AVX2 reference host, up from 11.98x with
/// autovectorized scalar kernels).
const SPEEDUP_FLOOR: f64 = 10.0;

/// A run-time power model trained like a warm sweep's (heavy big-cluster
/// activity, light GPU/memory observations).
fn trained_power_model() -> PowerModel {
    let mut model = PowerModel::exynos5410_defaults();
    let v = Voltage::from_volts(1.2);
    let f = Frequency::from_mhz(1600);
    for _ in 0..20 {
        model.observe(PowerDomain::BigCpu, 3.8, 58.0, v, f);
    }
    for _ in 0..5 {
        model.observe(
            PowerDomain::Gpu,
            0.15,
            55.0,
            Voltage::from_volts(0.85),
            Frequency::from_mhz(177),
        );
        model.observe(
            PowerDomain::Memory,
            0.35,
            55.0,
            Voltage::from_volts(1.0),
            Frequency::from_mhz(800),
        );
    }
    model
}

/// Per-lane measured temperatures: a steady-state mix — most lanes cruising
/// below the constraint (affirmed), one lane per group near it (pays the
/// actuation walk), mirroring "violations are rare" on a real sweep.
fn lane_temps(lane: usize) -> [f64; 4] {
    if lane == LANES - 1 {
        [62.8, 62.3, 63.3, 62.6]
    } else {
        let base = 48.0 + lane as f64 * 1.1;
        [base, base - 0.7, base + 0.4, base - 0.3]
    }
}

fn lane_power(lane: usize) -> DomainPower {
    DomainPower::new(3.4 + 0.05 * lane as f64, 0.04, 0.15, 0.4)
}

/// Best-of-N wall clock for a closure returning a decision count.
fn best_of<F: FnMut() -> usize>(passes: usize, mut run: F) -> (Duration, usize) {
    let mut best = Duration::MAX;
    let mut decisions = 0;
    for _ in 0..passes {
        let start = Instant::now();
        decisions = run();
        let elapsed = start.elapsed();
        if elapsed < best {
            best = elapsed;
        }
    }
    (best, decisions)
}

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");
    let intervals = if test_mode { 200 } else { 20_000 };
    let passes = if test_mode { 1 } else { 5 };

    let calibration = CalibrationCampaign {
        prbs_duration_s: 120.0,
        run_furnace: false,
        ..CalibrationCampaign::default()
    }
    .run(37)
    .expect("calibration campaign must succeed");
    let spec = SocSpec::odroid_xu_e();
    let power_model = trained_power_model();
    let dtpm_config = DtpmConfig {
        prediction_horizon_steps: HORIZON,
        ..DtpmConfig::default()
    };

    // One policy per lane, cloned from the shared calibration predictor —
    // exactly how a lockstep sweep builds its control loops. The clones
    // share one precomputed horizon map through the predictor's cache.
    let policies: Vec<DtpmPolicy> = (0..LANES)
        .map(|_| {
            DtpmPolicy::new(dtpm_config, calibration.predictor.clone())
                .expect("valid configuration")
        })
        .collect();
    let inputs: Vec<DtpmInputs<'_>> = (0..LANES)
        .map(|lane| DtpmInputs {
            spec: &spec,
            proposed: PlatformState::default_for(&spec),
            core_temps_c: lane_temps(lane),
            measured_power: lane_power(lane),
        })
        .collect();

    // Cross-check once, outside the timed loops: the batched classification
    // must reproduce the scalar (iterated-predictor) decisions exactly on
    // this input set, the cool lanes must affirm and the hot lane must
    // exercise the actuation walk.
    let mut batch = BatchPredictor::new(
        std::sync::Arc::clone(policies[0].horizon_map()),
        calibration.predictor.ambient_c(),
        LANES,
    )
    .expect("hotspot-shaped map");
    let mut lane_powers: Vec<DomainPower> = vec![DomainPower::default(); LANES];
    for (lane, (policy, input)) in policies.iter().zip(&inputs).enumerate() {
        let powers = policy
            .proposal_powers(input, &power_model)
            .expect("proposal powers");
        batch.set_lane(lane, input.core_temps_c, &powers);
        lane_powers[lane] = powers;
    }
    batch.predict();
    for (lane, (policy, input)) in policies.iter().zip(&inputs).enumerate() {
        let batched = policy
            .resolve(input, &power_model, &lane_powers[lane], batch.peak_c(lane))
            .expect("decision resolves");
        let scalar_peak = policy
            .predictor()
            .predict_peak_iterated(input.core_temps_c, &lane_powers[lane], HORIZON)
            .expect("iterated prediction");
        let scalar = policy
            .resolve(input, &power_model, &lane_powers[lane], scalar_peak)
            .expect("decision resolves");
        assert_eq!(batched.action, scalar.action, "lane {lane} diverged");
        assert!(
            (batched.predicted_peak_c - scalar.predicted_peak_c).abs() <= 1e-12,
            "lane {lane} peaks diverged beyond the equivalence bar"
        );
        assert_eq!(
            batched.action == DtpmAction::Affirmed,
            lane != LANES - 1,
            "steady state must affirm the cool lanes and throttle the hot one"
        );
    }

    // Arm A — per-lane scalar (the pre-PR decide): iterated horizon loop
    // per lane, then the affirm-or-actuate resolution.
    let (scalar_wall, scalar_decisions) = best_of(passes, || {
        for _ in 0..intervals {
            for (policy, input) in policies.iter().zip(&inputs) {
                let powers = policy
                    .proposal_powers(input, &power_model)
                    .expect("proposal powers");
                let peak = policy
                    .predictor()
                    .predict_peak_iterated(input.core_temps_c, &powers, HORIZON)
                    .expect("iterated prediction");
                std::hint::black_box(
                    policy
                        .resolve(input, &power_model, &powers, peak)
                        .expect("decision resolves"),
                );
            }
        }
        intervals * LANES
    });

    // Arm B — batched two-phase: every lane's proposal classified by one
    // fused panel prediction; only violating lanes walk the actuation list.
    let (batched_wall, batched_decisions) = best_of(passes, || {
        for _ in 0..intervals {
            for (lane, (policy, input)) in policies.iter().zip(&inputs).enumerate() {
                let powers = policy
                    .proposal_powers(input, &power_model)
                    .expect("proposal powers");
                batch.set_lane(lane, input.core_temps_c, &powers);
                lane_powers[lane] = powers;
            }
            batch.predict();
            for (lane, (policy, input)) in policies.iter().zip(&inputs).enumerate() {
                std::hint::black_box(
                    policy
                        .resolve(input, &power_model, &lane_powers[lane], batch.peak_c(lane))
                        .expect("decision resolves"),
                );
            }
        }
        intervals * LANES
    });

    // End-to-end context: a control-heavy lockstep sweep through the real
    // executor (batched plant + batched two-phase decide).
    let sweep_configs: Vec<ExperimentConfig> = (0..LANES)
        .map(|i| {
            let mut config = ExperimentConfig::new(ExperimentKind::Dtpm, BenchmarkId::MatrixMult)
                .with_seed(1200 + i as u64);
            config.control_period_s = CONTROL_PERIOD_S;
            config.max_duration_s = if test_mode { 0.5 } else { 8.0 };
            config.dtpm = dtpm_config;
            config
        })
        .collect();
    let sweep_start = Instant::now();
    let sweep_results = run_lockstep(&sweep_configs, &calibration);
    let sweep_wall = sweep_start.elapsed();
    let sweep_decisions: usize = sweep_results
        .iter()
        .map(|r| r.as_ref().expect("sweep scenario succeeds").trace.len())
        .sum();

    let scalar_per_s = scalar_decisions as f64 / scalar_wall.as_secs_f64();
    let batched_per_s = batched_decisions as f64 / batched_wall.as_secs_f64();
    let speedup = batched_per_s / scalar_per_s;
    let sweep_per_s = sweep_decisions as f64 / sweep_wall.as_secs_f64();
    println!(
        "sweep_decide/scalar_decisions_per_s      {scalar_per_s:>14.0} \
         ({LANES} lanes, horizon {HORIZON})"
    );
    println!("sweep_decide/batched_decisions_per_s     {batched_per_s:>14.0}");
    println!(
        "sweep_decide/speedup_vs_scalar           {speedup:>14.2}x \
         (acceptance floor: >= {SPEEDUP_FLOOR}x)"
    );
    println!(
        "sweep_decide/e2e_lockstep_sweep          {:>14.2} ms \
         ({sweep_decisions} decisions, {sweep_per_s:.0}/s)",
        sweep_wall.as_secs_f64() * 1e3
    );

    if !test_mode {
        write_bench_json(
            scalar_per_s,
            batched_per_s,
            speedup,
            &sweep_wall,
            sweep_per_s,
        );
        // Regression guard: asserted only on the full run — the --test smoke
        // run is too short to measure meaningfully.
        assert!(
            speedup >= SPEEDUP_FLOOR,
            "batched two-phase decide regressed to {speedup:.2}x over the \
             per-lane scalar path (floor: {SPEEDUP_FLOOR}x)"
        );
    }
}

/// Records the measured numbers for tracking (`BENCH_sweep_decide.json`).
fn write_bench_json(
    scalar_per_s: f64,
    batched_per_s: f64,
    speedup: f64,
    sweep_wall: &Duration,
    sweep_per_s: f64,
) {
    let sweep_ms = sweep_wall.as_secs_f64() * 1e3;
    let json = format!(
        "{{\n  \"bench\": \"sweep_decide\",\n  \"lanes\": {LANES},\n  \
         \"horizon\": {HORIZON},\n  \
         \"control_period_s\": {CONTROL_PERIOD_S},\n  \
         \"scalar_decisions_per_s\": {scalar_per_s:.0},\n  \
         \"batched_decisions_per_s\": {batched_per_s:.0},\n  \
         \"speedup_vs_scalar\": {speedup:.3},\n  \
         \"floor\": {SPEEDUP_FLOOR},\n  \
         \"e2e_lockstep_wall_ms\": {sweep_ms:.2},\n  \
         \"e2e_decisions_per_s\": {sweep_per_s:.0}\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sweep_decide.json");
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("warning: could not write {path}: {e}");
    }
}

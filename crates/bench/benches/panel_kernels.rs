//! Criterion microbenchmark for the SIMD panel-kernel dispatch arms.
//!
//! Times the three hot loop shapes the batched engines spend their cycles in
//! — the single-matrix panel product, the fused affine-pair step and the
//! anchored leakage span — once through the auto-detected vector arm and once
//! through forced scalar, at 8 lanes (one chunk, the per-interval shape) and
//! 32 lanes (the compacted-sweep shape), and at both element widths (the f64
//! default and the mixed-precision engine's f32 panels). The headline number
//! is the vector-over-scalar speedup on the 8-lane f64 affine-pair kernel:
//! on an AVX2 host the acceptance floor is ≥ 1.5×, asserted in the full
//! (non `--test`) run. Every cell also records its f32-over-f64 ratio so the
//! per-op width win is tracked alongside the dispatch win.
//!
//! The measured numbers are also written to `BENCH_panel_kernels.json` at the
//! workspace root so sweeps of the bench can be tracked over time.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Instant;

use numeric::simd::PanelKernel;
use numeric::{
    affine_pair_apply_elem_with, affine_pair_apply_with, mul_panel_into_elem_with, Matrix, Panel,
    PanelF32,
};
use power_model::{LeakageModel, LeakagePanel, LeakagePanelF32};

/// The paper's plant is an 8-node model; every hot kernel call is 8×8.
const N: usize = 8;
/// Leakage-driven node rows per scenario in the batched plant.
const LEAK_ROWS: usize = 6;
/// Acceptance floor for the vector arm on the 8-lane affine-pair kernel
/// (only asserted when an AVX2 host provides a vector arm to measure).
const SPEEDUP_FLOOR: f64 = 1.5;

fn test_matrix(seed: f64) -> Matrix {
    let mut m = Matrix::zeros(N, N);
    for i in 0..N {
        for j in 0..N {
            m[(i, j)] = ((i * N + j) as f64).sin() * seed + if i == j { 0.9 } else { 0.0 };
        }
    }
    m
}

fn test_panel(rows: usize, lanes: usize, scale: f64) -> Panel {
    let mut p = Panel::zeros(rows, lanes);
    for i in 0..rows {
        for l in 0..lanes {
            p.set(i, l, 40.0 + scale * (i * lanes + l) as f64);
        }
    }
    p
}

/// A named kernel-shaped operation on the fixture, timed per dispatch arm.
type KernelOp = (&'static str, fn(&mut KernelFixture, PanelKernel));

struct KernelFixture {
    a: Matrix,
    b: Matrix,
    bias: Vec<f64>,
    x: Panel,
    y: Panel,
    out: Panel,
    leak: LeakagePanel,
    temps: Vec<f64>,
    currents: Vec<f64>,
}

impl KernelFixture {
    fn new(lanes: usize) -> Self {
        let cells = LEAK_ROWS * lanes;
        KernelFixture {
            a: test_matrix(0.2),
            b: test_matrix(0.05),
            bias: (0..N).map(|i| 0.01 * i as f64).collect(),
            x: test_panel(N, lanes, 0.037),
            y: test_panel(N, lanes, 0.011),
            out: Panel::zeros(N, lanes),
            leak: LeakagePanel::filled(LEAK_ROWS, lanes, &LeakageModel::exynos5410_big(), 52.0),
            temps: (0..cells).map(|k| 52.0 + 0.002 * k as f64).collect(),
            currents: vec![0.0; cells],
        }
    }

    fn mul_panel(&mut self, kernel: PanelKernel) {
        self.a
            .mul_panel_into_with(kernel, black_box(&self.x), &mut self.out)
            .unwrap();
        black_box(&self.out);
    }

    fn affine_pair(&mut self, kernel: PanelKernel) {
        affine_pair_apply_with(
            kernel,
            &self.a,
            &self.b,
            &self.bias,
            black_box(&self.x),
            black_box(&self.y),
            &mut self.out,
        )
        .unwrap();
        black_box(&self.out);
    }

    fn leakage_span(&mut self, kernel: PanelKernel) {
        self.leak
            .currents_into_with(kernel, black_box(&self.temps), &mut self.currents);
        black_box(&self.currents[0]);
    }
}

/// The same three op shapes at f32 width (the mixed-precision engine's
/// panels): matrices live in `PanelF32` form for the width-generic kernels.
type KernelOp32 = (&'static str, fn(&mut KernelFixture32, PanelKernel));

struct KernelFixture32 {
    a: PanelF32,
    b: PanelF32,
    bias: Vec<f32>,
    x: PanelF32,
    y: PanelF32,
    out: PanelF32,
    leak: LeakagePanelF32,
    temps: Vec<f32>,
    currents: Vec<f32>,
}

impl KernelFixture32 {
    fn new(lanes: usize) -> Self {
        let demote = |m: &Matrix| {
            let mut p = PanelF32::zeros(N, N);
            for i in 0..N {
                for j in 0..N {
                    p.set(i, j, m[(i, j)] as f32);
                }
            }
            p
        };
        let demote_panel = |p64: &Panel| {
            let mut p = PanelF32::zeros(p64.rows(), p64.lanes());
            for i in 0..p64.rows() {
                for l in 0..p64.lanes() {
                    p.set(i, l, p64.get(i, l) as f32);
                }
            }
            p
        };
        let cells = LEAK_ROWS * lanes;
        KernelFixture32 {
            a: demote(&test_matrix(0.2)),
            b: demote(&test_matrix(0.05)),
            bias: (0..N).map(|i| 0.01 * i as f32).collect(),
            x: demote_panel(&test_panel(N, lanes, 0.037)),
            y: demote_panel(&test_panel(N, lanes, 0.011)),
            out: PanelF32::zeros(N, lanes),
            leak: LeakagePanelF32::filled(LEAK_ROWS, lanes, &LeakageModel::exynos5410_big(), 52.0),
            temps: (0..cells).map(|k| 52.0 + 0.002 * k as f32).collect(),
            currents: vec![0.0; cells],
        }
    }

    fn mul_panel(&mut self, kernel: PanelKernel) {
        mul_panel_into_elem_with(kernel, &self.a, black_box(&self.x), &mut self.out).unwrap();
        black_box(&self.out);
    }

    fn affine_pair(&mut self, kernel: PanelKernel) {
        affine_pair_apply_elem_with(
            kernel,
            &self.a,
            &self.b,
            &self.bias,
            black_box(&self.x),
            black_box(&self.y),
            &mut self.out,
        )
        .unwrap();
        black_box(&self.out);
    }

    fn leakage_span(&mut self, kernel: PanelKernel) {
        self.leak
            .currents_into_with(kernel, black_box(&self.temps), &mut self.currents);
        black_box(&self.currents[0]);
    }
}

fn bench_panel_kernels(c: &mut Criterion) {
    for lanes in [8usize, 32] {
        let mut group = c.benchmark_group(&format!("panel_kernels/{lanes}_lanes"));
        let active = PanelKernel::active();
        let mut fx = KernelFixture::new(lanes);
        group.bench_function(&format!("mul_panel/{}", active.name()), |bench| {
            bench.iter(|| fx.mul_panel(active))
        });
        group.bench_function("mul_panel/scalar", |bench| {
            bench.iter(|| fx.mul_panel(PanelKernel::Scalar))
        });
        group.bench_function(&format!("affine_pair/{}", active.name()), |bench| {
            bench.iter(|| fx.affine_pair(active))
        });
        group.bench_function("affine_pair/scalar", |bench| {
            bench.iter(|| fx.affine_pair(PanelKernel::Scalar))
        });
        group.bench_function(&format!("leakage_span/{}", active.name()), |bench| {
            bench.iter(|| fx.leakage_span(active))
        });
        group.bench_function("leakage_span/scalar", |bench| {
            bench.iter(|| fx.leakage_span(PanelKernel::Scalar))
        });
        let mut fx32 = KernelFixture32::new(lanes);
        group.bench_function(&format!("mul_panel_f32/{}", active.name()), |bench| {
            bench.iter(|| fx32.mul_panel(active))
        });
        group.bench_function(&format!("affine_pair_f32/{}", active.name()), |bench| {
            bench.iter(|| fx32.affine_pair(active))
        });
        group.bench_function(&format!("leakage_span_f32/{}", active.name()), |bench| {
            bench.iter(|| fx32.leakage_span(active))
        });
        group.finish();
    }

    report_speedups();
}

/// Best-of-N nanoseconds per kernel call.
fn time_op(passes: usize, iters: usize, mut op: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..passes {
        let start = Instant::now();
        for _ in 0..iters {
            op();
        }
        best = best.min(start.elapsed().as_secs_f64() * 1e9 / iters as f64);
    }
    best
}

/// Times every (op, lanes, arm) cell, prints the speedup table, asserts the
/// acceptance floor and records `BENCH_panel_kernels.json`.
fn report_speedups() {
    let test_mode = std::env::args().any(|a| a == "--test");
    let passes = if test_mode { 1 } else { 5 };
    let iters = if test_mode { 200 } else { 200_000 };
    let active = PanelKernel::active();

    let mut rows = Vec::new();
    let mut affine8_speedup = None;
    for lanes in [8usize, 32] {
        let mut fx = KernelFixture::new(lanes);
        let mut fx32 = KernelFixture32::new(lanes);
        let ops: [(KernelOp, KernelOp32); 3] = [
            (
                ("mul_panel", KernelFixture::mul_panel),
                ("mul_panel", KernelFixture32::mul_panel),
            ),
            (
                ("affine_pair", KernelFixture::affine_pair),
                ("affine_pair", KernelFixture32::affine_pair),
            ),
            (
                ("leakage_span", KernelFixture::leakage_span),
                ("leakage_span", KernelFixture32::leakage_span),
            ),
        ];
        for ((name, op), (_, op32)) in ops {
            let wide_ns = time_op(passes, iters, || op(&mut fx, active));
            let scalar_ns = time_op(passes, iters, || op(&mut fx, PanelKernel::Scalar));
            let speedup = scalar_ns / wide_ns;
            let wide32_ns = time_op(passes, iters, || op32(&mut fx32, active));
            let scalar32_ns = time_op(passes, iters, || op32(&mut fx32, PanelKernel::Scalar));
            let speedup32 = scalar32_ns / wide32_ns;
            let f32_vs_f64 = wide_ns / wide32_ns;
            println!(
                "panel_kernels/{name}/{lanes}_lanes      {:>8.1} ns ({}) vs {:>8.1} ns (scalar)  {speedup:>6.2}x",
                wide_ns,
                active.name(),
                scalar_ns,
            );
            println!(
                "panel_kernels/{name}_f32/{lanes}_lanes  {:>8.1} ns ({}) vs {:>8.1} ns (scalar)  {speedup32:>6.2}x  [f32 vs f64: {f32_vs_f64:.2}x]",
                wide32_ns,
                active.name(),
                scalar32_ns,
            );
            if name == "affine_pair" && lanes == 8 {
                affine8_speedup = Some(speedup);
            }
            rows.push(format!(
                "    {{ \"op\": \"{name}\", \"elem\": \"f64\", \"lanes\": {lanes}, \
                 \"{}_ns_per_call\": {wide_ns:.1}, \"scalar_ns_per_call\": {scalar_ns:.1}, \
                 \"speedup\": {speedup:.3} }}",
                active.name()
            ));
            rows.push(format!(
                "    {{ \"op\": \"{name}\", \"elem\": \"f32\", \"lanes\": {lanes}, \
                 \"{}_ns_per_call\": {wide32_ns:.1}, \"scalar_ns_per_call\": {scalar32_ns:.1}, \
                 \"speedup\": {speedup32:.3}, \"f32_vs_f64_speedup\": {f32_vs_f64:.3} }}",
                active.name()
            ));
        }
    }
    let affine8 = affine8_speedup.expect("affine_pair at 8 lanes was measured");
    println!(
        "panel_kernels/affine_pair_8_lane_speedup  {affine8:>6.2}x \
         (acceptance floor on AVX2 hosts: >= {SPEEDUP_FLOOR}x)"
    );

    if !test_mode {
        write_bench_json(active, affine8, &rows);
        // The floor is a property of the AVX2 arm; on hosts without one the
        // active kernel IS the scalar path and there is nothing to assert.
        if active == PanelKernel::Avx2Fma {
            assert!(
                affine8 >= SPEEDUP_FLOOR,
                "AVX2 affine-pair kernel regressed to {affine8:.2}x over blocked scalar \
                 at 8 lanes (floor: {SPEEDUP_FLOOR}x)"
            );
        }
    }
}

/// Records the measured numbers for tracking (`BENCH_panel_kernels.json`).
fn write_bench_json(active: PanelKernel, affine8: f64, rows: &[String]) {
    let json = format!(
        "{{\n  \"bench\": \"panel_kernels\",\n  \"active_kernel\": \"{}\",\n  \
         \"affine_pair_8_lane_speedup\": {affine8:.3},\n  \
         \"floor\": {SPEEDUP_FLOOR},\n  \"cells\": [\n{}\n  ]\n}}\n",
        active.name(),
        rows.join(",\n")
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_panel_kernels.json"
    );
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("warning: could not write {path}: {e}");
    }
}

criterion_group!(benches, bench_panel_kernels);
criterion_main!(benches);

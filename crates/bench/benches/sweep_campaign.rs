//! Memory and wall-clock benchmark for streaming sweep campaigns.
//!
//! A ~200-cell grid (kinds × benchmarks × ambients × DTPM variants ×
//! replicates) is run twice through the same lane-compacting scheduler:
//!
//! * **collect-everything** — the classic trace-retaining path
//!   ([`TracePolicy::Full`] into a [`CollectSink`]): every run keeps one
//!   `TraceRecord` per control interval, so retained memory scales as
//!   cells × intervals.
//! * **streaming-summaries** — the campaign default
//!   ([`TracePolicy::SummaryOnly`]): every run streams through the online
//!   accumulators and retains one O(1) [`RunSummary`], so retained memory is
//!   O(cells) regardless of run length.
//!
//! The acceptance bar is structural, not a race: the streaming sink's
//! retained result bytes must stay exactly O(cells) — zero per-interval
//! records retained — while the collect arm's retention grows with the
//! per-run interval count, and the per-cell summaries of the two arms must
//! agree. The measured numbers land in `BENCH_sweep_campaign.json`.

use std::time::{Duration, Instant};

use platform_sim::{
    Calibration, CalibrationCampaign, CollectSink, DtpmVariant, ExperimentKind, RunReport,
    RunSummary, SimError, SweepSpec, TracePolicy,
};
use workload::BenchmarkId;

/// Lanes per worker engine (batch width) for both arms.
const LANES: usize = 8;
/// Simulated duration cap per cell in the full run, seconds.
const FULL_DURATION_S: f64 = 4.0;
/// Acceptance floor: collect-arm retained bytes over streaming-arm retained
/// bytes. With 40 retained intervals per cell the measured ratio sits far
/// above this; the floor only guards against per-interval retention
/// sneaking back into the streaming path.
const RETENTION_FLOOR: f64 = 4.0;

/// The campaign grid: 2 kinds × 5 benchmarks × 2 ambients × 2 DTPM variants
/// × 5 replicates = 200 cells (8 cells in `--test` mode).
fn campaign(test_mode: bool) -> SweepSpec {
    let (benchmarks, ambients, variants, replicates) = if test_mode {
        (
            vec![BenchmarkId::Crc32],
            vec![28.0],
            vec![DtpmVariant::default()],
            4,
        )
    } else {
        (
            vec![
                BenchmarkId::Crc32,
                BenchmarkId::Qsort,
                BenchmarkId::Dijkstra,
                BenchmarkId::Basicmath,
                BenchmarkId::Templerun,
            ],
            vec![26.0, 32.0],
            vec![
                DtpmVariant::default(),
                DtpmVariant {
                    horizon_steps: 20,
                    constraint_c: 60.0,
                },
            ],
            5,
        )
    };
    SweepSpec::new(
        vec![ExperimentKind::Reactive, ExperimentKind::Dtpm],
        benchmarks,
    )
    .with_ambients_c(ambients)
    .with_dtpm_variants(variants)
    .with_replicates(replicates)
    .with_campaign_seed(0x5EED_CA4D)
    .with_max_duration_s(if test_mode { 1.0 } else { FULL_DURATION_S })
    .with_ideal_sensors(true)
}

/// Bytes a collected report pins in memory beyond its own struct: the heap
/// side of the retained trace.
fn retained_trace_bytes(report: &RunReport) -> usize {
    report
        .trace
        .as_ref()
        .map(|t| t.len() * std::mem::size_of::<platform_sim::TraceRecord>())
        .unwrap_or(0)
}

struct ArmOutcome {
    wall: Duration,
    reports: Vec<Result<RunReport, SimError>>,
    /// Total retained result bytes: per-report struct plus retained trace
    /// heap.
    retained_bytes: usize,
    /// Total per-interval records retained across every report.
    retained_records: usize,
}

fn run_arm(spec: &SweepSpec, calibration: &Calibration, recording: TracePolicy) -> ArmOutcome {
    let mut sink = CollectSink::new(spec.cells());
    let start = Instant::now();
    spec.runner()
        .with_threads(1)
        .with_lanes(LANES)
        .with_recording(recording)
        .run_into(calibration, &mut sink);
    let wall = start.elapsed();
    let reports = sink.into_reports();
    let retained_records: usize = reports
        .iter()
        .map(|r| {
            r.as_ref()
                .map(|r| r.trace.as_ref().map(platform_sim::Trace::len).unwrap_or(0))
                .unwrap_or(0)
        })
        .sum();
    let retained_bytes = reports.len() * std::mem::size_of::<Result<RunReport, SimError>>()
        + reports
            .iter()
            .map(|r| r.as_ref().map(retained_trace_bytes).unwrap_or(0))
            .sum::<usize>();
    ArmOutcome {
        wall,
        reports,
        retained_bytes,
        retained_records,
    }
}

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");
    let spec = campaign(test_mode);
    let cells = spec.cells();

    let calibration = CalibrationCampaign {
        prbs_duration_s: 120.0,
        run_furnace: false,
        ..CalibrationCampaign::default()
    }
    .run(41)
    .expect("calibration campaign must succeed");

    let collect = run_arm(&spec, &calibration, TracePolicy::Full);
    let streaming = run_arm(&spec, &calibration, TracePolicy::SummaryOnly);

    // Cross-check the arms while we have them side by side: streaming must
    // be invisible in the summaries. A single worker makes lane placement
    // deterministic, so the comparison is exact.
    assert_eq!(collect.reports.len(), cells);
    assert_eq!(streaming.reports.len(), cells);
    for (index, (collected, streamed)) in collect.reports.iter().zip(&streaming.reports).enumerate()
    {
        let collected = collected.as_ref().expect("collect arm cell succeeds");
        let streamed = streamed.as_ref().expect("streaming arm cell succeeds");
        assert_eq!(
            collected.summary, streamed.summary,
            "cell {index}: summaries diverged between arms"
        );
        assert!(
            streamed.trace.is_none(),
            "cell {index}: streaming arm retained a trace"
        );
    }

    // The structural acceptance bar: the streaming sink retains zero
    // per-interval records — its result bytes are exactly O(cells) — while
    // the collect arm's retention carries every interval of every cell.
    assert_eq!(
        streaming.retained_records, 0,
        "streaming arm must retain no per-interval records"
    );
    assert_eq!(
        streaming.retained_bytes,
        cells * std::mem::size_of::<Result<RunReport, SimError>>(),
        "streaming retention must be exactly cells x report size"
    );
    let intervals_total: usize = collect
        .reports
        .iter()
        .map(|r| r.as_ref().map(|r| r.summary.intervals).unwrap_or(0))
        .sum();
    assert_eq!(
        collect.retained_records, intervals_total,
        "collect arm retains every interval"
    );

    let ratio = collect.retained_bytes as f64 / streaming.retained_bytes as f64;
    let collect_ms = collect.wall.as_secs_f64() * 1e3;
    let streaming_ms = streaming.wall.as_secs_f64() * 1e3;
    println!(
        "sweep_campaign/cells                     {cells:>14} \
         ({} intervals retained by the collect arm)",
        collect.retained_records
    );
    println!(
        "sweep_campaign/collect_retained_bytes    {:>14}",
        collect.retained_bytes
    );
    println!(
        "sweep_campaign/streaming_retained_bytes  {:>14}",
        streaming.retained_bytes
    );
    println!(
        "sweep_campaign/retention_ratio           {ratio:>14.2}x \
         (acceptance floor: >= {RETENTION_FLOOR}x)"
    );
    println!("sweep_campaign/collect_wall              {collect_ms:>14.2} ms");
    println!("sweep_campaign/streaming_wall            {streaming_ms:>14.2} ms");

    if !test_mode {
        write_bench_json(
            cells,
            collect.retained_bytes,
            streaming.retained_bytes,
            ratio,
            collect_ms,
            streaming_ms,
        );
        assert!(
            ratio >= RETENTION_FLOOR,
            "streaming retention regressed to {ratio:.2}x below the collect \
             arm (floor: {RETENTION_FLOOR}x)"
        );
    }
    // Keep the summaries alive past the measurement so the retained-bytes
    // accounting reflects live data.
    let mean_power: f64 = streaming
        .reports
        .iter()
        .filter_map(|r| r.as_ref().ok())
        .map(|r| r.summary.mean_platform_power_w)
        .sum::<f64>()
        / cells as f64;
    assert!(mean_power.is_finite());
    let _ = std::mem::size_of::<RunSummary>();
}

/// Records the measured numbers for tracking (`BENCH_sweep_campaign.json`).
fn write_bench_json(
    cells: usize,
    collect_bytes: usize,
    streaming_bytes: usize,
    ratio: f64,
    collect_ms: f64,
    streaming_ms: f64,
) {
    let json = format!(
        "{{\n  \"bench\": \"sweep_campaign\",\n  \"cells\": {cells},\n  \
         \"lanes\": {LANES},\n  \
         \"max_duration_s\": {FULL_DURATION_S},\n  \
         \"collect_retained_bytes\": {collect_bytes},\n  \
         \"streaming_retained_bytes\": {streaming_bytes},\n  \
         \"retention_ratio\": {ratio:.3},\n  \
         \"collect_wall_ms\": {collect_ms:.2},\n  \
         \"streaming_wall_ms\": {streaming_ms:.2},\n  \
         \"floor\": {RETENTION_FLOOR}\n}}\n"
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_sweep_campaign.json"
    );
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("warning: could not write {path}: {e}");
    }
}

//! Criterion benchmarks for thermal modelling and system identification
//! (Chapter 4.2 / Figures 4.8–4.10): plant integration, PRBS generation,
//! least-squares identification and n-step prediction.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use numeric::Vector;
use std::hint::black_box;
use sysid::{identify, IdentificationDataset, IdentificationOptions, PrbsConfig, PrbsSignal};
use thermal_model::{DiscreteThermalModel, ExynosThermalNetwork};

fn example_model() -> DiscreteThermalModel {
    let a = numeric::Matrix::from_rows(&[
        &[0.71, 0.09, 0.09, 0.09],
        &[0.09, 0.71, 0.09, 0.09],
        &[0.09, 0.09, 0.71, 0.09],
        &[0.09, 0.09, 0.09, 0.71],
    ])
    .unwrap();
    let b = numeric::Matrix::from_rows(&[
        &[0.26, 0.10, 0.16, 0.06],
        &[0.24, 0.12, 0.10, 0.06],
        &[0.26, 0.10, 0.16, 0.06],
        &[0.24, 0.12, 0.10, 0.06],
    ])
    .unwrap();
    DiscreteThermalModel::new(a, b, 0.1).unwrap()
}

fn identification_dataset(samples: usize) -> IdentificationDataset {
    let truth = example_model();
    let mut dataset = IdentificationDataset::new(4, 4, 0.1, 28.0).unwrap();
    let mut t = Vector::zeros(4);
    for k in 0..samples {
        let p = Vector::from_iter((0..4).map(|u| {
            if (k / (8 + 5 * u)) % 2 == 0 {
                0.3
            } else {
                2.0 + u as f64 * 0.4
            }
        }));
        dataset
            .push(Vector::from_iter(t.iter().map(|x| x + 28.0)), p.clone())
            .unwrap();
        t = truth.step(&t, &p).unwrap();
    }
    dataset
}

fn bench_plant_step(c: &mut Criterion) {
    let plant = ExynosThermalNetwork::odroid_xu_e();
    let network = plant.network();
    let temps = vec![50.0; network.node_count()];
    let powers = plant.power_vector(&[0.9, 0.8, 0.85, 0.9], 0.05, 0.3, 0.45);
    c.bench_function("plant/rk4_step_8_nodes", |b| {
        b.iter(|| {
            black_box(
                network
                    .step(black_box(&temps), black_box(&powers), 28.0, 0.01)
                    .unwrap(),
            )
        })
    });
}

fn bench_prbs_generation(c: &mut Criterion) {
    c.bench_function("fig4_8/prbs_generation_10500_intervals", |b| {
        b.iter(|| black_box(PrbsSignal::generate(PrbsConfig::default(), 10_500).unwrap()))
    });
}

fn bench_identification(c: &mut Criterion) {
    let dataset = identification_dataset(7000);
    c.bench_function("sysid/least_squares_identification_7000_samples", |b| {
        b.iter(|| black_box(identify(&dataset, &IdentificationOptions::default()).unwrap()))
    });
}

fn bench_n_step_prediction(c: &mut Criterion) {
    let model = example_model();
    let temps = Vector::from_slice(&[30.0, 31.0, 29.5, 30.5]);
    let powers = Vector::from_slice(&[3.0, 0.05, 0.3, 0.45]);
    c.bench_function("fig4_10/ten_step_prediction", |b| {
        b.iter(|| black_box(model.predict_constant_power(&temps, &powers, 10).unwrap()))
    });
    c.bench_function("fig4_10/horizon_matrices_10_steps", |b| {
        b.iter_batched(
            || model.clone(),
            |m| black_box(m.horizon_matrices(10).unwrap()),
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    bench_plant_step,
    bench_prbs_generation,
    bench_identification,
    bench_n_step_prediction
);
criterion_main!(benches);

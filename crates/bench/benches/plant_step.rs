//! Criterion benchmark for the plant-integrator hot path.
//!
//! Measures `PhysicalPlant::step_interval` (the zero-allocation scratch-buffer
//! engine) against the checked-in naive baseline
//! (`platform_sim::NaivePhysicalPlant`, the original allocation-heavy loop:
//! network clone per interval, `Vec`s per micro-step). Besides the per-case
//! criterion numbers it prints integrator micro-steps per second for both
//! engines and the resulting speedup — the repo's acceptance bar is ≥5×.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Instant;

use platform_sim::{NaivePhysicalPlant, PhysicalPlant, PlantPowerParams};
use soc_model::{FanLevel, PlatformState, SocSpec};
use workload::Demand;

const CONTROL_PERIOD_S: f64 = 0.1;
/// Micro-steps per control interval (plant integrates at dt = 10 ms).
const MICRO_STEPS_PER_INTERVAL: f64 = 10.0;

fn busy_demand() -> Demand {
    Demand {
        cpu_streams: 3.5,
        activity_factor: 0.9,
        gpu_utilization: 0.4,
        memory_intensity: 0.5,
        frequency_scalability: 0.9,
    }
}

fn bench_step_interval(c: &mut Criterion) {
    let spec = SocSpec::odroid_xu_e();
    let demand = busy_demand();
    let state = PlatformState::default_for(&spec);

    let mut group = c.benchmark_group("plant_step/step_interval_100ms");
    let mut optimized = PhysicalPlant::new(spec.clone(), PlantPowerParams::default());
    group.bench_function("optimized", |b| {
        b.iter(|| {
            black_box(
                optimized
                    .step_interval(
                        black_box(&state),
                        black_box(&demand),
                        FanLevel::Half,
                        28.0,
                        CONTROL_PERIOD_S,
                    )
                    .unwrap(),
            )
        })
    });
    let mut naive = NaivePhysicalPlant::new(spec.clone(), PlantPowerParams::default());
    group.bench_function("naive_baseline", |b| {
        b.iter(|| {
            black_box(
                naive
                    .step_interval(
                        black_box(&state),
                        black_box(&demand),
                        FanLevel::Half,
                        28.0,
                        CONTROL_PERIOD_S,
                    )
                    .unwrap(),
            )
        })
    });
    group.finish();

    report_steps_per_second(&spec, &state, &demand);
}

/// Times both engines over the same simulated horizon and prints
/// micro-steps/sec plus the speedup factor.
fn report_steps_per_second(spec: &SocSpec, state: &PlatformState, demand: &Demand) {
    let test_mode = std::env::args().any(|a| a == "--test");
    let intervals: usize = if test_mode { 50 } else { 10_000 };
    let passes: usize = if test_mode { 1 } else { 3 };

    // Best-of-N wall-clock per engine: the minimum is the least-interference
    // estimate on a shared machine (the simulated trajectory is identical in
    // every pass).
    let mut optimized = PhysicalPlant::new(spec.clone(), PlantPowerParams::default());
    let mut optimized_elapsed = std::time::Duration::MAX;
    for _ in 0..passes {
        let start = Instant::now();
        for _ in 0..intervals {
            black_box(
                optimized
                    .step_interval(state, demand, FanLevel::Half, 28.0, CONTROL_PERIOD_S)
                    .unwrap(),
            );
        }
        optimized_elapsed = optimized_elapsed.min(start.elapsed());
    }

    let mut naive = NaivePhysicalPlant::new(spec.clone(), PlantPowerParams::default());
    let mut naive_elapsed = std::time::Duration::MAX;
    for _ in 0..passes {
        let start = Instant::now();
        for _ in 0..intervals {
            black_box(
                naive
                    .step_interval(state, demand, FanLevel::Half, 28.0, CONTROL_PERIOD_S)
                    .unwrap(),
            );
        }
        naive_elapsed = naive_elapsed.min(start.elapsed());
    }

    let micro_steps = intervals as f64 * MICRO_STEPS_PER_INTERVAL;
    let optimized_sps = micro_steps / optimized_elapsed.as_secs_f64();
    let naive_sps = micro_steps / naive_elapsed.as_secs_f64();
    let speedup = optimized_sps / naive_sps;
    println!("plant_step/steps_per_sec/optimized       {optimized_sps:>14.0} steps/s");
    println!("plant_step/steps_per_sec/naive_baseline  {naive_sps:>14.0} steps/s");
    println!("plant_step/speedup_vs_naive              {speedup:>14.2}x (acceptance bar: >= 5x)");
    // Regression guard: the acceptance bar is >= 5x (measured best-of-3 on a
    // quiet machine); assert a conservative 3x floor so a real hot-path
    // regression fails the bench without noise on shared vCPUs causing
    // flakes. The --test smoke run is too short to measure meaningfully.
    if !test_mode {
        assert!(
            speedup >= 3.0,
            "optimized plant regressed to {speedup:.2}x over the naive baseline (floor: 3x, target: 5x)"
        );
    }

    // Cross-check the two engines while we have them side by side.
    let optimized_temps = optimized.core_temps_c();
    let naive_temps = naive.core_temps_c();
    for (a, b) in optimized_temps.iter().zip(naive_temps.iter()) {
        assert!(
            (a - b).abs() < 1e-6,
            "engines diverged: optimized {optimized_temps:?} vs naive {naive_temps:?}"
        );
    }
}

criterion_group!(benches, bench_step_interval);
criterion_main!(benches);

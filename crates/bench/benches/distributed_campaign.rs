//! Wall-clock benchmarks for distributed campaign execution.
//!
//! Two acceptance bars, both asserted on the full (non `--test`) run:
//!
//! * **Straggler-proofing** (floor ≥ [`SPEEDUP_FLOOR`]): micro-shard
//!   leasing versus static [`ShardSpec::split`] when one of two workers is
//!   a straggler. The grid is ragged twice over — DTPM cells cost more
//!   wall time per simulated second than Reactive ones (kind-major order
//!   hands `split(2)` all the expensive cells in shard 0), and one DTPM
//!   cell panics late and is retried under the resilience policy — and on
//!   top of that worker 0 stalls for [`STRAGGLER_STALL`] before its first
//!   delivery. Under a static split the stalled worker's whole shard
//!   convoys behind the stall; under leasing the coordinator re-leases the
//!   silent worker's micro-shard after [`LEASE_TIMEOUT`] and the healthy
//!   worker absorbs it, so the damage is bounded by the timeout instead of
//!   the stall. Stalls sleep rather than burn CPU, so the gap measures the
//!   scheduling difference honestly on any core count.
//! * **Dispatch overhead** (ceiling ≤ [`OVERHEAD_CEILING`]): coordinator +
//!   one healthy local worker (binary frames over an in-process pipe,
//!   per-cell outcome transport, heartbeats) versus the plain in-process
//!   [`platform_sim::CampaignRunner`] at the same thread count on the same
//!   grid.
//!
//! The leasing arms must fold the **bit-identical** aggregate of the
//! in-process run (compared by wire encoding, where every float is a bit
//! pattern) — the tax and the speed-up are both pure wall clock. Worker
//! calibration re-derivation happens during the untimed handshake, exactly
//! as a long campaign would amortise it. Measured numbers land in
//! `BENCH_distributed_campaign.json`.

use std::time::{Duration, Instant};

use platform_sim::distributed::{
    serve, serve_with, MemoryTransport, Transport, WorkerChaos, WorkerOptions,
};
use platform_sim::{
    Calibration, CalibrationCampaign, ChaosPlan, Coordinator, DtpmVariant, ExperimentKind,
    MergeSink, ResiliencePolicy, ShardSpec, SweepSpec,
};
use workload::BenchmarkId;

/// Simulated duration cap per cell, seconds (full run). Long enough that
/// per-cell compute dominates per-lease latency.
const FULL_DURATION_S: f64 = 300.0;
/// Workers / static shards in the straggler arm.
const WORKERS: usize = 2;
/// Cells per micro-shard lease.
const LEASE_CELLS: usize = 2;
/// How long the straggling worker goes silent.
const STRAGGLER_STALL: Duration = Duration::from_millis(400);
/// Missed-heartbeat deadline in the straggler arm: the bound leasing puts
/// on the stall's damage.
const LEASE_TIMEOUT: Duration = Duration::from_millis(100);
/// Threads per side in the overhead arm.
const OVERHEAD_THREADS: usize = 2;
/// Lease size in the overhead arm: half the grid per lease, so the tax
/// measured is the frame/heartbeat/outcome transport, not scheduler
/// round-trip latency (arm (a) covers micro-shard scheduling).
const OVERHEAD_LEASE_CELLS: usize = 12;
/// Retry budget covering the injected panicking cell.
const MAX_RETRIES: u32 = 2;
/// Acceptance floor: static-split wall over leased wall with a straggler.
const SPEEDUP_FLOOR: f64 = 1.3;
/// Acceptance ceiling: distributed wall over in-process wall, equal threads.
const OVERHEAD_CEILING: f64 = 1.15;

/// The ragged grid: kind-major order puts all DTPM cells (a predictive
/// optimisation every control interval — expensive) in the first half and
/// all Reactive cells (a threshold check — cheap) in the second, so
/// `split(2)` hands shard 0 all the expensive cells. One DTPM cell panics
/// late in its first attempt and heals on retry, so its true cost is
/// roughly doubled in a way no static partitioner can predict. The same
/// spec (chaos plan included — it travels in the shard codec) runs on
/// every arm; only the topology differs.
fn campaign(test_mode: bool) -> SweepSpec {
    let (benchmarks, ambients, replicates, duration_s, panic_at) = if test_mode {
        (vec![BenchmarkId::Crc32], vec![28.0], 2, 1.0, 3)
    } else {
        (
            vec![
                BenchmarkId::Templerun,
                BenchmarkId::Crc32,
                BenchmarkId::Qsort,
            ],
            vec![26.0, 32.0],
            2,
            FULL_DURATION_S,
            // Late enough to waste most of a first attempt, early enough
            // that even the shortest DTPM cell (~865 intervals) reaches it.
            700,
        )
    };
    SweepSpec::new(
        vec![ExperimentKind::Dtpm, ExperimentKind::Reactive],
        benchmarks,
    )
    .with_ambients_c(ambients)
    .with_dtpm_variants(vec![DtpmVariant {
        horizon_steps: 80,
        constraint_c: 60.0,
    }])
    .with_replicates(replicates)
    .with_campaign_seed(0xD157_CA4D)
    .with_max_duration_s(duration_s)
    .with_ideal_sensors(true)
    .with_cell_chaos(
        if test_mode { 1 } else { 4 },
        ChaosPlan::panic_at(panic_at).healing_after(1),
    )
}

fn resilience() -> ResiliencePolicy {
    ResiliencePolicy::default().with_max_retries(MAX_RETRIES)
}

/// The calibration recipe both sides share: the coordinator ships it to
/// workers, the in-process arms run it directly.
fn calibration_campaign() -> CalibrationCampaign {
    CalibrationCampaign {
        prbs_duration_s: 120.0,
        run_furnace: false,
        ..CalibrationCampaign::default()
    }
}

const CALIBRATION_SEED: u64 = 41;

/// Static sharding with a straggler: `split(WORKERS)`, one OS thread per
/// shard (each single-threaded, like one remote worker), and the thread
/// holding shard 0 stalled for `stall` before it starts — a statically
/// assigned shard has nowhere else to go, so the campaign eats the whole
/// delay. Deterministic merge at the end.
fn run_static_split(
    spec: &SweepSpec,
    calibration: &Calibration,
    stall: Duration,
) -> (Duration, platform_sim::CampaignAggregate) {
    let shards = ShardSpec::split(spec, WORKERS);
    let start = Instant::now();
    let sinks: Vec<MergeSink> = std::thread::scope(|scope| {
        let handles: Vec<_> = shards
            .iter()
            .enumerate()
            .map(|(which, shard)| {
                scope.spawn(move || {
                    if which == 0 {
                        std::thread::sleep(stall);
                    }
                    shard
                        .runner()
                        .with_threads(1)
                        .with_resilience(resilience())
                        .run(calibration)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shard"))
            .collect()
    });
    let merged = MergeSink::merge_all(sinks).expect("shards must merge");
    (start.elapsed(), merged)
}

/// Leased execution over in-process worker threads speaking the real
/// binary protocol over memory pipes; worker 0 gets `chaos` (the straggler
/// arm stalls it). The handshake (including worker calibration) is
/// untimed; the timer covers leasing through completion.
fn run_leased(
    spec: &SweepSpec,
    workers: usize,
    threads_per_worker: usize,
    lease_cells: usize,
    lease_timeout: Duration,
    chaos: WorkerChaos,
) -> (Duration, MergeSink) {
    let mut transports: Vec<Box<dyn Transport>> = Vec::new();
    let mut serving = Vec::new();
    for which in 0..workers {
        let (coordinator_end, worker_end) = MemoryTransport::pair();
        transports.push(Box::new(coordinator_end));
        serving.push(std::thread::spawn(move || {
            if which == 0 {
                serve_with(Box::new(worker_end), WorkerOptions { chaos })
            } else {
                serve(Box::new(worker_end))
            }
        }));
    }
    let pool = Coordinator::new(spec.clone())
        .with_calibration(calibration_campaign(), CALIBRATION_SEED)
        .with_lease_cells(lease_cells)
        .with_lease_timeout(lease_timeout)
        .with_worker_threads(threads_per_worker)
        .with_resilience(resilience())
        .connect(transports)
        .expect("handshake must succeed");
    let start = Instant::now();
    let report = pool.run().expect("campaign must complete");
    let wall = start.elapsed();
    for worker in serving {
        worker
            .join()
            .expect("worker thread must not panic")
            .expect("worker must exit cleanly");
    }
    (wall, report.into_fold())
}

/// Plain in-process run at the overhead arm's thread count.
fn run_in_process(spec: &SweepSpec, calibration: &Calibration) -> (Duration, MergeSink) {
    let mut sink = MergeSink::new(0..spec.cells());
    let start = Instant::now();
    spec.runner()
        .with_threads(OVERHEAD_THREADS)
        .with_resilience(resilience())
        .run_into(calibration, &mut sink);
    (start.elapsed(), sink)
}

/// The injected chaos panics are caught and retried by the resilience
/// machinery; with `RUST_BACKTRACE` set their default-hook backtrace
/// symbolisation is slow enough to pollute the timings, so silence exactly
/// those panics and leave every other one loud.
fn silence_chaos_panics() {
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let message = info
            .payload()
            .downcast_ref::<String>()
            .map(String::as_str)
            .unwrap_or_default();
        if !message.contains("chaos plan") {
            default_hook(info);
        }
    }));
}

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");
    silence_chaos_panics();
    let spec = campaign(test_mode);
    let cells = spec.cells();
    let stall = if test_mode {
        Duration::from_millis(60)
    } else {
        STRAGGLER_STALL
    };
    let timeout = if test_mode {
        Duration::from_millis(20)
    } else {
        LEASE_TIMEOUT
    };
    let straggler = WorkerChaos {
        stall_after_cells: Some(0),
        stall_for: stall,
        ..WorkerChaos::default()
    };

    let calibration = calibration_campaign()
        .run(CALIBRATION_SEED)
        .expect("calibration campaign must succeed");

    // Straggler arm: interleaved best-of-two per scheduler.
    let (static_a, static_fold) = run_static_split(&spec, &calibration, stall);
    let (leased_a, leased_fold) = run_leased(&spec, WORKERS, 1, LEASE_CELLS, timeout, straggler);
    let (leased_b, _) = run_leased(&spec, WORKERS, 1, LEASE_CELLS, timeout, straggler);
    let (static_b, _) = run_static_split(&spec, &calibration, stall);
    let static_wall = static_a.min(static_b);
    let leased_wall = leased_a.min(leased_b);

    // Overhead arm: one healthy worker at OVERHEAD_THREADS vs in-process at
    // the same thread count.
    let healthy = WorkerChaos::default();
    let long = Duration::from_secs(120);
    let (inproc_a, inproc_fold) = run_in_process(&spec, &calibration);
    let (dist_a, dist_fold) = run_leased(
        &spec,
        1,
        OVERHEAD_THREADS,
        OVERHEAD_LEASE_CELLS,
        long,
        healthy,
    );
    let (dist_b, _) = run_leased(
        &spec,
        1,
        OVERHEAD_THREADS,
        OVERHEAD_LEASE_CELLS,
        long,
        healthy,
    );
    let (inproc_b, _) = run_in_process(&spec, &calibration);
    let inproc_wall = inproc_a.min(inproc_b);
    let dist_wall = dist_a.min(dist_b);

    // The leasing paths fold in canonical order and must reproduce the
    // in-process bits exactly (every float compared as a bit pattern via
    // the wire encoding) — stalls, re-leases and deduped duplicates
    // included. The static baseline combines shard aggregates through the
    // Chan–Welford merge — deterministic, but a different floating-point
    // association — so it gets exact integer fields and a tight tolerance
    // on the float totals instead.
    assert!(leased_fold.is_complete());
    assert!(inproc_fold.is_complete() && dist_fold.is_complete());
    let reference = inproc_fold.encode();
    assert_eq!(leased_fold.encode(), reference, "leased fold diverged");
    assert_eq!(dist_fold.encode(), reference, "distributed fold diverged");
    let inproc_agg = inproc_fold.aggregate();
    assert_eq!(inproc_agg.cells, cells);
    assert_eq!(static_fold.cells, inproc_agg.cells, "static cell count");
    assert_eq!(static_fold.completed_runs, inproc_agg.completed_runs);
    assert_eq!(static_fold.failed_cells, inproc_agg.failed_cells);
    assert_eq!(static_fold.total_intervals, inproc_agg.total_intervals);
    let energy_gap = (static_fold.total_energy_j - inproc_agg.total_energy_j).abs();
    assert!(
        energy_gap <= 1e-9 * inproc_agg.total_energy_j.abs(),
        "static energy total diverged by {energy_gap}"
    );

    let static_ms = static_wall.as_secs_f64() * 1e3;
    let leased_ms = leased_wall.as_secs_f64() * 1e3;
    let speedup = static_ms / leased_ms;
    let inproc_ms = inproc_wall.as_secs_f64() * 1e3;
    let dist_ms = dist_wall.as_secs_f64() * 1e3;
    let overhead = dist_ms / inproc_ms;

    println!("distributed_campaign/cells              {cells:>14}");
    println!("distributed_campaign/workers            {WORKERS:>14}");
    println!("distributed_campaign/lease_cells        {LEASE_CELLS:>14}");
    println!(
        "distributed_campaign/straggler_stall    {:>14.0} ms",
        stall.as_secs_f64() * 1e3
    );
    println!(
        "distributed_campaign/lease_timeout      {:>14.0} ms",
        timeout.as_secs_f64() * 1e3
    );
    println!("distributed_campaign/static_split_wall  {static_ms:>14.2} ms");
    println!("distributed_campaign/leased_wall        {leased_ms:>14.2} ms");
    println!(
        "distributed_campaign/lease_speedup      {speedup:>14.3}x \
         (acceptance floor: >= {SPEEDUP_FLOOR}x)"
    );
    println!("distributed_campaign/in_process_wall    {inproc_ms:>14.2} ms");
    println!("distributed_campaign/distributed_wall   {dist_ms:>14.2} ms");
    println!(
        "distributed_campaign/dispatch_overhead  {overhead:>14.3}x \
         (acceptance ceiling: <= {OVERHEAD_CEILING}x)"
    );

    if !test_mode {
        write_bench_json(
            cells, static_ms, leased_ms, speedup, inproc_ms, dist_ms, overhead,
        );
        assert!(
            speedup >= SPEEDUP_FLOOR,
            "lease speedup fell to {speedup:.3}x (floor: {SPEEDUP_FLOOR}x)"
        );
        assert!(
            overhead <= OVERHEAD_CEILING,
            "dispatch overhead regressed to {overhead:.3}x \
             (ceiling: {OVERHEAD_CEILING}x)"
        );
    }
}

/// Records the measured numbers for tracking
/// (`BENCH_distributed_campaign.json`).
fn write_bench_json(
    cells: usize,
    static_ms: f64,
    leased_ms: f64,
    speedup: f64,
    inproc_ms: f64,
    dist_ms: f64,
    overhead: f64,
) {
    let stall_ms = STRAGGLER_STALL.as_secs_f64() * 1e3;
    let timeout_ms = LEASE_TIMEOUT.as_secs_f64() * 1e3;
    let json = format!(
        "{{\n  \"bench\": \"distributed_campaign\",\n  \"cells\": {cells},\n  \
         \"workers\": {WORKERS},\n  \
         \"lease_cells\": {LEASE_CELLS},\n  \
         \"max_duration_s\": {FULL_DURATION_S},\n  \
         \"straggler_stall_ms\": {stall_ms:.0},\n  \
         \"lease_timeout_ms\": {timeout_ms:.0},\n  \
         \"static_split_wall_ms\": {static_ms:.2},\n  \
         \"leased_wall_ms\": {leased_ms:.2},\n  \
         \"lease_speedup\": {speedup:.3},\n  \
         \"speedup_floor\": {SPEEDUP_FLOOR},\n  \
         \"overhead_threads\": {OVERHEAD_THREADS},\n  \
         \"in_process_wall_ms\": {inproc_ms:.2},\n  \
         \"distributed_wall_ms\": {dist_ms:.2},\n  \
         \"dispatch_overhead\": {overhead:.3},\n  \
         \"overhead_ceiling\": {OVERHEAD_CEILING}\n}}\n"
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_distributed_campaign.json"
    );
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("warning: could not write {path}: {e}");
    }
}

//! Criterion benchmark of the DTPM decision overhead.
//!
//! The paper stresses that the models and the algorithm run inside the kernel
//! every 100 ms with "no noticeable change in power and performance"; this
//! bench verifies that one `decide()` call (prediction + budget + frequency
//! scan) is far below the control interval.

use criterion::{criterion_group, criterion_main, Criterion};
use dtpm::{DtpmConfig, DtpmInputs, DtpmPolicy, PowerBudget, ThermalPredictor};
use numeric::Matrix;
use power_model::{DomainPower, PowerModel};
use soc_model::{Frequency, PlatformState, PowerDomain, SocSpec, Voltage};
use std::hint::black_box;
use thermal_model::DiscreteThermalModel;

fn predictor() -> ThermalPredictor {
    let a = Matrix::from_rows(&[
        &[0.71, 0.09, 0.09, 0.09],
        &[0.09, 0.71, 0.09, 0.09],
        &[0.09, 0.09, 0.71, 0.09],
        &[0.09, 0.09, 0.09, 0.71],
    ])
    .unwrap();
    let b = Matrix::from_rows(&[
        &[0.26, 0.10, 0.16, 0.06],
        &[0.24, 0.12, 0.10, 0.06],
        &[0.26, 0.10, 0.16, 0.06],
        &[0.24, 0.12, 0.10, 0.06],
    ])
    .unwrap();
    ThermalPredictor::new(DiscreteThermalModel::new(a, b, 0.1).unwrap(), 28.0).unwrap()
}

fn trained_power_model() -> PowerModel {
    let mut model = PowerModel::exynos5410_defaults();
    let v = Voltage::from_volts(1.2);
    let f = Frequency::from_mhz(1600);
    for _ in 0..10 {
        model.observe(PowerDomain::BigCpu, 3.8, 60.0, v, f);
    }
    model
}

fn bench_decision(c: &mut Criterion) {
    let spec = SocSpec::odroid_xu_e();
    let model = trained_power_model();
    let mut group = c.benchmark_group("dtpm_policy/decide");
    for (label, temps) in [
        ("affirm_cool_system", [45.0f64; 4]),
        ("cap_frequency_near_constraint", [61.0, 60.5, 61.5, 60.8]),
        ("last_resort_above_constraint", [66.0, 65.8, 66.1, 65.9]),
    ] {
        group.bench_function(label, |b| {
            let policy = DtpmPolicy::new(DtpmConfig::default(), predictor()).unwrap();
            b.iter(|| {
                let decision = policy
                    .decide(
                        &DtpmInputs {
                            spec: &spec,
                            proposed: PlatformState::default_for(&spec),
                            core_temps_c: temps,
                            measured_power: DomainPower::new(3.9, 0.04, 0.15, 0.4),
                        },
                        &model,
                    )
                    .unwrap();
                black_box(decision.predicted_peak_c)
            })
        });
    }
    group.finish();
}

fn bench_budget_computation(c: &mut Criterion) {
    let predictor = predictor();
    c.bench_function("dtpm_policy/power_budget_eq_5_4_to_5_6", |b| {
        b.iter(|| {
            black_box(
                PowerBudget::compute(
                    &predictor,
                    black_box([60.0, 59.5, 60.5, 59.8]),
                    &DomainPower::new(0.0, 0.05, 0.2, 0.4),
                    PowerDomain::BigCpu,
                    62.5,
                    10,
                    0.2,
                )
                .unwrap(),
            )
        })
    });
}

criterion_group!(benches, bench_decision, bench_budget_computation);
criterion_main!(benches);

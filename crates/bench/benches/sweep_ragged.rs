//! Wall-clock benchmark for the lane-compacting sweep scheduler on a ragged
//! scenario mix.
//!
//! The workload is the static scheduler's worst case: tiles of one *long*
//! scenario packed with short ones (benchmark-major sweep order). Static
//! tiling — the pre-compaction `ScenarioSweep` behaviour, reproduced here as
//! sequential [`run_lockstep`] calls over consecutive lane-groups — keeps
//! every tile alive until its long pole completes, stepping the finished
//! short lanes as frozen ballast the whole time. The compacting scheduler
//! retires finished lanes and admits queued scenarios into them, so the
//! engine's lanes stay filled with *live* work and the sweep's wall clock
//! approaches `total work / lanes` instead of `Σ per-tile longest`.
//!
//! Run with a single worker thread so the measured ratio is pure scheduling
//! efficiency (lane-intervals of ballast avoided), not thread-pool jitter.
//! The acceptance bar is ≥ 1.3× over static tiling, asserted as a floor in
//! the full (non `--test`) run; measured numbers land in
//! `BENCH_sweep_ragged.json`.

use std::time::{Duration, Instant};

use platform_sim::{
    run_lockstep, Calibration, CalibrationCampaign, ExperimentConfig, ExperimentKind,
    ScenarioSweep, SimError, SimulationResult,
};
use workload::BenchmarkId;

/// Lanes per engine (batch width) for both schedulers.
const LANES: usize = 4;
/// Number of [1 long + (LANES-1) short] tiles in the mix.
const TILES: usize = 4;
/// Simulated duration of a short scenario in the full run, seconds.
const SHORT_S: f64 = 4.0;
/// Simulated duration of a long scenario in the full run, seconds.
const LONG_S: f64 = 40.0;
/// Acceptance floor: compacting over static tiling on this mix.
const SPEEDUP_FLOOR: f64 = 1.3;

/// The ragged mix: every `LANES`-th scenario is long, so each static tile of
/// consecutive scenarios carries exactly one long pole.
fn ragged_configs(short_s: f64, long_s: f64) -> Vec<ExperimentConfig> {
    (0..TILES * LANES)
        .map(|i| {
            let mut config =
                ExperimentConfig::new(ExperimentKind::WithoutFan, BenchmarkId::MatrixMult)
                    .with_seed(900 + i as u64);
            config.max_duration_s = if i % LANES == 0 { long_s } else { short_s };
            config
        })
        .collect()
}

/// The pre-compaction scheduler: consecutive static tiles of `LANES`
/// scenarios, each batch alive until its slowest member completes.
fn run_static(
    configs: &[ExperimentConfig],
    calibration: &Calibration,
) -> Vec<Result<SimulationResult, SimError>> {
    let mut results = Vec::with_capacity(configs.len());
    for tile in configs.chunks(LANES) {
        results.extend(run_lockstep(tile, calibration));
    }
    results
}

/// Best-of-N wall clock (the minimum is the least-interference estimate on a
/// shared machine; the simulated trajectories are identical in every pass).
fn best_of<F: FnMut() -> Vec<Result<SimulationResult, SimError>>>(
    passes: usize,
    mut run: F,
) -> (Duration, Vec<Result<SimulationResult, SimError>>) {
    let mut best = Duration::MAX;
    let mut results = Vec::new();
    for _ in 0..passes {
        let start = Instant::now();
        let r = run();
        let elapsed = start.elapsed();
        if elapsed < best {
            best = elapsed;
        }
        results = r;
    }
    (best, results)
}

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");
    let (short_s, long_s) = if test_mode {
        (1.0, 4.0)
    } else {
        (SHORT_S, LONG_S)
    };
    let passes = if test_mode { 1 } else { 5 };

    let calibration = CalibrationCampaign {
        prbs_duration_s: 120.0,
        run_furnace: false,
        ..CalibrationCampaign::default()
    }
    .run(31)
    .expect("calibration campaign must succeed");
    let configs = ragged_configs(short_s, long_s);

    let (static_wall, static_results) = best_of(passes, || run_static(&configs, &calibration));
    let sweep = ScenarioSweep::new(configs.clone())
        .with_threads(1)
        .with_lanes(LANES);
    let (compact_wall, compact_results) = best_of(passes, || sweep.run(&calibration));

    // Cross-check the schedulers while we have them side by side: lane
    // recycling must be invisible in the results.
    assert_eq!(static_results.len(), compact_results.len());
    for (slot, (a, b)) in static_results.iter().zip(&compact_results).enumerate() {
        let a = a.as_ref().expect("static run succeeds");
        let b = b.as_ref().expect("compacting run succeeds");
        assert_eq!(a.config, b.config, "slot {slot} out of order");
        assert_eq!(
            a.execution_time_s, b.execution_time_s,
            "slot {slot} execution time diverged"
        );
        assert_eq!(a.trace.len(), b.trace.len(), "slot {slot} trace diverged");
        assert!(
            (a.energy_j - b.energy_j).abs() <= 1e-6 * a.energy_j.abs().max(1.0),
            "slot {slot} energy diverged: {} vs {}",
            a.energy_j,
            b.energy_j
        );
    }

    let static_ms = static_wall.as_secs_f64() * 1e3;
    let compact_ms = compact_wall.as_secs_f64() * 1e3;
    let speedup = static_ms / compact_ms;
    println!(
        "sweep_ragged/static_tiling_wall          {static_ms:>14.2} ms \
         ({TILES} tiles x {LANES} lanes)"
    );
    println!("sweep_ragged/compacting_wall             {compact_ms:>14.2} ms");
    println!(
        "sweep_ragged/speedup_vs_static           {speedup:>14.2}x \
         (acceptance floor: >= {SPEEDUP_FLOOR}x)"
    );

    if !test_mode {
        write_bench_json(static_ms, compact_ms, speedup);
        // Regression guard: asserted only on the full run — the --test smoke
        // run is too short to measure meaningfully.
        assert!(
            speedup >= SPEEDUP_FLOOR,
            "lane compaction regressed to {speedup:.2}x over static tiling \
             (floor: {SPEEDUP_FLOOR}x)"
        );
    }
}

/// Records the measured numbers for tracking (`BENCH_sweep_ragged.json`).
fn write_bench_json(static_ms: f64, compact_ms: f64, speedup: f64) {
    let json = format!(
        "{{\n  \"bench\": \"sweep_ragged\",\n  \"lanes\": {LANES},\n  \
         \"tiles\": {TILES},\n  \
         \"short_s\": {SHORT_S},\n  \
         \"long_s\": {LONG_S},\n  \
         \"static_tiling_wall_ms\": {static_ms:.2},\n  \
         \"compacting_wall_ms\": {compact_ms:.2},\n  \
         \"speedup_vs_static\": {speedup:.3},\n  \
         \"floor\": {SPEEDUP_FLOOR}\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sweep_ragged.json");
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("warning: could not write {path}: {e}");
    }
}

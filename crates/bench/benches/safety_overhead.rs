//! Wall-clock overhead of the armed safety stack on the fault-free hot path.
//!
//! The safety ladder and sensor-health monitor run inside every control
//! interval of every lane — screening nine channels, updating staleness
//! bookkeeping, and comparing the hot-spot temperature against the ladder
//! rungs. Their contract is that a healthy run pays (almost) nothing for
//! them: the trajectories are bit-identical with the stack disabled, and the
//! wall-clock cost must stay under 2 % of the sweep.
//!
//! Both arms run the same lockstep DTPM sweep through the real executor
//! (batched plant + batched decide), differing only in the safety
//! configuration: **disabled** (pre-robustness hot path) vs **armed** (the
//! default ladder + health monitor). Passes are interleaved best-of-N so the
//! two arms see the same thermal/cache conditions; the overhead ceiling is
//! asserted in the full (non `--test`) run and the measured numbers land in
//! `BENCH_safety_overhead.json`.

use std::time::{Duration, Instant};

use platform_sim::{
    run_lockstep, CalibrationCampaign, ExperimentConfig, ExperimentKind, SafetyConfig,
};
use workload::BenchmarkId;

/// Scenario lanes advanced per instruction stream (the sweep batch width).
const LANES: usize = 8;
/// Control period, seconds (10 ms: ten times the paper's rate, so each timed
/// sweep spans thousands of intervals and timer noise stays well below the
/// overhead being measured).
const CONTROL_PERIOD_S: f64 = 0.01;
/// Acceptance ceiling: armed-over-disabled wall-clock overhead, percent.
const OVERHEAD_CEILING_PCT: f64 = 2.0;

fn configs(safety: SafetyConfig, duration_s: f64) -> Vec<ExperimentConfig> {
    (0..LANES)
        .map(|i| {
            let mut config = ExperimentConfig::new(ExperimentKind::Dtpm, BenchmarkId::MatrixMult)
                .with_seed(4_400 + i as u64)
                .with_safety(safety);
            config.control_period_s = CONTROL_PERIOD_S;
            config.max_duration_s = duration_s;
            config
        })
        .collect()
}

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");
    let duration_s = if test_mode { 0.5 } else { 8.0 };
    let passes = if test_mode { 1 } else { 7 };

    let calibration = CalibrationCampaign {
        prbs_duration_s: 120.0,
        run_furnace: false,
        ..CalibrationCampaign::default()
    }
    .run(37)
    .expect("calibration campaign must succeed");

    let disabled_configs = configs(SafetyConfig::disabled(), duration_s);
    let armed_configs = configs(SafetyConfig::default(), duration_s);

    // Cross-check once, outside the timed loops: the armed stack must be
    // invisible on this fault-free sweep — bit-identical trajectories, no
    // incidents. A bench that got faster by perturbing the numbers would be
    // measuring the wrong thing.
    let disabled_results = run_lockstep(&disabled_configs, &calibration);
    let armed_results = run_lockstep(&armed_configs, &calibration);
    let mut intervals = 0usize;
    for (lane, (armed, disabled)) in armed_results.iter().zip(&disabled_results).enumerate() {
        let armed = armed.as_ref().expect("armed lane succeeds");
        let disabled = disabled.as_ref().expect("disabled lane succeeds");
        assert_eq!(
            armed.trace, disabled.trace,
            "lane {lane}: armed safety must be bit-identical on healthy runs"
        );
        intervals += armed.trace.len();
    }

    // Interleaved best-of-N: the arms alternate within each pass so neither
    // systematically benefits from warm-up or frequency drift.
    let mut disabled_best = Duration::MAX;
    let mut armed_best = Duration::MAX;
    for _ in 0..passes {
        let start = Instant::now();
        std::hint::black_box(run_lockstep(&disabled_configs, &calibration));
        disabled_best = disabled_best.min(start.elapsed());

        let start = Instant::now();
        std::hint::black_box(run_lockstep(&armed_configs, &calibration));
        armed_best = armed_best.min(start.elapsed());
    }

    let disabled_ms = disabled_best.as_secs_f64() * 1e3;
    let armed_ms = armed_best.as_secs_f64() * 1e3;
    let overhead_pct = (armed_ms / disabled_ms - 1.0) * 100.0;
    let intervals_per_s = intervals as f64 / armed_best.as_secs_f64();
    println!(
        "safety_overhead/disabled_sweep           {disabled_ms:>14.2} ms \
         ({LANES} lanes, {intervals} intervals)"
    );
    println!("safety_overhead/armed_sweep              {armed_ms:>14.2} ms");
    println!(
        "safety_overhead/overhead                 {overhead_pct:>14.2} % \
         (acceptance ceiling: < {OVERHEAD_CEILING_PCT} %)"
    );
    println!("safety_overhead/armed_intervals_per_s    {intervals_per_s:>14.0}");

    if !test_mode {
        write_bench_json(disabled_ms, armed_ms, overhead_pct, intervals_per_s);
        // Regression guard: asserted only on the full run — the --test smoke
        // run is too short to measure meaningfully.
        assert!(
            overhead_pct <= OVERHEAD_CEILING_PCT,
            "armed safety stack costs {overhead_pct:.2} % on the fault-free \
             hot path (ceiling: {OVERHEAD_CEILING_PCT} %)"
        );
    }
}

/// Records the measured numbers for tracking (`BENCH_safety_overhead.json`).
fn write_bench_json(disabled_ms: f64, armed_ms: f64, overhead_pct: f64, intervals_per_s: f64) {
    let json = format!(
        "{{\n  \"bench\": \"safety_overhead\",\n  \"lanes\": {LANES},\n  \
         \"disabled_sweep_ms\": {disabled_ms:.2},\n  \
         \"armed_sweep_ms\": {armed_ms:.2},\n  \
         \"overhead_pct\": {overhead_pct:.3},\n  \
         \"ceiling_pct\": {OVERHEAD_CEILING_PCT},\n  \
         \"armed_intervals_per_s\": {intervals_per_s:.0}\n}}\n"
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_safety_overhead.json"
    );
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("warning: could not write {path}: {e}");
    }
}

//! Criterion benchmarks for the closed-loop temperature-control experiments
//! (Figures 6.3–6.8): how long one full benchmark simulation takes under each
//! configuration.

use bench::ExperimentContext;
use criterion::{criterion_group, criterion_main, Criterion};
use platform_sim::{Experiment, ExperimentConfig, ExperimentKind};
use std::hint::black_box;
use workload::BenchmarkId;

fn bench_closed_loop_runs(c: &mut Criterion) {
    let context = ExperimentContext::new(true).expect("calibration succeeds");
    let mut group = c.benchmark_group("fig6_3_to_6_8/closed_loop_simulation");
    group.sample_size(10);
    for kind in [
        ExperimentKind::DefaultWithFan,
        ExperimentKind::WithoutFan,
        ExperimentKind::Reactive,
        ExperimentKind::Dtpm,
    ] {
        group.bench_function(kind.name(), |b| {
            b.iter(|| {
                let mut config = ExperimentConfig::new(kind, BenchmarkId::Dijkstra).with_seed(7);
                config.max_duration_s = 120.0;
                let result = Experiment::new(&config, &context.calibration)
                    .expect("experiment builds")
                    .run()
                    .expect("experiment runs");
                black_box(result.mean_platform_power_w)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_closed_loop_runs);
criterion_main!(benches);

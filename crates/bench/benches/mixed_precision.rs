//! Criterion benchmark for the mixed-precision (f32 panel) batched plant.
//!
//! Measures `MixedBatchPlant::step_interval` against the f64
//! `BatchPlant` on the `sweep_step` shape at sixteen lanes — twice the f64
//! bench's width, where the halved element width pays the most: each AVX2
//! vector carries 8 scenario lanes instead of 4 and the panel working set
//! halves. Besides the per-case criterion numbers it prints total integrator
//! micro-steps per second for both engines and the f32-over-f64 speedup; the
//! repo's acceptance bar is ≥ 1.4× at sixteen lanes, asserted as a floor in
//! the full (non `--test`) run. Correctness is cross-checked in the same
//! run: after the shared simulated horizon every lane's trajectory must stay
//! within the documented 1e-3 °C budget of its f64 twin.
//!
//! The measured numbers are also written to `BENCH_mixed_precision.json` at
//! the workspace root so sweeps of the bench can be tracked over time.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Instant;

use platform_sim::{BatchPlant, LaneInput, MixedBatchPlant, PlantPowerParams};
use soc_model::{FanLevel, PlatformState, SocSpec};
use workload::Demand;

const CONTROL_PERIOD_S: f64 = 0.1;
/// Micro-steps per control interval (the plant integrates at dt = 10 ms).
const MICRO_STEPS_PER_INTERVAL: f64 = 10.0;
/// Scenarios advanced per instruction stream.
const LANES: usize = 16;
/// Acceptance floor for the f32 engine over the f64 panel path at sixteen
/// lanes.
const SPEEDUP_FLOOR: f64 = 1.4;
/// Trajectory-divergence budget the f32 engine is validated against, °C.
const DIVERGENCE_BUDGET_C: f64 = 1e-3;

fn busy_demand() -> Demand {
    Demand {
        cpu_streams: 3.5,
        activity_factor: 0.9,
        gpu_utilization: 0.4,
        memory_intensity: 0.5,
        frequency_scalability: 0.9,
    }
}

fn bench_mixed_precision(c: &mut Criterion) {
    let spec = SocSpec::odroid_xu_e();
    let demand = busy_demand();
    let state = PlatformState::default_for(&spec);
    let params = [PlantPowerParams::default(); LANES];

    let mut group = c.benchmark_group("mixed_precision/16_scenarios_100ms");
    let mut mixed = MixedBatchPlant::new(spec.clone(), &params);
    group.bench_function("f32_panel", |b| {
        b.iter(|| {
            let inputs: [LaneInput<'_>; LANES] = std::array::from_fn(|_| LaneInput {
                state: black_box(&state),
                demand: black_box(&demand),
                fan_level: FanLevel::Off,
                ambient_c: 28.0,
            });
            black_box(mixed.step_interval(&inputs, CONTROL_PERIOD_S).unwrap())
        })
    });
    let mut full = BatchPlant::new(spec.clone(), &params);
    group.bench_function("f64_panel", |b| {
        b.iter(|| {
            let inputs: [LaneInput<'_>; LANES] = std::array::from_fn(|_| LaneInput {
                state: black_box(&state),
                demand: black_box(&demand),
                fan_level: FanLevel::Off,
                ambient_c: 28.0,
            });
            black_box(full.step_interval(&inputs, CONTROL_PERIOD_S).unwrap())
        })
    });
    group.finish();

    report_steps_per_second(&spec, &state, &demand);
}

/// Times both engines over the same simulated horizon and prints lane
/// micro-steps/sec plus the speedup factor; asserts the acceptance floor and
/// the trajectory budget.
fn report_steps_per_second(spec: &SocSpec, state: &PlatformState, demand: &Demand) {
    let test_mode = std::env::args().any(|a| a == "--test");
    let intervals: usize = if test_mode { 20 } else { 2_000 };
    let passes: usize = if test_mode { 1 } else { 8 };
    let params = [PlantPowerParams::default(); LANES];

    // Best-of-N wall-clock per engine with the passes interleaved, exactly
    // like the sweep_step bench: the minimum is the least-interference
    // estimate and alternation keeps frequency drift off one engine.
    let mut mixed = MixedBatchPlant::new(spec.clone(), &params);
    let mut full = BatchPlant::new(spec.clone(), &params);
    let mut mixed_elapsed = std::time::Duration::MAX;
    let mut full_elapsed = std::time::Duration::MAX;
    for _ in 0..passes {
        let start = Instant::now();
        for _ in 0..intervals {
            let inputs: [LaneInput<'_>; LANES] = std::array::from_fn(|_| LaneInput {
                state,
                demand,
                fan_level: FanLevel::Off,
                ambient_c: 28.0,
            });
            black_box(mixed.step_interval(&inputs, CONTROL_PERIOD_S).unwrap());
        }
        mixed_elapsed = mixed_elapsed.min(start.elapsed());

        let start = Instant::now();
        for _ in 0..intervals {
            let inputs: [LaneInput<'_>; LANES] = std::array::from_fn(|_| LaneInput {
                state,
                demand,
                fan_level: FanLevel::Off,
                ambient_c: 28.0,
            });
            black_box(full.step_interval(&inputs, CONTROL_PERIOD_S).unwrap());
        }
        full_elapsed = full_elapsed.min(start.elapsed());
    }

    let micro_steps = (intervals * LANES) as f64 * MICRO_STEPS_PER_INTERVAL;
    let mixed_sps = micro_steps / mixed_elapsed.as_secs_f64();
    let full_sps = micro_steps / full_elapsed.as_secs_f64();
    let speedup = mixed_sps / full_sps;
    println!("mixed_precision/lane_steps_per_sec/f32   {mixed_sps:>14.0} steps/s ({LANES} lanes)");
    println!("mixed_precision/lane_steps_per_sec/f64   {full_sps:>14.0} steps/s");
    println!(
        "mixed_precision/speedup_vs_f64           {speedup:>14.2}x (acceptance floor: >= {SPEEDUP_FLOOR}x)"
    );

    // Correctness cross-check on the very trajectories just timed: both
    // engines advanced the same scenarios over `passes × intervals` control
    // intervals, so every lane must sit inside the documented budget.
    let mut worst = 0.0f64;
    let mut f64_temps = vec![0.0; full.node_count()];
    let mut f32_temps = vec![0.0; mixed.node_count()];
    for lane in 0..LANES {
        full.node_temps_into(lane, &mut f64_temps);
        mixed.node_temps_into(lane, &mut f32_temps);
        for (a, b) in f64_temps.iter().zip(&f32_temps) {
            worst = worst.max((a - b).abs());
        }
    }
    println!("mixed_precision/max_lane_divergence_degc {worst:>14.2e}");
    assert!(
        worst < DIVERGENCE_BUDGET_C,
        "f32 and f64 trajectories diverged: {worst} degC (budget {DIVERGENCE_BUDGET_C})"
    );

    if !test_mode {
        write_bench_json(mixed_sps, full_sps, speedup, worst);
        // Regression guard: asserted only on the full run — the --test smoke
        // run is too short to measure meaningfully.
        assert!(
            speedup >= SPEEDUP_FLOOR,
            "f32 engine regressed to {speedup:.2}x over the f64 panel path \
             (floor: {SPEEDUP_FLOOR}x)"
        );
    }
}

/// Records the measured numbers for tracking (`BENCH_mixed_precision.json`).
fn write_bench_json(mixed_sps: f64, full_sps: f64, speedup: f64, divergence_c: f64) {
    let json = format!(
        "{{\n  \"bench\": \"mixed_precision\",\n  \"lanes\": {LANES},\n  \
         \"f32_lane_steps_per_sec\": {mixed_sps:.0},\n  \
         \"f64_lane_steps_per_sec\": {full_sps:.0},\n  \
         \"speedup_vs_f64\": {speedup:.3},\n  \
         \"max_lane_divergence_degc\": {divergence_c:.3e},\n  \
         \"divergence_budget_degc\": {DIVERGENCE_BUDGET_C:.0e},\n  \
         \"floor\": {SPEEDUP_FLOOR}\n}}\n"
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_mixed_precision.json"
    );
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("warning: could not write {path}: {e}");
    }
}

criterion_group!(benches, bench_mixed_precision);
criterion_main!(benches);

//! Closed-loop temperature-control experiments (Figures 1.1, 6.3–6.8).

use std::fmt::Write as _;

use platform_sim::{
    Experiment, ExperimentConfig, ExperimentKind, SimError, SimulationResult, StabilityReport,
};
use workload::BenchmarkId;

use crate::ExperimentContext;

fn run(
    context: &ExperimentContext,
    kind: ExperimentKind,
    benchmark: BenchmarkId,
) -> Result<SimulationResult, SimError> {
    let mut config = ExperimentConfig::new(kind, benchmark).with_seed(7);
    if context.quick {
        config.max_duration_s = 240.0;
    }
    Experiment::new(&config, &context.calibration)?.run()
}

fn temperature_figure(
    title: &str,
    context: &ExperimentContext,
    benchmark: BenchmarkId,
    kinds: &[ExperimentKind],
) -> Result<String, SimError> {
    let mut out = format!("{title}\n");
    for &kind in kinds {
        let result = run(context, kind, benchmark)?;
        let series = result.trace.max_temp_series();
        let times: Vec<f64> = result.trace.records().iter().map(|r| r.time_s).collect();
        let stability = StabilityReport::of(&result);
        let _ = writeln!(
            out,
            "  [{kind}] execution {:.1} s, peak {:.1} degC, mean {:.1} degC",
            result.execution_time_s, stability.peak_temp_c, stability.mean_temp_c
        );
        out.push_str(&crate::format_series(
            &format!("max core temperature ({kind})"),
            &times,
            &series,
            (series.len() / 20).max(1),
            "degC",
        ));
    }
    Ok(out)
}

fn frequency_figure(
    title: &str,
    context: &ExperimentContext,
    benchmark: BenchmarkId,
) -> Result<String, SimError> {
    let mut out = format!("{title}\n");
    for kind in [ExperimentKind::DefaultWithFan, ExperimentKind::Dtpm] {
        let result = run(context, kind, benchmark)?;
        let times: Vec<f64> = result.trace.records().iter().map(|r| r.time_s).collect();
        let freqs = result.trace.frequency_series();
        let temps = result.trace.max_temp_series();
        let _ = writeln!(
            out,
            "  [{kind}] execution {:.1} s, mean platform power {:.2} W, DTPM intervention rate {:.1}%",
            result.execution_time_s,
            result.mean_platform_power_w,
            100.0 * result.trace.intervention_rate()
        );
        out.push_str(&crate::format_series(
            &format!("frequency ({kind})"),
            &times,
            &freqs,
            (freqs.len() / 16).max(1),
            "MHz",
        ));
        out.push_str(&crate::format_series(
            &format!("max core temperature ({kind})"),
            &times,
            &temps,
            (temps.len() / 16).max(1),
            "degC",
        ));
    }
    Ok(out)
}

/// Figure 1.1 — maximum core temperature with and without the fan under a
/// heavy load.
pub fn fig1_1(context: &ExperimentContext) -> Result<String, SimError> {
    temperature_figure(
        "Figure 1.1 — maximum core temperature with and without the fan (matrix multiplication)",
        context,
        BenchmarkId::MatrixMult,
        &[ExperimentKind::DefaultWithFan, ExperimentKind::WithoutFan],
    )
}

/// Figure 6.3 — temperature control for Templerun.
pub fn fig6_3(context: &ExperimentContext) -> Result<String, SimError> {
    temperature_figure(
        "Figure 6.3 — temperature control for Templerun",
        context,
        BenchmarkId::Templerun,
        &[
            ExperimentKind::WithoutFan,
            ExperimentKind::DefaultWithFan,
            ExperimentKind::Dtpm,
        ],
    )
}

/// Figure 6.4 — temperature control for Basicmath.
pub fn fig6_4(context: &ExperimentContext) -> Result<String, SimError> {
    temperature_figure(
        "Figure 6.4 — temperature control for Basicmath",
        context,
        BenchmarkId::Basicmath,
        &[
            ExperimentKind::WithoutFan,
            ExperimentKind::DefaultWithFan,
            ExperimentKind::Dtpm,
        ],
    )
}

/// Figure 6.5 — thermal stability comparison (average temperature and max–min
/// spread) for Templerun and Basicmath.
pub fn fig6_5(context: &ExperimentContext) -> Result<String, SimError> {
    let mut out = String::from(
        "Figure 6.5 — thermal stability comparison (metrics over the regulated portion)\n",
    );
    let _ = writeln!(
        out,
        "  {:<12} {:<18} {:>10} {:>12} {:>10}",
        "benchmark", "configuration", "avg degC", "max-min degC", "variance"
    );
    for benchmark in [BenchmarkId::Templerun, BenchmarkId::Basicmath] {
        let mut fan_variance = None;
        for kind in [
            ExperimentKind::WithoutFan,
            ExperimentKind::DefaultWithFan,
            ExperimentKind::Dtpm,
        ] {
            let result = run(context, kind, benchmark)?;
            let stability = StabilityReport::of_steady_portion(&result, 0.3);
            let _ = writeln!(
                out,
                "  {:<12} {:<18} {:>10.1} {:>12.1} {:>10.2}",
                benchmark.name(),
                kind.name(),
                stability.mean_temp_c,
                stability.temp_range_c,
                stability.temp_variance
            );
            if kind == ExperimentKind::DefaultWithFan {
                fan_variance = Some(stability.temp_variance);
            }
            if kind == ExperimentKind::Dtpm {
                if let Some(fan) = fan_variance {
                    let factor = if stability.temp_variance > 1e-9 {
                        fan / stability.temp_variance
                    } else {
                        f64::INFINITY
                    };
                    let _ = writeln!(
                        out,
                        "  {:<12} variance reduction vs fan: {factor:.1}x (paper: ~6x)",
                        benchmark.name()
                    );
                }
            }
        }
    }
    Ok(out)
}

/// Figure 6.6 — frequency and temperature for Dijkstra (low activity).
pub fn fig6_6(context: &ExperimentContext) -> Result<String, SimError> {
    frequency_figure(
        "Figure 6.6 — frequency and temperature for Dijkstra (default with fan vs DTPM)",
        context,
        BenchmarkId::Dijkstra,
    )
}

/// Figure 6.7 — frequency and temperature for Patricia (medium activity).
pub fn fig6_7(context: &ExperimentContext) -> Result<String, SimError> {
    frequency_figure(
        "Figure 6.7 — frequency and temperature for Patricia (default with fan vs DTPM)",
        context,
        BenchmarkId::Patricia,
    )
}

/// Figure 6.8 — frequency and temperature for matrix multiplication (high
/// activity).
pub fn fig6_8(context: &ExperimentContext) -> Result<String, SimError> {
    frequency_figure(
        "Figure 6.8 — frequency and temperature for matrix multiplication (default with fan vs DTPM)",
        context,
        BenchmarkId::MatrixMult,
    )
}

//! Experiment harness regenerating every table and figure of the paper's
//! evaluation (Chapters 1, 4 and 6, plus the Chapter 7 future-work study).
//!
//! Each `fig*`/`table*` function produces a plain-text report with the same
//! rows/series the paper plots, so the *shape* of every result can be checked
//! against the original (absolute values differ: the substrate is a simulated
//! plant, not the authors' board). The [`run_experiment`] entry point is used
//! by the `experiments` binary (`cargo run -p bench --bin experiments`) and by
//! the Criterion benchmarks.

#![warn(missing_docs)]

pub mod control;
pub mod modeling;
pub mod summary;

use std::fmt::Write as _;

use platform_sim::{Calibration, CalibrationCampaign, SimError};

/// Shared context: the characterised models reused by every experiment.
#[derive(Debug, Clone)]
pub struct ExperimentContext {
    /// The characterised power model and identified thermal predictor.
    pub calibration: Calibration,
    /// Whether to run shortened experiments (used by the test suite and the
    /// Criterion benches to keep wall-clock time reasonable).
    pub quick: bool,
}

impl ExperimentContext {
    /// Characterises the platform and builds the context.
    ///
    /// # Errors
    ///
    /// Propagates calibration failures.
    pub fn new(quick: bool) -> Result<Self, SimError> {
        let campaign = if quick {
            CalibrationCampaign {
                prbs_duration_s: 300.0,
                run_furnace: false,
                ..CalibrationCampaign::default()
            }
        } else {
            CalibrationCampaign::default()
        };
        Ok(ExperimentContext {
            calibration: campaign.run(42)?,
            quick,
        })
    }
}

/// Identifier and description of every reproducible experiment.
pub const EXPERIMENTS: &[(&str, &str)] = &[
    (
        "tables",
        "Tables 6.1-6.4: OPP tables and the benchmark list",
    ),
    (
        "fig1_1",
        "Figure 1.1: maximum core temperature with and without the fan",
    ),
    (
        "fig4_2",
        "Figure 4.2: furnace total CPU power at each ambient setpoint",
    ),
    (
        "fig4_3",
        "Figure 4.3: leakage power vs temperature (fitted model)",
    ),
    (
        "fig4_5",
        "Figure 4.5: leakage and dynamic power vs temperature at 1.6 GHz",
    ),
    (
        "fig4_6",
        "Figure 4.6: leakage and dynamic power vs frequency",
    ),
    (
        "fig4_7",
        "Figure 4.7: power model validation (predicted vs measured)",
    ),
    (
        "fig4_8",
        "Figure 4.8: PRBS excitation signal and core-0 temperature",
    ),
    (
        "fig4_9",
        "Figure 4.9: thermal model validation for Blowfish at a 1 s horizon",
    ),
    (
        "fig4_10",
        "Figure 4.10: prediction error vs horizon for Templerun",
    ),
    (
        "fig6_2",
        "Figure 6.2: 1 s temperature prediction error for all benchmarks",
    ),
    ("fig6_3", "Figure 6.3: temperature control for Templerun"),
    ("fig6_4", "Figure 6.4: temperature control for Basicmath"),
    ("fig6_5", "Figure 6.5: thermal stability comparison"),
    (
        "fig6_6",
        "Figure 6.6: frequency and temperature for Dijkstra (default vs DTPM)",
    ),
    (
        "fig6_7",
        "Figure 6.7: frequency and temperature for Patricia (default vs DTPM)",
    ),
    (
        "fig6_8",
        "Figure 6.8: frequency and temperature for matrix multiplication",
    ),
    (
        "fig6_9",
        "Figure 6.9: power savings and performance loss summary",
    ),
    (
        "fig6_10",
        "Figure 6.10: multi-threaded power savings and performance loss",
    ),
    (
        "fig7_1",
        "Figure 7.1: power-budget distribution across heterogeneous resources",
    ),
];

/// Runs one experiment by id and returns its textual report.
///
/// # Errors
///
/// Returns an error for unknown ids or failures inside the experiment.
pub fn run_experiment(id: &str, context: &ExperimentContext) -> Result<String, SimError> {
    match id {
        "tables" => Ok(summary::tables()),
        "fig1_1" => control::fig1_1(context),
        "fig4_2" => modeling::fig4_2(context),
        "fig4_3" => modeling::fig4_3(context),
        "fig4_5" => modeling::fig4_5(context),
        "fig4_6" => modeling::fig4_6(context),
        "fig4_7" => modeling::fig4_7(context),
        "fig4_8" => modeling::fig4_8(context),
        "fig4_9" => modeling::fig4_9(context),
        "fig4_10" => modeling::fig4_10(context),
        "fig6_2" => modeling::fig6_2(context),
        "fig6_3" => control::fig6_3(context),
        "fig6_4" => control::fig6_4(context),
        "fig6_5" => control::fig6_5(context),
        "fig6_6" => control::fig6_6(context),
        "fig6_7" => control::fig6_7(context),
        "fig6_8" => control::fig6_8(context),
        "fig6_9" => summary::fig6_9(context),
        "fig6_10" => summary::fig6_10(context),
        "fig7_1" => Ok(summary::fig7_1()),
        other => Err(SimError::InvalidConfig(Box::leak(
            format!("unknown experiment id '{other}'").into_boxed_str(),
        ))),
    }
}

/// Formats a numeric time series as sparse `t, value` rows (used by the
/// figure reports to keep the output readable).
pub(crate) fn format_series(
    title: &str,
    times: &[f64],
    values: &[f64],
    every: usize,
    unit: &str,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "  {title}:");
    for (i, (t, v)) in times.iter().zip(values).enumerate() {
        if i % every.max(1) == 0 {
            let _ = writeln!(out, "    t={t:7.1} s  {v:8.2} {unit}");
        }
    }
    out
}

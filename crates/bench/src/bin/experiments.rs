//! Regenerates every table and figure of the paper's evaluation.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p bench --bin experiments              # everything
//! cargo run --release -p bench --bin experiments -- --list    # list ids
//! cargo run --release -p bench --bin experiments -- --only fig6_9
//! cargo run --release -p bench --bin experiments -- --quick   # shortened runs
//! ```

use std::io::Write as _;
use std::path::PathBuf;

use bench::{run_experiment, ExperimentContext, EXPERIMENTS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print_usage();
        return;
    }
    if args.iter().any(|a| a == "--list") {
        for (id, description) in EXPERIMENTS {
            println!("{id:<10} {description}");
        }
        return;
    }
    let quick = args.iter().any(|a| a == "--quick");
    let only: Vec<&str> = args
        .iter()
        .enumerate()
        .filter(|(_, a)| *a == "--only")
        .filter_map(|(i, _)| args.get(i + 1).map(|s| s.as_str()))
        .collect();

    let selected: Vec<&str> = if only.is_empty() {
        EXPERIMENTS.iter().map(|(id, _)| *id).collect()
    } else {
        only
    };

    eprintln!("Characterising the platform (furnace sweep + PRBS identification)...");
    let context = match ExperimentContext::new(quick) {
        Ok(context) => context,
        Err(err) => {
            eprintln!("calibration failed: {err}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "  identified thermal model: 1 s prediction error {:.2}% (max {:.2}%)\n",
        context.calibration.validation.mean_percent_error,
        context.calibration.validation.max_percent_error
    );

    let output_dir = PathBuf::from("target/experiments");
    std::fs::create_dir_all(&output_dir).ok();

    let mut failures = 0usize;
    for id in selected {
        match run_experiment(id, &context) {
            Ok(report) => {
                println!("{report}");
                let path = output_dir.join(format!("{id}.txt"));
                if let Ok(mut file) = std::fs::File::create(&path) {
                    let _ = file.write_all(report.as_bytes());
                }
            }
            Err(err) => {
                eprintln!("experiment {id} failed: {err}");
                failures += 1;
            }
        }
    }
    if failures > 0 {
        std::process::exit(1);
    }
}

fn print_usage() {
    println!("Regenerates the tables and figures of the DTPM paper evaluation.");
    println!();
    println!("Options:");
    println!("  --list          list experiment identifiers");
    println!("  --only <id>     run only the given experiment (repeatable)");
    println!("  --quick         shortened characterisation and runs");
    println!("  --help          this message");
}

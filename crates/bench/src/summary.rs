//! Tables, the power/performance summaries (Figures 6.9 and 6.10) and the
//! future-work budget-distribution study (Figure 7.1).

use std::fmt::Write as _;

use dtpm::{distribute_budget, DistributionMethod, ResourceLoad};
use platform_sim::{
    BenchmarkComparison, CollectSink, ExperimentConfig, ExperimentKind, RunSummary, ScenarioSweep,
    SimError, TracePolicy,
};
use soc_model::{OppTable, SocSpec};
use workload::{BenchmarkCategory, BenchmarkId};

use crate::ExperimentContext;

/// Tables 6.1–6.4 — the frequency tables of both CPU clusters and the GPU and
/// the benchmark list.
pub fn tables() -> String {
    let spec = SocSpec::odroid_xu_e();
    let mut out = String::new();
    for (title, table) in [
        ("Table 6.1 — big CPU cluster frequencies", spec.big_opps()),
        (
            "Table 6.2 — little CPU cluster frequencies",
            spec.little_opps(),
        ),
        ("Table 6.3 — GPU frequencies", spec.gpu_opps()),
    ] {
        let _ = writeln!(out, "{title}");
        for op in table.points() {
            let _ = writeln!(
                out,
                "  {:>5} MHz  ({:.2} V)",
                op.frequency.mhz(),
                op.voltage.volts()
            );
        }
    }
    let _ = writeln!(out, "Table 6.4 — benchmarks used in the experiments");
    let _ = writeln!(
        out,
        "  {:<14} {:<14} {:<8} {:<4}",
        "benchmark", "type", "category", "gpu"
    );
    for id in BenchmarkId::PAPER_SET {
        let spec = id.spec();
        let _ = writeln!(
            out,
            "  {:<14} {:<14} {:<8} {:<4}",
            id.name(),
            format!("{:?}", spec.kind),
            spec.category.to_string(),
            if spec.uses_gpu { "yes" } else { "no" }
        );
    }
    out
}

fn config_for(
    context: &ExperimentContext,
    kind: ExperimentKind,
    benchmark: BenchmarkId,
) -> ExperimentConfig {
    let mut config = ExperimentConfig::new(kind, benchmark).with_seed(7);
    if context.quick {
        config.max_duration_s = 240.0;
    }
    config
}

fn summary_rows(
    context: &ExperimentContext,
    benchmarks: &[BenchmarkId],
) -> Result<(String, Vec<(BenchmarkId, BenchmarkComparison)>), SimError> {
    // Every benchmark needs a fan-cooled baseline run and a DTPM run; the
    // pairs are independent closed-loop simulations, so fan them all out over
    // the scenario sweep's worker threads. The figures only need each run's
    // summary (mean power, execution time, stability), so the sweep streams
    // summaries-only: nothing per-interval is retained across the whole
    // benchmark set.
    let mut configs = Vec::with_capacity(benchmarks.len() * 2);
    for &benchmark in benchmarks {
        configs.push(config_for(
            context,
            ExperimentKind::DefaultWithFan,
            benchmark,
        ));
        configs.push(config_for(context, ExperimentKind::Dtpm, benchmark));
    }
    let mut sink = CollectSink::new(configs.len());
    ScenarioSweep::new(configs)
        .with_recording(TracePolicy::SummaryOnly)
        .run_into(&context.calibration, &mut sink);
    let mut results = sink
        .into_reports()
        .into_iter()
        .map(|report| report.map(|report| report.summary));

    let mut out = String::new();
    let _ = writeln!(
        out,
        "  {:<14} {:<8} {:>14} {:>16} {:>12}",
        "benchmark", "category", "power saving %", "perf. impact %", "peak degC"
    );
    let mut rows = Vec::new();
    for &benchmark in benchmarks {
        let baseline: RunSummary = results.next().expect("one result per config")?;
        let dtpm: RunSummary = results.next().expect("one result per config")?;
        let cmp = BenchmarkComparison::from_summaries(&baseline, &dtpm);
        let peak = dtpm.stability.peak_temp_c;
        let _ = writeln!(
            out,
            "  {:<14} {:<8} {:>14.1} {:>16.1} {:>12.1}",
            benchmark.name(),
            benchmark.spec().category.to_string(),
            cmp.power_saving_percent,
            cmp.performance_loss_percent,
            peak
        );
        rows.push((benchmark, cmp));
    }
    Ok((out, rows))
}

/// Figure 6.9 — power savings and performance loss of the DTPM algorithm
/// relative to the fan-cooled default, per benchmark.
pub fn fig6_9(context: &ExperimentContext) -> Result<String, SimError> {
    let mut out = String::from(
        "Figure 6.9 — power savings and performance loss (DTPM vs default with fan)\n",
    );
    let benchmarks: Vec<BenchmarkId> = if context.quick {
        vec![
            BenchmarkId::Dijkstra,
            BenchmarkId::Blowfish,
            BenchmarkId::Patricia,
            BenchmarkId::Qsort,
            BenchmarkId::Basicmath,
            BenchmarkId::MatrixMult,
            BenchmarkId::Templerun,
        ]
    } else {
        BenchmarkId::PAPER_SET.to_vec()
    };
    let (rows, comparisons) = summary_rows(context, &benchmarks)?;
    out.push_str(&rows);

    // Per-category averages (the paper quotes ~3% / ~8% / ~14%).
    for category in [
        BenchmarkCategory::Low,
        BenchmarkCategory::Medium,
        BenchmarkCategory::High,
    ] {
        let in_category: Vec<&BenchmarkComparison> = comparisons
            .iter()
            .filter(|(b, _)| b.spec().category == category)
            .map(|(_, c)| c)
            .collect();
        if in_category.is_empty() {
            continue;
        }
        let saving = in_category
            .iter()
            .map(|c| c.power_saving_percent)
            .sum::<f64>()
            / in_category.len() as f64;
        let loss = in_category
            .iter()
            .map(|c| c.performance_loss_percent)
            .sum::<f64>()
            / in_category.len() as f64;
        let _ = writeln!(
            out,
            "  average for {:<6} activity: {saving:5.1}% power saving, {loss:5.1}% performance impact",
            category.to_string()
        );
    }
    Ok(out)
}

/// Figure 6.10 — the same summary for the multi-threaded benchmarks.
pub fn fig6_10(context: &ExperimentContext) -> Result<String, SimError> {
    let mut out = String::from(
        "Figure 6.10 — power savings and performance loss for multi-threaded benchmarks\n",
    );
    let (rows, _) = summary_rows(context, &BenchmarkId::MULTI_THREADED_SET)?;
    out.push_str(&rows);
    Ok(out)
}

/// Figure 7.1 — distributing a dynamic power budget across the heterogeneous
/// resources (future-work study, Eqs. 7.1–7.3): greedy vs branch-and-bound.
pub fn fig7_1() -> String {
    let resources = vec![
        ResourceLoad {
            name: "big-cpu".to_owned(),
            performance_weight: 3.0,
            power_coefficient: 0.9,
            opps: OppTable::exynos5410_big(),
        },
        ResourceLoad {
            name: "little-cpu".to_owned(),
            performance_weight: 0.6,
            power_coefficient: 0.12,
            opps: OppTable::exynos5410_little(),
        },
        ResourceLoad {
            name: "gpu".to_owned(),
            performance_weight: 1.2,
            power_coefficient: 2.0,
            opps: OppTable::exynos5410_gpu(),
        },
    ];
    let mut out = String::from(
        "Figure 7.1 — dynamic power budget distribution across big CPU / little CPU / GPU\n",
    );
    let _ = writeln!(
        out,
        "  {:>10} {:>12} {:>26} {:>12} {:>12}",
        "budget W", "method", "frequencies (MHz)", "power W", "cost J"
    );
    for budget in [1.0, 1.5, 2.0, 2.5, 3.0, 4.0, 5.0] {
        for method in [
            DistributionMethod::Greedy,
            DistributionMethod::BranchAndBound,
        ] {
            let result = distribute_budget(&resources, budget, method)
                .expect("static resource description is valid");
            let freqs: Vec<String> = result
                .frequencies
                .iter()
                .map(|f| f.mhz().to_string())
                .collect();
            let _ = writeln!(
                out,
                "  {budget:>10.1} {:>12} {:>26} {:>12.2} {:>12.3}",
                match method {
                    DistributionMethod::Greedy => "greedy",
                    DistributionMethod::BranchAndBound => "optimal",
                },
                freqs.join("/"),
                result.total_power_w,
                result.cost
            );
        }
    }
    out.push_str("  (the greedy Eq. 7.3 heuristic tracks the branch-and-bound optimum closely)\n");
    out
}

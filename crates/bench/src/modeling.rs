//! Power- and thermal-modelling experiments (Chapter 4) plus the prediction
//! accuracy sweep of Figure 6.2.

use std::fmt::Write as _;

use numeric::Vector;
use platform_sim::{CalibrationCampaign, PhysicalPlant, PlantPowerParams, SensorSuite, SimError};
use power_model::{FurnaceDataset, PowerModel};
use soc_model::{ClusterKind, FanLevel, Frequency, PlatformState, PowerDomain, SocSpec, Voltage};
use sysid::{n_step_prediction, IdentificationDataset, PrbsConfig, PrbsSignal};
use workload::{BenchmarkId, WorkloadState};

use crate::ExperimentContext;

/// Figure 4.2 — total big-cluster power logged inside the furnace at each
/// ambient setpoint (40–80 °C).
pub fn fig4_2(context: &ExperimentContext) -> Result<String, SimError> {
    let spec = SocSpec::odroid_xu_e();
    let mut out = String::from(
        "Figure 4.2 — furnace characterisation: mean total big-cluster power per setpoint\n",
    );
    let freq = Frequency::from_mhz(1600);
    let mut state = PlatformState::default_for(&spec);
    state.big_frequency = freq;
    let demand = workload::Demand {
        cpu_streams: 0.5,
        activity_factor: 0.10,
        gpu_utilization: 0.0,
        memory_intensity: 0.1,
        frequency_scalability: 1.0,
    };
    for &setpoint in &FurnaceDataset::PAPER_SWEEP_C {
        let mut plant = PhysicalPlant::new(
            spec.clone().with_ambient_c(setpoint),
            PlantPowerParams::default(),
        );
        plant.reset_temps(setpoint);
        let mut sensors = SensorSuite::odroid_defaults(setpoint as u64);
        let steps = if context.quick { 1200 } else { 3200 };
        let mut sum = 0.0;
        let mut count = 0;
        for k in 0..steps {
            let step = plant.step_interval(&state, &demand, FanLevel::Off, setpoint, 0.1)?;
            if k >= steps / 3 {
                let reading =
                    sensors.sample(step.core_temps_c, &step.domain_power, step.platform_power_w);
                sum += reading.domain_power.big_w;
                count += 1;
            }
        }
        let _ = writeln!(
            out,
            "  ambient {setpoint:4.0} degC : mean CPU power {:6.3} W",
            sum / count as f64
        );
    }
    out.push_str(
        "  (shape check: power rises with the furnace setpoint because only leakage grows)\n",
    );
    Ok(out)
}

/// Figure 4.3 — fitted leakage power vs temperature.
pub fn fig4_3(context: &ExperimentContext) -> Result<String, SimError> {
    let leak = context
        .calibration
        .power_model
        .domain(PowerDomain::BigCpu)
        .leakage();
    let v = Voltage::from_volts(1.2);
    let mut out = String::from("Figure 4.3 — leakage power vs temperature (fitted model, 1.2 V)\n");
    for t in (40..=80).step_by(5) {
        let _ = writeln!(out, "  {t:3} degC : {:6.3} W", leak.power_w(v, t as f64));
    }
    Ok(out)
}

/// Figure 4.5 — leakage vs dynamic power over temperature at 1.6 GHz.
pub fn fig4_5(context: &ExperimentContext) -> Result<String, SimError> {
    let model = &context.calibration.power_model;
    let mut trained = model.clone();
    train_activity(&mut trained, 0.31);
    let v = Voltage::from_volts(1.2);
    let f = Frequency::from_mhz(1600);
    let mut out =
        String::from("Figure 4.5 — leakage and dynamic power vs temperature (f = 1.6 GHz)\n");
    for t in (40..=80).step_by(10) {
        let leak = trained.predict_leakage(PowerDomain::BigCpu, t as f64, v);
        let dynamic = trained.predict_dynamic(PowerDomain::BigCpu, v, f);
        let _ = writeln!(
            out,
            "  {t:3} degC : leakage {leak:6.3} W   dynamic {dynamic:6.3} W"
        );
    }
    out.push_str("  (dynamic power is temperature independent; leakage grows exponentially)\n");
    Ok(out)
}

/// Figure 4.6 — leakage vs dynamic power over frequency at constant temperature.
pub fn fig4_6(context: &ExperimentContext) -> Result<String, SimError> {
    let spec = SocSpec::odroid_xu_e();
    let mut trained = context.calibration.power_model.clone();
    train_activity(&mut trained, 0.31);
    let mut out =
        String::from("Figure 4.6 — leakage and dynamic power vs frequency (constant 55 degC)\n");
    for op in spec.big_opps().points() {
        if op.frequency.mhz() % 200 != 0 {
            continue;
        }
        let leak = trained.predict_leakage(PowerDomain::BigCpu, 55.0, op.voltage);
        let dynamic = trained.predict_dynamic(PowerDomain::BigCpu, op.voltage, op.frequency);
        let _ = writeln!(
            out,
            "  {:4} MHz : leakage {leak:6.3} W   dynamic {dynamic:6.3} W",
            op.frequency.mhz()
        );
    }
    out.push_str("  (dynamic power grows ~V^2*f; leakage only through the supply voltage)\n");
    Ok(out)
}

/// Figure 4.7 — power model validation: predicted vs measured total power over
/// a temperature sweep.
pub fn fig4_7(context: &ExperimentContext) -> Result<String, SimError> {
    let spec = SocSpec::odroid_xu_e();
    let mut trained = context.calibration.power_model.clone();
    let freq = Frequency::from_mhz(1600);
    let volts = spec.big_opps().voltage_for(freq)?;
    let mut state = PlatformState::default_for(&spec);
    state.big_frequency = freq;
    let demand = workload::Demand {
        cpu_streams: 0.5,
        activity_factor: 0.10,
        gpu_utilization: 0.0,
        memory_intensity: 0.1,
        frequency_scalability: 1.0,
    };
    let mut out = String::from("Figure 4.7 — power model validation (predicted vs measured)\n");
    let mut worst_rel = 0.0f64;
    for &setpoint in &FurnaceDataset::PAPER_SWEEP_C {
        let mut plant = PhysicalPlant::new(
            spec.clone().with_ambient_c(setpoint),
            PlantPowerParams::default(),
        );
        plant.reset_temps(setpoint);
        let mut measured = 0.0;
        let mut temp = setpoint;
        let steps = if context.quick { 600 } else { 1500 };
        for _ in 0..steps {
            let step = plant.step_interval(&state, &demand, FanLevel::Off, setpoint, 0.1)?;
            measured = step.domain_power.big_w;
            temp = step
                .core_temps_c
                .into_iter()
                .fold(f64::NEG_INFINITY, f64::max);
        }
        // Let the run-time estimator observe a couple of samples, then predict.
        for _ in 0..10 {
            trained.observe(PowerDomain::BigCpu, measured, temp, volts, freq);
        }
        let predicted = trained.predict_total(PowerDomain::BigCpu, temp, volts, freq);
        let rel = (predicted - measured).abs() / measured;
        worst_rel = worst_rel.max(rel);
        let _ = writeln!(
            out,
            "  die {temp:5.1} degC : measured {measured:6.3} W   predicted {predicted:6.3} W   ({:+5.1}%)",
            100.0 * (predicted - measured) / measured
        );
    }
    let _ = writeln!(out, "  worst relative error {:.1}%", 100.0 * worst_rel);
    Ok(out)
}

/// Figure 4.8 — PRBS excitation of the big cluster: power signal and core-0
/// temperature response.
pub fn fig4_8(context: &ExperimentContext) -> Result<String, SimError> {
    let spec = SocSpec::odroid_xu_e();
    let duration_s = if context.quick { 300.0 } else { 1050.0 };
    let steps = (duration_s / 0.1) as usize;
    let prbs = PrbsSignal::generate(
        PrbsConfig {
            register_bits: 11,
            hold_intervals: 20,
            low: 0.0,
            high: 1.0,
            seed: 0x23,
        },
        steps,
    )
    .map_err(|e| SimError::Identification(e.to_string()))?;
    let mut plant = PhysicalPlant::new(spec.clone(), PlantPowerParams::default());
    let mut state = PlatformState::default_for(&spec);
    let mut times = Vec::new();
    let mut powers = Vec::new();
    let mut temps = Vec::new();
    for (k, &bit) in prbs.values().iter().enumerate() {
        let high = bit > 0.5;
        state.big_frequency = if high {
            spec.big_opps().highest().frequency
        } else {
            spec.big_opps().lowest().frequency
        };
        let demand = workload::Demand {
            cpu_streams: 4.0,
            activity_factor: if high { 0.75 } else { 0.55 },
            gpu_utilization: 0.0,
            memory_intensity: 0.1,
            frequency_scalability: 1.0,
        };
        let step = plant.step_interval(&state, &demand, FanLevel::Off, 28.0, 0.1)?;
        times.push(k as f64 * 0.1);
        powers.push(step.domain_power.big_w);
        temps.push(step.core_temps_c[0]);
    }
    let mut out = String::from("Figure 4.8 — PRBS test signal for the big cluster\n");
    out.push_str(&crate::format_series(
        "(a) big-cluster power",
        &times,
        &powers,
        steps / 30,
        "W",
    ));
    out.push_str(&crate::format_series(
        "(b) core-0 temperature",
        &times,
        &temps,
        steps / 30,
        "degC",
    ));
    Ok(out)
}

/// Figure 4.9 — thermal model validation: measured vs 1 s-ahead predicted
/// temperature while running Blowfish.
pub fn fig4_9(context: &ExperimentContext) -> Result<String, SimError> {
    let (dataset, _) = benchmark_identification_log(BenchmarkId::Blowfish, context.quick)?;
    let model = context.calibration.predictor.model();
    let report = n_step_prediction(model, &dataset, 10)
        .map_err(|e| SimError::Identification(e.to_string()))?;
    let mut out = String::from(
        "Figure 4.9 — thermal model validation for Blowfish (1 s prediction interval)\n",
    );
    let _ = writeln!(
        out,
        "  samples {}   mean error {:.2} degC ({:.2}%)   max error {:.2} degC",
        report.samples, report.mean_abs_error_c, report.mean_percent_error, report.max_abs_error_c
    );
    Ok(out)
}

/// Figure 4.10 — average prediction error vs prediction horizon (Templerun).
pub fn fig4_10(context: &ExperimentContext) -> Result<String, SimError> {
    let (dataset, _) = benchmark_identification_log(BenchmarkId::Templerun, context.quick)?;
    let model = context.calibration.predictor.model();
    let mut out =
        String::from("Figure 4.10 — average temperature prediction error vs horizon (Templerun)\n");
    for horizon in [5usize, 10, 20, 30, 40, 50] {
        let report = n_step_prediction(model, &dataset, horizon)
            .map_err(|e| SimError::Identification(e.to_string()))?;
        let _ = writeln!(
            out,
            "  horizon {:4.1} s : mean error {:5.2}%  ({:4.2} degC)",
            report.horizon_s, report.mean_percent_error, report.mean_abs_error_c
        );
    }
    Ok(out)
}

/// Figure 6.2 — 1 s prediction error for every benchmark of Table 6.4.
pub fn fig6_2(context: &ExperimentContext) -> Result<String, SimError> {
    let model = context.calibration.predictor.model();
    let mut out = String::from(
        "Figure 6.2 — temperature prediction error for all benchmarks (1 s horizon)\n",
    );
    let mut worst: (f64, &str) = (0.0, "-");
    let mut sum = 0.0;
    let mut count = 0.0;
    for benchmark in BenchmarkId::PAPER_SET {
        let (dataset, _) = benchmark_identification_log(benchmark, context.quick)?;
        let report = n_step_prediction(model, &dataset, 10)
            .map_err(|e| SimError::Identification(e.to_string()))?;
        let _ = writeln!(
            out,
            "  {:<12} mean {:5.2}%   ({:4.2} degC)",
            benchmark.name(),
            report.mean_percent_error,
            report.mean_abs_error_c
        );
        if report.mean_percent_error > worst.0 {
            worst = (report.mean_percent_error, benchmark.name());
        }
        sum += report.mean_percent_error;
        count += 1.0;
    }
    let _ = writeln!(
        out,
        "  average over benchmarks {:.2}%   worst benchmark {} at {:.2}%  (paper: <3% average, <4% worst)",
        sum / count,
        worst.1,
        worst.0
    );
    Ok(out)
}

/// Runs a benchmark under the default (without fan) configuration while
/// logging temperatures/powers through the sensors, producing a dataset for
/// prediction-accuracy evaluation.
fn benchmark_identification_log(
    benchmark: BenchmarkId,
    quick: bool,
) -> Result<(IdentificationDataset, f64), SimError> {
    let spec = SocSpec::odroid_xu_e();
    let mut plant = PhysicalPlant::new(spec.clone(), PlantPowerParams::default());
    let mut sensors = SensorSuite::odroid_defaults(benchmark.name().len() as u64 * 77);
    let mut workload = WorkloadState::new(benchmark, 5);
    let mut dataset = IdentificationDataset::new(4, 4, 0.1, 28.0)
        .map_err(|e| SimError::Identification(e.to_string()))?;
    let state = PlatformState::default_for(&spec);
    let cap_steps = if quick { 900 } else { 2500 };
    let mut time = 0.0;
    for _ in 0..cap_steps {
        let demand = workload.demand();
        let step = plant.step_interval(&state, &demand, FanLevel::Off, 28.0, 0.1)?;
        workload.advance(step.work_done);
        let reading = sensors.sample(step.core_temps_c, &step.domain_power, step.platform_power_w);
        dataset
            .push(
                Vector::from_slice(&reading.core_temps_c),
                Vector::from_slice(&reading.domain_power.to_vec()),
            )
            .map_err(|e| SimError::Identification(e.to_string()))?;
        time += 0.1;
        if workload.is_complete() {
            break;
        }
        // Stop early if the unmanaged run is getting dangerously hot, exactly
        // like the paper's without-fan runs.
        if reading.max_core_temp_c() > 82.0 {
            break;
        }
    }
    Ok((dataset, time))
}

/// Figure 1.1 companion helper: trains the activity estimator of a cloned
/// power model so the dynamic component reflects the light characterisation
/// workload.
fn train_activity(model: &mut PowerModel, dynamic_w: f64) {
    let v = Voltage::from_volts(1.2);
    let f = Frequency::from_mhz(1600);
    let leak = model.predict_leakage(PowerDomain::BigCpu, 55.0, v);
    for _ in 0..10 {
        model.observe(PowerDomain::BigCpu, dynamic_w + leak, 55.0, v, f);
    }
}

/// Convenience used by the binary: the calibration campaign itself, exposed so
/// `--only calibration` can re-run and report it.
pub fn calibration_report(quick: bool) -> Result<String, SimError> {
    let campaign = if quick {
        CalibrationCampaign {
            prbs_duration_s: 300.0,
            run_furnace: false,
            ..CalibrationCampaign::default()
        }
    } else {
        CalibrationCampaign::default()
    };
    let calibration = campaign.run(42)?;
    let mut out = String::from("Characterisation campaign summary\n");
    let _ = writeln!(
        out,
        "  identified model: stable={}  1 s prediction error {:.2}% (max {:.2}%)",
        calibration.predictor.model().is_stable(),
        calibration.validation.mean_percent_error,
        calibration.validation.max_percent_error
    );
    let _ = writeln!(
        out,
        "  A matrix spectral radius {:.4}",
        calibration
            .predictor
            .model()
            .spectral_radius()
            .map_err(|e| SimError::Thermal(e.to_string()))?
    );
    Ok(out)
}

/// Keeps `ClusterKind` referenced so the import list stays tidy even when only
/// some experiments are compiled in.
#[doc(hidden)]
pub fn _unused(_: ClusterKind) {}

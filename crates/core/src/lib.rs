//! Predictive dynamic thermal and power management (DTPM).
//!
//! This crate is the paper's primary contribution (Chapters 3 and 5): a
//! proactive thermal/power manager for big.LITTLE MPSoCs that
//!
//! 1. **predicts** the hotspot temperatures one prediction interval ahead
//!    using the identified thermal model ([`predictor::ThermalPredictor`]),
//! 2. when — and only when — a violation of the temperature constraint is
//!    predicted, **computes a power budget** that is guaranteed to keep the
//!    temperature within the constraint ([`budget`], Eqs. 5.4–5.6),
//! 3. **translates the budget into actuator settings**: the maximum feasible
//!    big-cluster frequency (Eq. 5.7), shutting down the hottest core when one
//!    core runs away from the others (Eq. 5.9), migrating to the little
//!    cluster, and finally throttling the GPU
//!    ([`policy::DtpmPolicy`]),
//! 4. as the future-work extension, **distributes** the budget across the
//!    heterogeneous resources by minimising the execution-time cost function
//!    of Eq. 7.1 under the power constraint of Eq. 7.2
//!    ([`distribution`]).
//!
//! When no violation is predicted the policy is non-intrusive: the decisions
//! of the stock governors are affirmed unchanged.
//!
//! # Example
//!
//! ```
//! use dtpm::{DtpmConfig, DtpmPolicy, DtpmInputs, ThermalPredictor};
//! use numeric::Matrix;
//! use power_model::{DomainPower, PowerModel};
//! use soc_model::{PlatformState, SocSpec};
//! use thermal_model::DiscreteThermalModel;
//!
//! # fn main() -> Result<(), dtpm::DtpmError> {
//! let spec = SocSpec::odroid_xu_e();
//! // A small identified model (in practice produced by the sysid crate).
//! let a = Matrix::identity(4).scale(0.94);
//! let b = Matrix::from_rows(&[
//!     &[0.05, 0.01, 0.015, 0.008],
//!     &[0.05, 0.01, 0.012, 0.008],
//!     &[0.05, 0.01, 0.015, 0.008],
//!     &[0.05, 0.01, 0.012, 0.008],
//! ]).unwrap();
//! let model = DiscreteThermalModel::new(a, b, 0.1).unwrap();
//! let predictor = ThermalPredictor::new(model, spec.ambient_c())?;
//! let policy = DtpmPolicy::new(DtpmConfig::default(), predictor)?;
//!
//! let power_model = PowerModel::exynos5410_defaults();
//! let proposed = PlatformState::default_for(&spec);
//! let decision = policy.decide(
//!     &DtpmInputs {
//!         spec: &spec,
//!         proposed: proposed.clone(),
//!         core_temps_c: [45.0; 4],
//!         measured_power: DomainPower::new(1.0, 0.05, 0.1, 0.3),
//!     },
//!     &power_model,
//! )?;
//! // Far below the constraint: the default decision is affirmed.
//! assert_eq!(decision.state, proposed);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod budget;
pub mod config;
pub mod distribution;
pub mod error;
pub mod panel_predictor;
pub mod policy;
pub mod predictor;

pub use budget::PowerBudget;
pub use config::DtpmConfig;
pub use distribution::{distribute_budget, DistributionMethod, DistributionResult, ResourceLoad};
pub use error::DtpmError;
pub use panel_predictor::BatchPredictor;
pub use policy::{DtpmAction, DtpmDecision, DtpmInputs, DtpmPolicy};
pub use predictor::ThermalPredictor;
pub use thermal_model::HorizonMap;

//! Thermal prediction from the identified state-space model.

use numeric::Vector;
use power_model::DomainPower;
use serde::{Deserialize, Serialize};
use thermal_model::DiscreteThermalModel;

use crate::DtpmError;

/// Number of thermal hotspots (the four big cores with temperature sensors).
pub const HOTSPOT_COUNT: usize = 4;

/// Wraps the identified thermal model and the ambient temperature it was
/// identified against, and answers the predictions the DTPM policy needs in
/// absolute °C.
///
/// # Example
///
/// ```
/// use dtpm::ThermalPredictor;
/// use numeric::Matrix;
/// use power_model::DomainPower;
/// use thermal_model::DiscreteThermalModel;
///
/// # fn main() -> Result<(), dtpm::DtpmError> {
/// let a = Matrix::identity(4).scale(0.95);
/// let b = Matrix::from_rows(&[
///     &[0.04, 0.01, 0.01, 0.005],
///     &[0.04, 0.01, 0.01, 0.005],
///     &[0.04, 0.01, 0.01, 0.005],
///     &[0.04, 0.01, 0.01, 0.005],
/// ]).unwrap();
/// let model = DiscreteThermalModel::new(a, b, 0.1).unwrap();
/// let predictor = ThermalPredictor::new(model, 28.0)?;
/// let future = predictor.predict(
///     [50.0, 49.0, 50.5, 49.5],
///     &DomainPower::new(3.0, 0.05, 0.3, 0.4),
///     10,
/// )?;
/// assert!(future.iter().all(|t| *t > 28.0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThermalPredictor {
    model: DiscreteThermalModel,
    ambient_c: f64,
}

/// Reusable buffers for the allocation-free prediction path
/// ([`ThermalPredictor::predict_with`]).
///
/// The DTPM policy holds one of these and reuses it for every control
/// interval, so steady-state prediction does not touch the heap.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PredictorScratch {
    /// Temperatures relative to ambient (input/output of the model loop).
    rel: Vector,
    /// Power inputs.
    p: Vector,
    /// Ping-pong buffer for the model iteration.
    tmp: Vector,
}

impl ThermalPredictor {
    /// Creates a predictor from an identified model and the ambient
    /// temperature its training data was referenced to.
    ///
    /// # Errors
    ///
    /// Returns [`DtpmError::ModelShape`] if the model does not have four
    /// states and four inputs.
    pub fn new(model: DiscreteThermalModel, ambient_c: f64) -> Result<Self, DtpmError> {
        if model.state_count() != HOTSPOT_COUNT
            || model.input_count() != DomainPower::default().to_vec().len()
        {
            return Err(DtpmError::ModelShape {
                states: model.state_count(),
                inputs: model.input_count(),
            });
        }
        Ok(ThermalPredictor { model, ambient_c })
    }

    /// The wrapped identified model.
    pub fn model(&self) -> &DiscreteThermalModel {
        &self.model
    }

    /// Ambient temperature the model is referenced to, in °C.
    pub fn ambient_c(&self) -> f64 {
        self.ambient_c
    }

    /// Predicts the hotspot temperatures `horizon` control intervals ahead
    /// assuming the domain powers stay constant, returning absolute °C.
    ///
    /// # Errors
    ///
    /// Propagates thermal-model errors (zero horizon, dimension mismatch).
    pub fn predict(
        &self,
        core_temps_c: [f64; HOTSPOT_COUNT],
        powers: &DomainPower,
        horizon: usize,
    ) -> Result<[f64; HOTSPOT_COUNT], DtpmError> {
        self.predict_with(
            core_temps_c,
            powers,
            horizon,
            &mut PredictorScratch::default(),
        )
    }

    /// Allocation-free form of [`ThermalPredictor::predict`]: all intermediate
    /// state lives in `scratch`, which callers on the control path hold and
    /// reuse across intervals.
    ///
    /// # Errors
    ///
    /// Propagates thermal-model errors (zero horizon, dimension mismatch).
    pub fn predict_with(
        &self,
        core_temps_c: [f64; HOTSPOT_COUNT],
        powers: &DomainPower,
        horizon: usize,
        scratch: &mut PredictorScratch,
    ) -> Result<[f64; HOTSPOT_COUNT], DtpmError> {
        scratch.rel.resize(HOTSPOT_COUNT, 0.0);
        for (i, t) in core_temps_c.iter().enumerate() {
            scratch.rel[i] = t - self.ambient_c;
        }
        let p = powers.as_array();
        scratch.p.resize(p.len(), 0.0);
        scratch.p.as_mut_slice().copy_from_slice(&p);
        self.model.predict_constant_power_into(
            &mut scratch.rel,
            &scratch.p,
            horizon,
            &mut scratch.tmp,
        )?;
        let mut out = [0.0; HOTSPOT_COUNT];
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = scratch.rel[i] + self.ambient_c;
        }
        Ok(out)
    }

    /// Predicted maximum hotspot temperature at the horizon (°C),
    /// allocation-free form of [`ThermalPredictor::predict_peak`].
    ///
    /// # Errors
    ///
    /// Propagates thermal-model errors.
    pub fn predict_peak_with(
        &self,
        core_temps_c: [f64; HOTSPOT_COUNT],
        powers: &DomainPower,
        horizon: usize,
        scratch: &mut PredictorScratch,
    ) -> Result<f64, DtpmError> {
        Ok(self
            .predict_with(core_temps_c, powers, horizon, scratch)?
            .into_iter()
            .fold(f64::NEG_INFINITY, f64::max))
    }

    /// Predicted maximum hotspot temperature at the horizon (°C).
    ///
    /// # Errors
    ///
    /// Propagates thermal-model errors.
    pub fn predict_peak(
        &self,
        core_temps_c: [f64; HOTSPOT_COUNT],
        powers: &DomainPower,
        horizon: usize,
    ) -> Result<f64, DtpmError> {
        Ok(self
            .predict(core_temps_c, powers, horizon)?
            .into_iter()
            .fold(f64::NEG_INFINITY, f64::max))
    }

    /// Returns `true` if a thermal violation of `constraint_c` is predicted at
    /// the horizon for the given constant powers.
    ///
    /// # Errors
    ///
    /// Propagates thermal-model errors.
    pub fn violation_predicted(
        &self,
        core_temps_c: [f64; HOTSPOT_COUNT],
        powers: &DomainPower,
        horizon: usize,
        constraint_c: f64,
    ) -> Result<bool, DtpmError> {
        Ok(self.predict_peak(core_temps_c, powers, horizon)? > constraint_c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numeric::Matrix;

    fn example_predictor() -> ThermalPredictor {
        let a = Matrix::from_rows(&[
            &[0.71, 0.09, 0.09, 0.09],
            &[0.09, 0.71, 0.09, 0.09],
            &[0.09, 0.09, 0.71, 0.09],
            &[0.09, 0.09, 0.09, 0.71],
        ])
        .unwrap();
        let b = Matrix::from_rows(&[
            &[0.26, 0.10, 0.16, 0.06],
            &[0.24, 0.12, 0.10, 0.06],
            &[0.26, 0.10, 0.16, 0.06],
            &[0.24, 0.12, 0.10, 0.06],
        ])
        .unwrap();
        ThermalPredictor::new(DiscreteThermalModel::new(a, b, 0.1).unwrap(), 28.0).unwrap()
    }

    #[test]
    fn rejects_wrong_model_shape() {
        let model =
            DiscreteThermalModel::new(Matrix::identity(2).scale(0.9), Matrix::zeros(2, 4), 0.1)
                .unwrap();
        assert!(matches!(
            ThermalPredictor::new(model, 25.0),
            Err(DtpmError::ModelShape { .. })
        ));
    }

    #[test]
    fn more_power_predicts_higher_temperature() {
        let p = example_predictor();
        let temps = [50.0, 49.0, 50.0, 49.0];
        let low = p
            .predict_peak(temps, &DomainPower::new(0.5, 0.05, 0.1, 0.3), 10)
            .unwrap();
        let high = p
            .predict_peak(temps, &DomainPower::new(4.0, 0.05, 0.1, 0.3), 10)
            .unwrap();
        assert!(high > low + 1.0, "high {high} vs low {low}");
    }

    #[test]
    fn longer_horizon_moves_further_towards_equilibrium() {
        let p = example_predictor();
        let temps = [40.0; 4];
        let powers = DomainPower::new(4.0, 0.05, 0.3, 0.4);
        let one = p.predict_peak(temps, &powers, 1).unwrap();
        let ten = p.predict_peak(temps, &powers, 10).unwrap();
        let fifty = p.predict_peak(temps, &powers, 50).unwrap();
        assert!(one < ten && ten < fifty);
    }

    #[test]
    fn zero_power_cools_towards_ambient() {
        let p = example_predictor();
        let predicted = p
            .predict([60.0, 58.0, 59.0, 61.0], &DomainPower::default(), 100)
            .unwrap();
        for t in predicted {
            assert!((28.0 - 1e-9..45.0).contains(&t));
        }
    }

    #[test]
    fn violation_detection_uses_constraint() {
        let p = example_predictor();
        let temps = [61.0, 60.0, 61.5, 60.5];
        let powers = DomainPower::new(3.5, 0.05, 0.3, 0.4);
        assert!(p.violation_predicted(temps, &powers, 10, 63.0).unwrap());
        assert!(!p.violation_predicted(temps, &powers, 10, 90.0).unwrap());
    }

    #[test]
    fn accessors_expose_model_and_ambient() {
        let p = example_predictor();
        assert_eq!(p.ambient_c(), 28.0);
        assert_eq!(p.model().state_count(), 4);
    }
}

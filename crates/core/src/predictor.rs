//! Thermal prediction from the identified state-space model.
//!
//! # One-shot horizon prediction and the two-phase decide
//!
//! The policy predicts the hotspot temperatures one prediction interval
//! (`horizon` control steps) ahead on **every** control interval, so the
//! prediction is the control path's hot loop. Instead of iterating the
//! discrete model `horizon` times (two mat-vecs per step), the predictor
//! applies the precomputed affine horizon map
//! [`thermal_model::HorizonMap`] — `T[k+n] = Aₙ·T[k] + Bₙ·P` — a single
//! application whatever the horizon, agreeing with the iterated model to
//! ≤ 1e-12 °C ([`ThermalPredictor::predict_iterated`] keeps the loop as the
//! equivalence reference). The maps are cached *inside* the predictor behind
//! an [`Arc`], and clones share the cache: a lockstep sweep that clones one
//! calibrated predictor into K per-lane policies computes `(Aₙ, Bₙ)` once
//! for the whole sweep, not once per lane.
//!
//! At sweep scale the decision itself splits into two phases
//! (`platform_sim`'s executor drives this):
//!
//! 1. **Batched classify** — every lane's proposed powers are assembled into
//!    a [`crate::BatchPredictor`] panel and one fused panel application
//!    predicts all lanes at once (the horizon matrices are loaded once per
//!    interval for *all* lanes). Lanes whose predicted peak stays below the
//!    constraint are affirmed right there — the steady-state common case
//!    pays **zero** per-lane mat-vecs.
//! 2. **Scalar actuate** — only the (rare) violating lanes fall through to
//!    the full [`crate::DtpmPolicy`] actuation walk: power budget from the
//!    same horizon map, frequency scan, core shutdown, migration.
//!
//! The scalar one-shot application accumulates in exactly the panel
//! kernels' per-lane order, so batched and scalar classification are
//! bit-identical — batching is purely a throughput optimisation and can
//! never flip a decision.

use std::sync::{Arc, RwLock};

use power_model::DomainPower;
use serde::{Deserialize, Serialize};
use thermal_model::{DiscreteThermalModel, HorizonMap};

use crate::DtpmError;

/// Number of thermal hotspots (the four big cores with temperature sensors).
pub const HOTSPOT_COUNT: usize = 4;

/// Wraps the identified thermal model and the ambient temperature it was
/// identified against, and answers the predictions the DTPM policy needs in
/// absolute °C.
///
/// # Example
///
/// ```
/// use dtpm::ThermalPredictor;
/// use numeric::Matrix;
/// use power_model::DomainPower;
/// use thermal_model::DiscreteThermalModel;
///
/// # fn main() -> Result<(), dtpm::DtpmError> {
/// let a = Matrix::identity(4).scale(0.95);
/// let b = Matrix::from_rows(&[
///     &[0.04, 0.01, 0.01, 0.005],
///     &[0.04, 0.01, 0.01, 0.005],
///     &[0.04, 0.01, 0.01, 0.005],
///     &[0.04, 0.01, 0.01, 0.005],
/// ]).unwrap();
/// let model = DiscreteThermalModel::new(a, b, 0.1).unwrap();
/// let predictor = ThermalPredictor::new(model, 28.0)?;
/// let future = predictor.predict(
///     [50.0, 49.0, 50.5, 49.5],
///     &DomainPower::new(3.0, 0.05, 0.3, 0.4),
///     10,
/// )?;
/// assert!(future.iter().all(|t| *t > 28.0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ThermalPredictor {
    model: DiscreteThermalModel,
    ambient_c: f64,
    /// Precomputed horizon maps, one per horizon ever requested. Shared
    /// (`Arc`) so clones of this predictor — e.g. the per-lane policies of a
    /// lockstep sweep — reuse the same `(Aₙ, Bₙ)` instead of recomputing
    /// them per lane. Rebuilt lazily after deserialisation.
    #[serde(skip)]
    maps: Arc<RwLock<Vec<Arc<HorizonMap>>>>,
}

/// Two predictors are equal when they would make the same predictions: the
/// lazily-built horizon-map cache is deliberately excluded (it only records
/// which horizons have already been requested).
impl PartialEq for ThermalPredictor {
    fn eq(&self, other: &Self) -> bool {
        self.model == other.model && self.ambient_c == other.ambient_c
    }
}

impl ThermalPredictor {
    /// Creates a predictor from an identified model and the ambient
    /// temperature its training data was referenced to.
    ///
    /// # Errors
    ///
    /// Returns [`DtpmError::ModelShape`] if the model does not have four
    /// states and four inputs.
    pub fn new(model: DiscreteThermalModel, ambient_c: f64) -> Result<Self, DtpmError> {
        if model.state_count() != HOTSPOT_COUNT
            || model.input_count() != DomainPower::default().to_vec().len()
        {
            return Err(DtpmError::ModelShape {
                states: model.state_count(),
                inputs: model.input_count(),
            });
        }
        Ok(ThermalPredictor {
            model,
            ambient_c,
            maps: Arc::default(),
        })
    }

    /// The wrapped identified model.
    pub fn model(&self) -> &DiscreteThermalModel {
        &self.model
    }

    /// Ambient temperature the model is referenced to, in °C.
    pub fn ambient_c(&self) -> f64 {
        self.ambient_c
    }

    /// The precomputed one-shot horizon map for `horizon` control steps,
    /// computed at most once per horizon and shared across clones of this
    /// predictor (see the [module docs](self)). Hot-path callers fetch the
    /// `Arc` once and hold it; [`ThermalPredictor::predict`] looks it up per
    /// call.
    ///
    /// # Errors
    ///
    /// Returns an error for a zero horizon.
    pub fn horizon_map(&self, horizon: usize) -> Result<Arc<HorizonMap>, DtpmError> {
        {
            let maps = self.maps.read().expect("horizon-map cache poisoned");
            if let Some(map) = maps.iter().find(|m| m.horizon() == horizon) {
                return Ok(Arc::clone(map));
            }
        }
        let map = Arc::new(self.model.horizon_map(horizon)?);
        let mut maps = self.maps.write().expect("horizon-map cache poisoned");
        // Another clone may have raced us to the write lock: reuse its map so
        // every holder of this cache sees one canonical map per horizon.
        if let Some(existing) = maps.iter().find(|m| m.horizon() == horizon) {
            return Ok(Arc::clone(existing));
        }
        maps.push(Arc::clone(&map));
        Ok(map)
    }

    /// Predicts the hotspot temperatures `horizon` control intervals ahead
    /// assuming the domain powers stay constant, returning absolute °C.
    ///
    /// One application of the cached horizon map — no horizon-length loop,
    /// no allocation in steady state.
    ///
    /// # Errors
    ///
    /// Propagates thermal-model errors (zero horizon).
    pub fn predict(
        &self,
        core_temps_c: [f64; HOTSPOT_COUNT],
        powers: &DomainPower,
        horizon: usize,
    ) -> Result<[f64; HOTSPOT_COUNT], DtpmError> {
        let map = self.horizon_map(horizon)?;
        self.predict_with(core_temps_c, powers, &map)
    }

    /// One-shot prediction through an explicitly held horizon map (the form
    /// the control hot path uses: fetch the [`Arc`] once via
    /// [`ThermalPredictor::horizon_map`], apply it every interval).
    ///
    /// Bit-identical per lane to a [`crate::BatchPredictor`] panel
    /// application of the same map.
    ///
    /// # Errors
    ///
    /// Returns an error if `map` does not match the model's dimensions.
    pub fn predict_with(
        &self,
        core_temps_c: [f64; HOTSPOT_COUNT],
        powers: &DomainPower,
        map: &HorizonMap,
    ) -> Result<[f64; HOTSPOT_COUNT], DtpmError> {
        let mut rel = [0.0; HOTSPOT_COUNT];
        for (slot, t) in rel.iter_mut().zip(core_temps_c) {
            *slot = t - self.ambient_c;
        }
        let p = powers.as_array();
        let mut out = [0.0; HOTSPOT_COUNT];
        map.apply_into(&rel, &p, &mut out)?;
        for slot in out.iter_mut() {
            *slot += self.ambient_c;
        }
        Ok(out)
    }

    /// The pre-map prediction path: iterates the discrete model `horizon`
    /// times. Kept as the equivalence reference (the one-shot map agrees to
    /// ≤ 1e-12 °C) and as the baseline of the `sweep_decide` benchmark; the
    /// control path itself uses [`ThermalPredictor::predict_with`].
    ///
    /// # Errors
    ///
    /// Propagates thermal-model errors (zero horizon).
    pub fn predict_iterated(
        &self,
        core_temps_c: [f64; HOTSPOT_COUNT],
        powers: &DomainPower,
        horizon: usize,
    ) -> Result<[f64; HOTSPOT_COUNT], DtpmError> {
        let mut rel = numeric::Vector::zeros(HOTSPOT_COUNT);
        for (i, t) in core_temps_c.iter().enumerate() {
            rel[i] = t - self.ambient_c;
        }
        let p = numeric::Vector::from_slice(&powers.as_array());
        let mut tmp = numeric::Vector::zeros(HOTSPOT_COUNT);
        self.model
            .predict_constant_power_into(&mut rel, &p, horizon, &mut tmp)?;
        let mut out = [0.0; HOTSPOT_COUNT];
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = rel[i] + self.ambient_c;
        }
        Ok(out)
    }

    /// Predicted maximum hotspot temperature at the horizon (°C) through an
    /// explicitly held horizon map.
    ///
    /// # Errors
    ///
    /// Propagates thermal-model errors.
    pub fn predict_peak_with(
        &self,
        core_temps_c: [f64; HOTSPOT_COUNT],
        powers: &DomainPower,
        map: &HorizonMap,
    ) -> Result<f64, DtpmError> {
        Ok(self
            .predict_with(core_temps_c, powers, map)?
            .into_iter()
            .fold(f64::NEG_INFINITY, f64::max))
    }

    /// Predicted maximum hotspot temperature at the horizon (°C).
    ///
    /// # Errors
    ///
    /// Propagates thermal-model errors.
    pub fn predict_peak(
        &self,
        core_temps_c: [f64; HOTSPOT_COUNT],
        powers: &DomainPower,
        horizon: usize,
    ) -> Result<f64, DtpmError> {
        Ok(self
            .predict(core_temps_c, powers, horizon)?
            .into_iter()
            .fold(f64::NEG_INFINITY, f64::max))
    }

    /// Iterated-model form of [`ThermalPredictor::predict_peak`] (the
    /// `sweep_decide` baseline).
    ///
    /// # Errors
    ///
    /// Propagates thermal-model errors.
    pub fn predict_peak_iterated(
        &self,
        core_temps_c: [f64; HOTSPOT_COUNT],
        powers: &DomainPower,
        horizon: usize,
    ) -> Result<f64, DtpmError> {
        Ok(self
            .predict_iterated(core_temps_c, powers, horizon)?
            .into_iter()
            .fold(f64::NEG_INFINITY, f64::max))
    }

    /// Returns `true` if a thermal violation of `constraint_c` is predicted at
    /// the horizon for the given constant powers.
    ///
    /// # Errors
    ///
    /// Propagates thermal-model errors.
    pub fn violation_predicted(
        &self,
        core_temps_c: [f64; HOTSPOT_COUNT],
        powers: &DomainPower,
        horizon: usize,
        constraint_c: f64,
    ) -> Result<bool, DtpmError> {
        Ok(self.predict_peak(core_temps_c, powers, horizon)? > constraint_c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numeric::Matrix;

    fn example_predictor() -> ThermalPredictor {
        let a = Matrix::from_rows(&[
            &[0.71, 0.09, 0.09, 0.09],
            &[0.09, 0.71, 0.09, 0.09],
            &[0.09, 0.09, 0.71, 0.09],
            &[0.09, 0.09, 0.09, 0.71],
        ])
        .unwrap();
        let b = Matrix::from_rows(&[
            &[0.26, 0.10, 0.16, 0.06],
            &[0.24, 0.12, 0.10, 0.06],
            &[0.26, 0.10, 0.16, 0.06],
            &[0.24, 0.12, 0.10, 0.06],
        ])
        .unwrap();
        ThermalPredictor::new(DiscreteThermalModel::new(a, b, 0.1).unwrap(), 28.0).unwrap()
    }

    #[test]
    fn rejects_wrong_model_shape() {
        let model =
            DiscreteThermalModel::new(Matrix::identity(2).scale(0.9), Matrix::zeros(2, 4), 0.1)
                .unwrap();
        assert!(matches!(
            ThermalPredictor::new(model, 25.0),
            Err(DtpmError::ModelShape { .. })
        ));
    }

    #[test]
    fn more_power_predicts_higher_temperature() {
        let p = example_predictor();
        let temps = [50.0, 49.0, 50.0, 49.0];
        let low = p
            .predict_peak(temps, &DomainPower::new(0.5, 0.05, 0.1, 0.3), 10)
            .unwrap();
        let high = p
            .predict_peak(temps, &DomainPower::new(4.0, 0.05, 0.1, 0.3), 10)
            .unwrap();
        assert!(high > low + 1.0, "high {high} vs low {low}");
    }

    #[test]
    fn longer_horizon_moves_further_towards_equilibrium() {
        let p = example_predictor();
        let temps = [40.0; 4];
        let powers = DomainPower::new(4.0, 0.05, 0.3, 0.4);
        let one = p.predict_peak(temps, &powers, 1).unwrap();
        let ten = p.predict_peak(temps, &powers, 10).unwrap();
        let fifty = p.predict_peak(temps, &powers, 50).unwrap();
        assert!(one < ten && ten < fifty);
    }

    #[test]
    fn zero_power_cools_towards_ambient() {
        let p = example_predictor();
        let predicted = p
            .predict([60.0, 58.0, 59.0, 61.0], &DomainPower::default(), 100)
            .unwrap();
        for t in predicted {
            assert!((28.0 - 1e-9..45.0).contains(&t));
        }
    }

    #[test]
    fn violation_detection_uses_constraint() {
        let p = example_predictor();
        let temps = [61.0, 60.0, 61.5, 60.5];
        let powers = DomainPower::new(3.5, 0.05, 0.3, 0.4);
        assert!(p.violation_predicted(temps, &powers, 10, 63.0).unwrap());
        assert!(!p.violation_predicted(temps, &powers, 10, 90.0).unwrap());
    }

    #[test]
    fn accessors_expose_model_and_ambient() {
        let p = example_predictor();
        assert_eq!(p.ambient_c(), 28.0);
        assert_eq!(p.model().state_count(), 4);
    }

    #[test]
    fn one_shot_prediction_tracks_the_iterated_model() {
        let p = example_predictor();
        let temps = [55.0, 52.5, 56.0, 54.0];
        let powers = DomainPower::new(3.2, 0.05, 0.25, 0.4);
        for horizon in [1, 4, 10, 32] {
            let one_shot = p.predict(temps, &powers, horizon).unwrap();
            let iterated = p.predict_iterated(temps, &powers, horizon).unwrap();
            for i in 0..HOTSPOT_COUNT {
                assert!(
                    (one_shot[i] - iterated[i]).abs() <= 1e-12,
                    "horizon {horizon} hotspot {i}"
                );
            }
        }
    }

    #[test]
    fn horizon_maps_are_computed_once_and_shared_across_clones() {
        let p = example_predictor();
        let clone = p.clone();
        let a = p.horizon_map(10).unwrap();
        // The clone sees the map the original already computed (one
        // computation per sweep, not per lane), and repeated requests return
        // the same canonical map.
        let b = clone.horizon_map(10).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert!(Arc::ptr_eq(&a, &p.horizon_map(10).unwrap()));
        // Distinct horizons get distinct maps.
        assert!(!Arc::ptr_eq(&a, &p.horizon_map(11).unwrap()));
        assert!(p.horizon_map(0).is_err());
    }

    #[test]
    fn equality_ignores_the_map_cache() {
        let p = example_predictor();
        let q = example_predictor();
        assert_eq!(p, q);
        p.horizon_map(10).unwrap();
        assert_eq!(p, q, "a warmed cache must not affect equality");
    }
}

//! Batched (panel) horizon prediction for sweep-scale control loops.
//!
//! A lockstep sweep advances K scenario lanes per instruction stream, but
//! until this module existed every lane still ran its *prediction* — the
//! per-interval violation pre-check — through a scalar horizon loop, making
//! `decide` the sweep's serial tail. [`BatchPredictor`] applies one
//! precomputed [`HorizonMap`] to all K lanes at once through the
//! structure-of-arrays [`Panel`] kernels: the `(Aₙ, Bₙ)` matrices are loaded
//! once per control interval for every lane, the inner loops run across
//! lanes at unit stride, and the accumulation order matches the scalar
//! [`ThermalPredictor::predict_with`] exactly — per-lane results are
//! **bit-identical** to the scalar path, so batching can never flip a
//! control decision.

use std::sync::Arc;

use numeric::{affine_pair_apply, Panel};
use power_model::DomainPower;
use thermal_model::HorizonMap;

use crate::predictor::{ThermalPredictor, HOTSPOT_COUNT};
use crate::DtpmError;

/// Applies one horizon map to K scenario lanes per call (see the
/// [module docs](self)).
///
/// Lanes are loaded with [`BatchPredictor::set_lane`] (current hotspot
/// temperatures + the power vector to hold constant), advanced together by
/// [`BatchPredictor::predict`], and read back per lane. Lane results never
/// depend on their neighbours, so callers may leave unused lanes stale and
/// simply not read them.
///
/// # Example
///
/// ```
/// use dtpm::{BatchPredictor, ThermalPredictor};
/// use numeric::Matrix;
/// use power_model::DomainPower;
/// use thermal_model::DiscreteThermalModel;
///
/// # fn main() -> Result<(), dtpm::DtpmError> {
/// let model = DiscreteThermalModel::new(
///     Matrix::identity(4).scale(0.9),
///     Matrix::identity(4).scale(0.05),
///     0.1,
/// ).unwrap();
/// let predictor = ThermalPredictor::new(model, 28.0)?;
/// let mut batch = BatchPredictor::for_predictor(&predictor, 10, 3)?;
/// for lane in 0..3 {
///     batch.set_lane(lane, [50.0; 4], &DomainPower::new(3.0, 0.05, 0.3, 0.4));
/// }
/// batch.predict();
/// // Bit-identical to the scalar one-shot prediction, lane by lane.
/// let scalar = predictor.predict([50.0; 4], &DomainPower::new(3.0, 0.05, 0.3, 0.4), 10)?;
/// assert_eq!(batch.predicted_c(1), scalar);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct BatchPredictor {
    map: Arc<HorizonMap>,
    ambient_c: f64,
    /// Current hotspot temperatures relative to ambient, one lane per column.
    temps: Panel,
    /// Constant power inputs, one lane per column.
    powers: Panel,
    /// Predicted relative temperatures at the horizon.
    predicted: Panel,
}

impl BatchPredictor {
    /// Creates a predictor over `lanes` scenario lanes applying `map`, with
    /// temperatures referenced to `ambient_c`.
    ///
    /// # Errors
    ///
    /// Returns [`DtpmError::ModelShape`] if the map is not the identified
    /// hotspot shape (four states, four inputs) and
    /// [`DtpmError::InvalidConfig`] for zero lanes.
    pub fn new(map: Arc<HorizonMap>, ambient_c: f64, lanes: usize) -> Result<Self, DtpmError> {
        if map.state_count() != HOTSPOT_COUNT || map.input_count() != HOTSPOT_COUNT {
            return Err(DtpmError::ModelShape {
                states: map.state_count(),
                inputs: map.input_count(),
            });
        }
        if lanes == 0 {
            return Err(DtpmError::InvalidConfig(
                "a batch predictor needs at least one lane",
            ));
        }
        Ok(BatchPredictor {
            map,
            ambient_c,
            temps: Panel::zeros(HOTSPOT_COUNT, lanes),
            powers: Panel::zeros(HOTSPOT_COUNT, lanes),
            predicted: Panel::zeros(HOTSPOT_COUNT, lanes),
        })
    }

    /// Convenience constructor: fetches the (shared, cached) horizon map and
    /// ambient from a [`ThermalPredictor`].
    ///
    /// # Errors
    ///
    /// Propagates map construction errors (zero horizon) and the shape
    /// checks of [`BatchPredictor::new`].
    pub fn for_predictor(
        predictor: &ThermalPredictor,
        horizon: usize,
        lanes: usize,
    ) -> Result<Self, DtpmError> {
        BatchPredictor::new(
            predictor.horizon_map(horizon)?,
            predictor.ambient_c(),
            lanes,
        )
    }

    /// Number of scenario lanes.
    pub fn lanes(&self) -> usize {
        self.temps.lanes()
    }

    /// The horizon map every lane is advanced by.
    pub fn map(&self) -> &Arc<HorizonMap> {
        &self.map
    }

    /// Ambient temperature the predictions are referenced to, °C.
    pub fn ambient_c(&self) -> f64 {
        self.ambient_c
    }

    /// Loads lane `lane` with its current hotspot temperatures (absolute °C)
    /// and the domain powers to hold constant over the horizon.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    pub fn set_lane(
        &mut self,
        lane: usize,
        core_temps_c: [f64; HOTSPOT_COUNT],
        powers: &DomainPower,
    ) {
        let p = powers.as_array();
        for i in 0..HOTSPOT_COUNT {
            self.temps.set(i, lane, core_temps_c[i] - self.ambient_c);
            self.powers.set(i, lane, p[i]);
        }
    }

    /// Advances every lane to the horizon in one fused panel application:
    /// `predicted = Aₙ·temps + Bₙ·powers`, matrices loaded once for all
    /// lanes. Infallible: the panel shapes are fixed at construction and the
    /// map shape was validated there.
    pub fn predict(&mut self) {
        affine_pair_apply(
            self.map.a_n(),
            self.map.b_n(),
            &[0.0; HOTSPOT_COUNT],
            &self.temps,
            &self.powers,
            &mut self.predicted,
        )
        .expect("panel shapes are fixed at construction");
    }

    /// Lane `lane`'s predicted hotspot temperatures at the horizon, absolute
    /// °C (as of the last [`BatchPredictor::predict`] call).
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    pub fn predicted_c(&self, lane: usize) -> [f64; HOTSPOT_COUNT] {
        let mut out = [0.0; HOTSPOT_COUNT];
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = self.predicted.get(i, lane) + self.ambient_c;
        }
        out
    }

    /// Lane `lane`'s predicted peak hotspot temperature at the horizon, °C.
    /// Bit-identical to [`ThermalPredictor::predict_peak_with`] on the same
    /// inputs and map.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    pub fn peak_c(&self, lane: usize) -> f64 {
        self.predicted_c(lane)
            .into_iter()
            .fold(f64::NEG_INFINITY, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numeric::Matrix;
    use thermal_model::DiscreteThermalModel;

    fn predictor() -> ThermalPredictor {
        let a = Matrix::from_rows(&[
            &[0.71, 0.09, 0.09, 0.09],
            &[0.09, 0.71, 0.09, 0.09],
            &[0.09, 0.09, 0.71, 0.09],
            &[0.09, 0.09, 0.09, 0.71],
        ])
        .unwrap();
        let b = Matrix::from_rows(&[
            &[0.26, 0.10, 0.16, 0.06],
            &[0.24, 0.12, 0.10, 0.06],
            &[0.26, 0.10, 0.16, 0.06],
            &[0.24, 0.12, 0.10, 0.06],
        ])
        .unwrap();
        ThermalPredictor::new(DiscreteThermalModel::new(a, b, 0.1).unwrap(), 28.0).unwrap()
    }

    fn lane_inputs(lane: usize) -> ([f64; 4], DomainPower) {
        let temps = [
            45.0 + lane as f64 * 1.7,
            44.0 + lane as f64 * 1.3,
            46.5 + lane as f64 * 0.9,
            43.5 + lane as f64 * 1.1,
        ];
        let powers = DomainPower::new(
            2.0 + lane as f64 * 0.31,
            0.05,
            0.2 + lane as f64 * 0.02,
            0.35,
        );
        (temps, powers)
    }

    #[test]
    fn panel_predictions_are_bit_identical_to_scalar() {
        let p = predictor();
        for lanes in [1usize, 3, 8, 11] {
            let mut batch = BatchPredictor::for_predictor(&p, 10, lanes).unwrap();
            let map = p.horizon_map(10).unwrap();
            for lane in 0..lanes {
                let (temps, powers) = lane_inputs(lane);
                batch.set_lane(lane, temps, &powers);
            }
            batch.predict();
            for lane in 0..lanes {
                let (temps, powers) = lane_inputs(lane);
                let scalar = p.predict_with(temps, &powers, &map).unwrap();
                let batched = batch.predicted_c(lane);
                for i in 0..HOTSPOT_COUNT {
                    assert_eq!(
                        batched[i].to_bits(),
                        scalar[i].to_bits(),
                        "lanes={lanes} lane={lane} hotspot={i}"
                    );
                }
                assert_eq!(
                    batch.peak_c(lane).to_bits(),
                    p.predict_peak_with(temps, &powers, &map).unwrap().to_bits(),
                    "lanes={lanes} lane={lane} peak"
                );
            }
        }
    }

    #[test]
    fn construction_validates_shape_and_width() {
        let p = predictor();
        assert!(BatchPredictor::for_predictor(&p, 10, 0).is_err());
        assert!(BatchPredictor::for_predictor(&p, 0, 4).is_err());
        // A rectangular (non-hotspot) map is rejected.
        let model =
            DiscreteThermalModel::new(Matrix::identity(2).scale(0.9), Matrix::zeros(2, 3), 0.1)
                .unwrap();
        let map = Arc::new(model.horizon_map(5).unwrap());
        assert!(matches!(
            BatchPredictor::new(map, 28.0, 4),
            Err(DtpmError::ModelShape { .. })
        ));
    }

    #[test]
    fn accessors_round_trip() {
        let p = predictor();
        let batch = BatchPredictor::for_predictor(&p, 10, 5).unwrap();
        assert_eq!(batch.lanes(), 5);
        assert_eq!(batch.ambient_c(), 28.0);
        assert_eq!(batch.map().horizon(), 10);
        // The batch shares the predictor's cached map, not a private copy.
        assert!(Arc::ptr_eq(batch.map(), &p.horizon_map(10).unwrap()));
    }
}

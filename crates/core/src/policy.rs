//! The DTPM control policy (Section 5.2, Figure 3.1).
//!
//! Every control interval the policy receives the configuration proposed by
//! the stock governors, the measured hotspot temperatures and the measured
//! domain powers. It predicts the temperature one prediction interval ahead;
//! if no violation is predicted the proposal is affirmed untouched. Otherwise
//! it computes the power budget and walks the actuation priority list:
//!
//! 1. cap the active cluster's frequency at the highest level whose predicted
//!    dynamic power fits the budget (Eq. 5.7 / 5.8),
//! 2. if even the minimum frequency does not fit and one core is clearly
//!    hotter than the rest (Eq. 5.9), put the hottest core to sleep,
//! 3. as the last resort, migrate to the little cluster and, if the GPU is
//!    active, drop its frequency one level — these have the largest
//!    performance impact, so they come last.

use std::sync::Arc;

use power_model::{DomainPower, PowerModel};
use serde::{Deserialize, Serialize};
use soc_model::{ClusterKind, Frequency, PlatformState, PowerDomain, SocSpec};
use thermal_model::HorizonMap;

use crate::budget::PowerBudget;
use crate::config::DtpmConfig;
use crate::predictor::{ThermalPredictor, HOTSPOT_COUNT};
use crate::DtpmError;

/// Everything the policy sees at one control interval.
#[derive(Debug, Clone)]
pub struct DtpmInputs<'a> {
    /// The platform description.
    pub spec: &'a SocSpec,
    /// Configuration proposed by the default governors for the next interval.
    pub proposed: PlatformState,
    /// Measured hotspot (big-core) temperatures, °C.
    pub core_temps_c: [f64; HOTSPOT_COUNT],
    /// Domain powers measured over the last interval, watts.
    pub measured_power: DomainPower,
}

/// What the policy decided to do this interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DtpmAction {
    /// No violation predicted: the default decision was affirmed unchanged.
    Affirmed,
    /// The active cluster's frequency was capped to fit the power budget.
    FrequencyCapped {
        /// Frequency the governors proposed.
        proposed: Frequency,
        /// Frequency actually programmed.
        selected: Frequency,
    },
    /// The hottest big core was put to sleep (and the frequency set as well).
    CoreShutdown {
        /// Index of the core that was taken offline.
        core: usize,
        /// Frequency programmed for the remaining cores.
        frequency: Frequency,
    },
    /// All tasks were migrated to the little cluster; the GPU may also have
    /// been throttled one level.
    ClusterMigration {
        /// Little-cluster frequency programmed.
        frequency: Frequency,
        /// Whether the GPU frequency was reduced as well.
        gpu_throttled: bool,
    },
}

/// The decision for one control interval.
#[derive(Debug, Clone, PartialEq)]
pub struct DtpmDecision {
    /// The platform state to program for the next interval.
    pub state: PlatformState,
    /// Which action was taken.
    pub action: DtpmAction,
    /// Peak hotspot temperature predicted for the *proposed* configuration, °C.
    pub predicted_peak_c: f64,
    /// The power budget, when one had to be computed.
    pub budget: Option<PowerBudget>,
}

/// The predictive DTPM policy.
///
/// The policy holds the precomputed one-shot horizon map `(Aₙ, Bₙ)` of its
/// configured prediction horizon (shared through the predictor's cache, so
/// the K cloned policies of a lockstep sweep all hold the *same* map), which
/// serves both the per-interval violation pre-check — one affine application
/// instead of a `horizon`-length model loop — and the power-budget
/// computation. A decision is allocation-free and, in the affirmed steady
/// state, horizon-independent (the paper's "negligible overhead" in-kernel
/// requirement).
#[derive(Debug, Clone)]
pub struct DtpmPolicy {
    config: DtpmConfig,
    predictor: ThermalPredictor,
    /// The one-shot horizon map for `config.prediction_horizon_steps`.
    map: Arc<HorizonMap>,
}

/// Two policies are equal when they would make the same decisions: the
/// horizon map is derived state (fixed by the configuration and the
/// predictor) and deliberately excluded.
impl PartialEq for DtpmPolicy {
    fn eq(&self, other: &Self) -> bool {
        self.config == other.config && self.predictor == other.predictor
    }
}

impl DtpmPolicy {
    /// Creates a policy from its configuration and an identified thermal
    /// predictor, validating the configuration and precomputing the horizon
    /// map once — [`DtpmPolicy::decide`] never re-derives either.
    ///
    /// # Errors
    ///
    /// Returns [`DtpmError::InvalidConfig`] for a non-physical configuration
    /// (see [`DtpmConfig::validate`]).
    pub fn new(config: DtpmConfig, predictor: ThermalPredictor) -> Result<Self, DtpmError> {
        config.validate()?;
        let map = predictor.horizon_map(config.prediction_horizon_steps)?;
        Ok(DtpmPolicy {
            config,
            predictor,
            map,
        })
    }

    /// The policy configuration.
    pub fn config(&self) -> &DtpmConfig {
        &self.config
    }

    /// The thermal predictor.
    pub fn predictor(&self) -> &ThermalPredictor {
        &self.predictor
    }

    /// The precomputed one-shot horizon map of the configured prediction
    /// horizon — what a batched classifier ([`crate::BatchPredictor`])
    /// applies to predict many lanes at once.
    pub fn horizon_map(&self) -> &Arc<HorizonMap> {
        &self.map
    }

    /// The effective temperature constraint the policy classifies against:
    /// the configured constraint minus the prediction safety margin, °C.
    pub fn effective_constraint_c(&self) -> f64 {
        self.config.temperature_constraint_c - self.config.prediction_margin_c
    }

    /// Predicted total power of the active cluster at a candidate frequency,
    /// scaled for the number of online cores relative to the proposal.
    fn predicted_cluster_dynamic(
        &self,
        power_model: &PowerModel,
        spec: &SocSpec,
        cluster: ClusterKind,
        frequency: Frequency,
        online_ratio: f64,
    ) -> Result<f64, DtpmError> {
        let domain = PowerDomain::from_cluster(cluster);
        let voltage = spec.cluster_opps(cluster).voltage_for(frequency)?;
        Ok(power_model.predict_dynamic(domain, voltage, frequency) * online_ratio)
    }

    /// Builds the power vector the predictor should assume for a candidate
    /// platform state: knob-controlled domains (active cluster, GPU) use model
    /// predictions at the candidate operating point, the rest keep their
    /// measured values.
    fn predicted_powers(
        &self,
        inputs: &DtpmInputs<'_>,
        power_model: &PowerModel,
        state: &PlatformState,
        hot_temp_c: f64,
        online_ratio: f64,
    ) -> Result<DomainPower, DtpmError> {
        let spec = inputs.spec;
        let mut powers = inputs.measured_power;

        let cluster = state.active_cluster;
        let domain = PowerDomain::from_cluster(cluster);
        let freq = state.cluster_frequency(cluster);
        let voltage = spec.cluster_opps(cluster).voltage_for(freq)?;
        let dynamic =
            self.predicted_cluster_dynamic(power_model, spec, cluster, freq, online_ratio)?;
        let leakage = power_model.predict_leakage(domain, hot_temp_c, voltage);
        powers[domain] = dynamic + leakage;

        // The inactive cluster is power-gated down to residual leakage.
        let idle_domain = PowerDomain::from_cluster(cluster.other());
        let idle_voltage = spec.cluster_opps(cluster.other()).lowest().voltage;
        powers[idle_domain] = power_model
            .predict_leakage(idle_domain, hot_temp_c, idle_voltage)
            .min(powers[idle_domain].max(0.05));

        // GPU: model prediction at the candidate GPU frequency.
        let gpu_voltage = spec.gpu_opps().voltage_for(state.gpu_frequency)?;
        powers[PowerDomain::Gpu] = power_model.predict_total(
            PowerDomain::Gpu,
            hot_temp_c,
            gpu_voltage,
            state.gpu_frequency,
        );
        Ok(powers)
    }

    /// Makes the DTPM decision for one control interval: predicts the
    /// proposal's outcome and resolves the decision ([`DtpmPolicy::resolve`]).
    ///
    /// # Errors
    ///
    /// Returns an error for a malformed proposed state (frequency not in the
    /// OPP tables) or thermal-model failures.
    pub fn decide(
        &self,
        inputs: &DtpmInputs<'_>,
        power_model: &PowerModel,
    ) -> Result<DtpmDecision, DtpmError> {
        let proposed_powers = self.proposal_powers(inputs, power_model)?;
        let predicted_peak =
            self.predictor
                .predict_peak_with(inputs.core_temps_c, &proposed_powers, &self.map)?;
        self.resolve(inputs, power_model, &proposed_powers, predicted_peak)
    }

    /// Phase 1 of the two-phase decide: the power vector the predictor
    /// should assume for the governors' proposal. A batched executor
    /// assembles these across all lanes, classifies them with one panel
    /// prediction, and only the violating lanes proceed to
    /// [`DtpmPolicy::resolve`]'s actuation walk.
    ///
    /// # Errors
    ///
    /// Returns an error for a malformed proposed state (frequency not in the
    /// OPP tables), or [`DtpmError::NonFiniteInput`] when a measured
    /// temperature or power is NaN/infinite — the policy refuses to classify
    /// on corrupt sensor data (a NaN would otherwise be silently swallowed
    /// by the max fold below and poison the leakage linearisation).
    pub fn proposal_powers(
        &self,
        inputs: &DtpmInputs<'_>,
        power_model: &PowerModel,
    ) -> Result<DomainPower, DtpmError> {
        if inputs.core_temps_c.iter().any(|t| !t.is_finite()) {
            return Err(DtpmError::NonFiniteInput("measured core temperature"));
        }
        if !inputs
            .measured_power
            .as_array()
            .iter()
            .all(|p| p.is_finite())
        {
            return Err(DtpmError::NonFiniteInput("measured domain power"));
        }
        let hot_temp = inputs
            .core_temps_c
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        self.predicted_powers(inputs, power_model, &inputs.proposed, hot_temp, 1.0)
    }

    /// Phase 2 of the two-phase decide: resolves the decision given the
    /// proposal's power vector (from [`DtpmPolicy::proposal_powers`]) and its
    /// predicted peak temperature (scalar or batched — the two are
    /// bit-identical). No violation predicted ⇒ the proposal is affirmed
    /// with no further model work; otherwise the power budget is solved from
    /// the precomputed horizon map and walked down the actuation priority
    /// list.
    ///
    /// # Errors
    ///
    /// Returns an error for a malformed proposed state or thermal-model
    /// failures.
    pub fn resolve(
        &self,
        inputs: &DtpmInputs<'_>,
        power_model: &PowerModel,
        proposed_powers: &DomainPower,
        predicted_peak: f64,
    ) -> Result<DtpmDecision, DtpmError> {
        let spec = inputs.spec;
        let constraint = self.effective_constraint_c();

        // Step 1: no violation predicted for the proposal — affirm it
        // untouched. This is the steady-state common path.
        if predicted_peak <= constraint {
            return Ok(DtpmDecision {
                state: inputs.proposed.clone(),
                action: DtpmAction::Affirmed,
                predicted_peak_c: predicted_peak,
                budget: None,
            });
        }

        // Step 2: a violation is predicted — compute the power budget for the
        // active cluster from the precomputed horizon map.
        let hot_temp = inputs
            .core_temps_c
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        let (a_n, b_n) = (self.map.a_n(), self.map.b_n());
        let cluster = inputs.proposed.active_cluster;
        let domain = PowerDomain::from_cluster(cluster);
        let opps = spec.cluster_opps(cluster);
        let proposed_freq = inputs.proposed.cluster_frequency(cluster);
        let proposed_voltage = opps.voltage_for(proposed_freq)?;
        let leakage = power_model.predict_leakage(domain, hot_temp, proposed_voltage);
        let budget = PowerBudget::compute_with(
            &self.predictor,
            inputs.core_temps_c,
            proposed_powers,
            domain,
            constraint,
            a_n,
            b_n,
            leakage,
        )?;

        // Step 3: highest frequency not above the proposal whose predicted
        // dynamic power fits the dynamic budget (Eqs. 5.7 / 5.8).
        let fits = |freq: Frequency, ratio: f64| -> Result<bool, DtpmError> {
            Ok(
                self.predicted_cluster_dynamic(power_model, spec, cluster, freq, ratio)?
                    <= budget.dynamic_w,
            )
        };
        let candidate = self.highest_fitting_frequency(opps, proposed_freq, |f| fits(f, 1.0))?;
        if let Some(freq) = candidate {
            let mut state = inputs.proposed.clone();
            state.set_cluster_frequency(cluster, freq);
            return Ok(DtpmDecision {
                state,
                action: DtpmAction::FrequencyCapped {
                    proposed: proposed_freq,
                    selected: freq,
                },
                predicted_peak_c: predicted_peak,
                budget: Some(budget),
            });
        }

        // Step 4: even f_min does not fit. If the hottest core clearly runs
        // away from the others (Eq. 5.9) and we may drop a core, do that.
        if cluster == ClusterKind::Big {
            let online = inputs.proposed.online_core_count(ClusterKind::Big);
            let coolest = inputs
                .core_temps_c
                .iter()
                .copied()
                .fold(f64::INFINITY, f64::min);
            let imbalance = hot_temp - coolest;
            if online > self.config.min_big_cores && imbalance >= self.config.hot_core_delta_c {
                let ratio = (online as f64 - 1.0) / online as f64;
                let freq = self
                    .highest_fitting_frequency(opps, proposed_freq, |f| fits(f, ratio))?
                    .unwrap_or_else(|| opps.lowest().frequency);
                let mut state = inputs.proposed.clone();
                // Take the hottest *online* core offline.
                let hottest_online = inputs
                    .core_temps_c
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| state.is_core_online(ClusterKind::Big, *i))
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                    .map(|(i, _)| i)
                    .unwrap_or(budget.hot_core);
                state.set_core_online(ClusterKind::Big, hottest_online, false);
                state.set_cluster_frequency(ClusterKind::Big, freq);
                return Ok(DtpmDecision {
                    state,
                    action: DtpmAction::CoreShutdown {
                        core: hottest_online,
                        frequency: freq,
                    },
                    predicted_peak_c: predicted_peak,
                    budget: Some(budget),
                });
            }
        }

        // Step 5: last resort — migrate everything to the little cluster and,
        // if the GPU is drawing real power, drop its frequency one level.
        let little_opps = spec.little_opps();
        // The little cluster's switched capacitance is roughly an order of
        // magnitude below the big cluster's; reuse the big-cluster activity
        // scaled accordingly unless the little-cluster estimator has data.
        let little_domain = PowerDomain::LittleCpu;
        let little_ratio = if power_model.domain(little_domain).activity().sample_count() > 0 {
            1.0
        } else {
            0.12
        };
        let little_fits = |freq: Frequency| -> Result<bool, DtpmError> {
            let voltage = little_opps.voltage_for(freq)?;
            let dynamic = if little_ratio < 1.0 {
                power_model.predict_dynamic(
                    PowerDomain::from_cluster(ClusterKind::Big),
                    voltage,
                    freq,
                ) * little_ratio
            } else {
                power_model.predict_dynamic(little_domain, voltage, freq)
            };
            Ok(dynamic <= budget.dynamic_w)
        };
        let little_freq = self
            .highest_fitting_frequency(little_opps, little_opps.highest().frequency, little_fits)?
            .unwrap_or_else(|| little_opps.lowest().frequency);

        let mut state = inputs.proposed.clone();
        state.migrate_to_cluster(ClusterKind::Little, little_freq);
        let gpu_active = inputs.measured_power[PowerDomain::Gpu] > 0.08;
        let mut gpu_throttled = false;
        if gpu_active {
            if let Some(lower) = spec.gpu_opps().step_down(state.gpu_frequency) {
                state.gpu_frequency = lower.frequency;
                gpu_throttled = true;
            }
        }
        Ok(DtpmDecision {
            state,
            action: DtpmAction::ClusterMigration {
                frequency: little_freq,
                gpu_throttled,
            },
            predicted_peak_c: predicted_peak,
            budget: Some(budget),
        })
    }

    /// Scans the OPP table downwards from `start` and returns the highest
    /// frequency accepted by `fits`, or `None` if none fits.
    fn highest_fitting_frequency(
        &self,
        opps: &soc_model::OppTable,
        start: Frequency,
        mut fits: impl FnMut(Frequency) -> Result<bool, DtpmError>,
    ) -> Result<Option<Frequency>, DtpmError> {
        let start_idx = opps
            .index_of(start)
            .unwrap_or_else(|| opps.len().saturating_sub(1));
        for idx in (0..=start_idx).rev() {
            let freq = opps.get(idx).expect("index in range").frequency;
            if fits(freq)? {
                return Ok(Some(freq));
            }
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numeric::Matrix;
    use power_model::PowerModel;
    use soc_model::Voltage;
    use thermal_model::DiscreteThermalModel;

    fn predictor() -> ThermalPredictor {
        let a = Matrix::from_rows(&[
            &[0.71, 0.09, 0.09, 0.09],
            &[0.09, 0.71, 0.09, 0.09],
            &[0.09, 0.09, 0.71, 0.09],
            &[0.09, 0.09, 0.09, 0.71],
        ])
        .unwrap();
        let b = Matrix::from_rows(&[
            &[0.26, 0.10, 0.16, 0.06],
            &[0.24, 0.12, 0.10, 0.06],
            &[0.26, 0.10, 0.16, 0.06],
            &[0.24, 0.12, 0.10, 0.06],
        ])
        .unwrap();
        ThermalPredictor::new(DiscreteThermalModel::new(a, b, 0.1).unwrap(), 28.0).unwrap()
    }

    /// Power model whose big-cluster activity estimator has been trained on a
    /// heavy workload (≈3.5 W dynamic at 1.6 GHz).
    fn trained_power_model(dynamic_at_max_w: f64) -> PowerModel {
        let mut model = PowerModel::exynos5410_defaults();
        let v = Voltage::from_volts(1.20);
        let f = Frequency::from_mhz(1600);
        let leak = model.predict_leakage(PowerDomain::BigCpu, 60.0, v);
        for _ in 0..20 {
            model.observe(PowerDomain::BigCpu, dynamic_at_max_w + leak, 60.0, v, f);
        }
        // Give the GPU and memory estimators some light observations too.
        for _ in 0..5 {
            model.observe(
                PowerDomain::Gpu,
                0.15,
                55.0,
                Voltage::from_volts(0.85),
                Frequency::from_mhz(177),
            );
            model.observe(
                PowerDomain::Memory,
                0.35,
                55.0,
                Voltage::from_volts(1.0),
                Frequency::from_mhz(800),
            );
        }
        model
    }

    fn inputs<'a>(spec: &'a SocSpec, temps: [f64; 4], big_power_w: f64) -> DtpmInputs<'a> {
        DtpmInputs {
            spec,
            proposed: PlatformState::default_for(spec),
            core_temps_c: temps,
            measured_power: DomainPower::new(big_power_w, 0.04, 0.15, 0.35),
        }
    }

    #[test]
    fn cool_system_affirms_default_decision() {
        let spec = SocSpec::odroid_xu_e();
        let policy = DtpmPolicy::new(DtpmConfig::default(), predictor()).unwrap();
        let model = trained_power_model(3.5);
        let decision = policy
            .decide(&inputs(&spec, [42.0; 4], 3.6), &model)
            .unwrap();
        assert_eq!(decision.action, DtpmAction::Affirmed);
        assert_eq!(decision.state, PlatformState::default_for(&spec));
        assert!(decision.budget.is_none());
    }

    #[test]
    fn imminent_violation_caps_frequency() {
        let spec = SocSpec::odroid_xu_e();
        let policy = DtpmPolicy::new(DtpmConfig::default(), predictor()).unwrap();
        let model = trained_power_model(3.5);
        let decision = policy
            .decide(&inputs(&spec, [60.5, 60.0, 60.2, 59.8], 3.7), &model)
            .unwrap();
        match decision.action {
            DtpmAction::FrequencyCapped { proposed, selected } => {
                assert_eq!(proposed.mhz(), 1600);
                assert!(selected.mhz() < 1600, "must throttle, got {selected}");
                assert!(selected.mhz() >= 800);
            }
            other => panic!("expected a frequency cap, got {other:?}"),
        }
        assert!(decision.predicted_peak_c > 62.0);
        let budget = decision.budget.expect("budget computed");
        assert!(budget.total_w.is_finite());
        // The chosen state keeps all cores online on the big cluster.
        assert_eq!(decision.state.active_cluster, ClusterKind::Big);
        assert_eq!(decision.state.online_core_count(ClusterKind::Big), 4);
    }

    #[test]
    fn hotter_system_gets_lower_frequency() {
        let spec = SocSpec::odroid_xu_e();
        let policy = DtpmPolicy::new(DtpmConfig::default(), predictor()).unwrap();
        let model = trained_power_model(3.5);
        let warm = policy
            .decide(&inputs(&spec, [59.0; 4], 3.7), &model)
            .unwrap();
        let hot = policy
            .decide(&inputs(&spec, [62.0; 4], 3.7), &model)
            .unwrap();
        let freq_of = |d: &DtpmDecision| d.state.cluster_frequency(d.state.active_cluster).mhz();
        assert!(freq_of(&hot) <= freq_of(&warm));
    }

    #[test]
    fn runaway_hot_core_is_shut_down_when_budget_is_tiny() {
        let spec = SocSpec::odroid_xu_e();
        let policy = DtpmPolicy::new(DtpmConfig::default(), predictor()).unwrap();
        // Very heavy activity estimate: even 800 MHz cannot fit a tiny budget.
        let model = trained_power_model(4.5);
        // Core 2 runs several degrees hotter than the others and the whole
        // cluster is essentially at the constraint already.
        let decision = policy
            .decide(&inputs(&spec, [66.5, 66.3, 68.8, 66.4], 4.6), &model)
            .unwrap();
        match decision.action {
            DtpmAction::CoreShutdown { core, .. } => {
                assert_eq!(core, 2);
                assert!(!decision.state.is_core_online(ClusterKind::Big, 2));
                assert_eq!(decision.state.online_core_count(ClusterKind::Big), 3);
            }
            other => panic!("expected a core shutdown, got {other:?}"),
        }
    }

    #[test]
    fn balanced_overload_migrates_to_little_cluster() {
        let spec = SocSpec::odroid_xu_e();
        let config = DtpmConfig {
            // Force the shutdown path to be unavailable so migration triggers.
            hot_core_delta_c: 10.0,
            ..DtpmConfig::default()
        };
        let policy = DtpmPolicy::new(config, predictor()).unwrap();
        let model = trained_power_model(4.5);
        let decision = policy
            .decide(&inputs(&spec, [66.0, 65.8, 66.1, 65.9], 4.6), &model)
            .unwrap();
        match decision.action {
            DtpmAction::ClusterMigration { gpu_throttled, .. } => {
                assert_eq!(decision.state.active_cluster, ClusterKind::Little);
                assert_eq!(decision.state.online_core_count(ClusterKind::Little), 4);
                // GPU was drawing 0.15 W in the inputs, so it gets throttled
                // only if it was above the minimum level; the default proposal
                // keeps the GPU at its lowest frequency, so no throttle.
                assert!(!gpu_throttled);
            }
            other => panic!("expected a cluster migration, got {other:?}"),
        }
    }

    #[test]
    fn gpu_gets_throttled_on_migration_when_active() {
        let spec = SocSpec::odroid_xu_e();
        let config = DtpmConfig {
            hot_core_delta_c: 10.0,
            ..DtpmConfig::default()
        };
        let policy = DtpmPolicy::new(config, predictor()).unwrap();
        let model = trained_power_model(4.5);
        let mut input = inputs(&spec, [66.0, 65.8, 66.1, 65.9], 4.6);
        input.proposed.gpu_frequency = Frequency::from_mhz(533);
        input.measured_power[PowerDomain::Gpu] = 0.5;
        let decision = policy.decide(&input, &model).unwrap();
        match decision.action {
            DtpmAction::ClusterMigration { gpu_throttled, .. } => {
                assert!(gpu_throttled);
                assert_eq!(decision.state.gpu_frequency.mhz(), 480);
            }
            other => panic!("expected a cluster migration, got {other:?}"),
        }
    }

    #[test]
    fn decisions_keep_the_platform_state_valid() {
        let spec = SocSpec::odroid_xu_e();
        let policy = DtpmPolicy::new(DtpmConfig::default(), predictor()).unwrap();
        let model = trained_power_model(4.0);
        for temps in [[45.0; 4], [58.0; 4], [61.0, 60.0, 63.5, 60.5], [66.0; 4]] {
            let decision = policy.decide(&inputs(&spec, temps, 4.0), &model).unwrap();
            decision
                .state
                .validate(&spec)
                .expect("DTPM must never produce an invalid platform state");
        }
    }

    #[test]
    fn invalid_config_is_rejected_at_construction() {
        let config = DtpmConfig {
            prediction_horizon_steps: 0,
            ..DtpmConfig::default()
        };
        assert!(DtpmPolicy::new(config, predictor()).is_err());
    }

    #[test]
    fn policies_compare_by_configuration() {
        let spec = SocSpec::odroid_xu_e();
        let a = DtpmPolicy::new(DtpmConfig::default(), predictor()).unwrap();
        let b = DtpmPolicy::new(DtpmConfig::default(), predictor()).unwrap();
        assert_eq!(a, b);
        // Deciding derives nothing new: the policy stays behaviourally (and
        // structurally) identical.
        let model = trained_power_model(3.5);
        a.decide(&inputs(&spec, [62.0; 4], 3.7), &model).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn two_phase_split_matches_one_shot_decide() {
        // proposal_powers + external peak + resolve must be exactly decide.
        let spec = SocSpec::odroid_xu_e();
        let policy = DtpmPolicy::new(DtpmConfig::default(), predictor()).unwrap();
        let model = trained_power_model(3.5);
        for temps in [[45.0; 4], [60.5, 60.0, 60.2, 59.8], [66.0; 4]] {
            let input = inputs(&spec, temps, 3.7);
            let powers = policy.proposal_powers(&input, &model).unwrap();
            let peak = policy
                .predictor()
                .predict_peak_with(temps, &powers, policy.horizon_map())
                .unwrap();
            let two_phase = policy.resolve(&input, &model, &powers, peak).unwrap();
            let one_shot = policy.decide(&input, &model).unwrap();
            assert_eq!(two_phase, one_shot);
            assert_eq!(two_phase.predicted_peak_c.to_bits(), peak.to_bits());
        }
    }

    #[test]
    fn accessors_round_trip() {
        let policy = DtpmPolicy::new(DtpmConfig::default(), predictor()).unwrap();
        assert_eq!(policy.config().temperature_constraint_c, 63.0);
        assert_eq!(policy.predictor().ambient_c(), 28.0);
        assert_eq!(policy.horizon_map().horizon(), 10);
        assert_eq!(policy.effective_constraint_c(), 62.5);
    }
}

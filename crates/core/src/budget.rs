//! Run-time power-budget computation (Section 5.1).
//!
//! Working backwards from the temperature constraint: using the horizon form
//! of the identified model, `T[k+n] = Aₙ·T[k] + Bₙ·P`, the constraint
//! `T[k+n] ≤ T_max` becomes, for the hottest core `h` (the one most likely to
//! violate, Eq. 5.5),
//!
//! ```text
//! Bₙ,h·P  ≤  (T_max − T_amb) − Aₙ,h·(T[k] − T_amb)
//! ```
//!
//! Solving the equality for the active cluster's power — holding the other
//! domains at their predicted values — yields the *total* power budget of the
//! cluster; subtracting the predicted leakage gives the *dynamic* budget that
//! is finally converted into a frequency (Eq. 5.6).

use numeric::Matrix;
use power_model::DomainPower;
use serde::{Deserialize, Serialize};
use soc_model::PowerDomain;

use crate::predictor::{ThermalPredictor, HOTSPOT_COUNT};
use crate::DtpmError;

/// The computed power budget for the domain being throttled.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerBudget {
    /// Domain the budget applies to (the active CPU cluster).
    pub domain: PowerDomain,
    /// Index of the hottest core the budget was solved for.
    pub hot_core: usize,
    /// Thermal headroom at the horizon if the domain drew no power at all, in °C.
    pub headroom_c: f64,
    /// Total power the domain may draw without violating the constraint, in watts.
    /// Never negative (clamped at zero).
    pub total_w: f64,
    /// Dynamic component of the budget (total minus predicted leakage), in watts.
    /// Never negative (clamped at zero).
    pub dynamic_w: f64,
}

impl PowerBudget {
    /// Computes the budget for `domain` (normally the active CPU cluster).
    ///
    /// * `predictor` — the identified thermal model.
    /// * `core_temps_c` — current measured hotspot temperatures.
    /// * `other_powers` — predicted powers of **all** domains for the next
    ///   interval; the entry for `domain` is ignored (it is what we solve for).
    /// * `constraint_c` — the effective temperature constraint (already
    ///   including any safety margin).
    /// * `horizon` — prediction horizon in control intervals.
    /// * `predicted_leakage_w` — predicted leakage power of `domain`, used to
    ///   derive the dynamic budget (Eq. 5.6).
    ///
    /// # Errors
    ///
    /// Propagates thermal-model errors; returns [`DtpmError::InvalidConfig`]
    /// for a zero horizon.
    pub fn compute(
        predictor: &ThermalPredictor,
        core_temps_c: [f64; HOTSPOT_COUNT],
        other_powers: &DomainPower,
        domain: PowerDomain,
        constraint_c: f64,
        horizon: usize,
        predicted_leakage_w: f64,
    ) -> Result<PowerBudget, DtpmError> {
        if horizon == 0 {
            return Err(DtpmError::InvalidConfig(
                "horizon must be at least one step",
            ));
        }
        let (a_n, b_n) = predictor.model().horizon_matrices(horizon)?;
        PowerBudget::compute_with(
            predictor,
            core_temps_c,
            other_powers,
            domain,
            constraint_c,
            &a_n,
            &b_n,
            predicted_leakage_w,
        )
    }

    /// Allocation-free form of [`PowerBudget::compute`] taking the
    /// precomputed horizon matrices `(Aₙ, Bₙ)` from
    /// [`thermal_model::DiscreteThermalModel::horizon_matrices`]. The DTPM
    /// policy caches those per configured horizon, so the per-interval budget
    /// computation reduces to a handful of dot products.
    ///
    /// # Errors
    ///
    /// Returns [`DtpmError::InvalidConfig`] if the matrices do not cover the
    /// hotspot states.
    #[allow(clippy::too_many_arguments)]
    pub fn compute_with(
        predictor: &ThermalPredictor,
        core_temps_c: [f64; HOTSPOT_COUNT],
        other_powers: &DomainPower,
        domain: PowerDomain,
        constraint_c: f64,
        a_n: &Matrix,
        b_n: &Matrix,
        predicted_leakage_w: f64,
    ) -> Result<PowerBudget, DtpmError> {
        if a_n.rows() < HOTSPOT_COUNT
            || a_n.cols() < HOTSPOT_COUNT
            || b_n.rows() < HOTSPOT_COUNT
            || b_n.cols() < PowerDomain::COUNT
        {
            return Err(DtpmError::InvalidConfig(
                "horizon matrices do not cover the hotspot states",
            ));
        }
        let ambient = predictor.ambient_c();

        // The hottest core is the constraint most likely to be violated (Eq. 5.5).
        let hot_core = core_temps_c
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0);

        // Contribution of the current temperatures (Aₙ,h · T).
        let temp_term = core_temps_c
            .iter()
            .enumerate()
            .map(|(j, t)| a_n[(hot_core, j)] * (t - ambient))
            .sum::<f64>();
        // Contribution of the domains we are not solving for.
        let mut fixed_power_term = 0.0;
        for other in PowerDomain::ALL {
            if other != domain {
                fixed_power_term += b_n[(hot_core, other.index())] * other_powers[other];
            }
        }
        let rhs = (constraint_c - ambient) - temp_term - fixed_power_term;
        let own_coefficient = b_n[(hot_core, domain.index())];

        // Headroom if the domain drew nothing at all.
        let headroom_c = rhs;

        let total_w = if own_coefficient > f64::EPSILON {
            (rhs / own_coefficient).max(0.0)
        } else {
            // The identified model says this domain barely heats the hotspot;
            // any power satisfies the constraint as far as this row goes.
            f64::INFINITY
        };
        let dynamic_w = if total_w.is_finite() {
            (total_w - predicted_leakage_w).max(0.0)
        } else {
            f64::INFINITY
        };

        Ok(PowerBudget {
            domain,
            hot_core,
            headroom_c,
            total_w,
            dynamic_w,
        })
    }

    /// Returns `true` if the budget cannot be met at all (zero dynamic power
    /// allowed).
    pub fn is_exhausted(&self) -> bool {
        self.dynamic_w <= f64::EPSILON
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numeric::Matrix;
    use thermal_model::DiscreteThermalModel;

    fn predictor() -> ThermalPredictor {
        let a = Matrix::from_rows(&[
            &[0.71, 0.09, 0.09, 0.09],
            &[0.09, 0.71, 0.09, 0.09],
            &[0.09, 0.09, 0.71, 0.09],
            &[0.09, 0.09, 0.09, 0.71],
        ])
        .unwrap();
        let b = Matrix::from_rows(&[
            &[0.26, 0.10, 0.16, 0.06],
            &[0.24, 0.12, 0.10, 0.06],
            &[0.26, 0.10, 0.16, 0.06],
            &[0.24, 0.12, 0.10, 0.06],
        ])
        .unwrap();
        ThermalPredictor::new(DiscreteThermalModel::new(a, b, 0.1).unwrap(), 28.0).unwrap()
    }

    fn others() -> DomainPower {
        DomainPower::new(0.0, 0.05, 0.2, 0.35)
    }

    #[test]
    fn budget_shrinks_as_temperature_approaches_constraint() {
        let p = predictor();
        let cool =
            PowerBudget::compute(&p, [45.0; 4], &others(), PowerDomain::BigCpu, 63.0, 10, 0.2)
                .unwrap();
        let warm =
            PowerBudget::compute(&p, [58.0; 4], &others(), PowerDomain::BigCpu, 63.0, 10, 0.2)
                .unwrap();
        let hot =
            PowerBudget::compute(&p, [62.5; 4], &others(), PowerDomain::BigCpu, 63.0, 10, 0.2)
                .unwrap();
        assert!(cool.total_w > warm.total_w);
        assert!(warm.total_w > hot.total_w);
        assert!(hot.total_w >= 0.0);
    }

    #[test]
    fn budget_respects_the_constraint_when_applied() {
        // Feeding the budgeted power back into the predictor must land at or
        // below the constraint at the horizon.
        let p = predictor();
        let temps = [57.0, 56.0, 58.0, 55.5];
        let constraint = 63.0;
        let budget = PowerBudget::compute(
            &p,
            temps,
            &others(),
            PowerDomain::BigCpu,
            constraint,
            10,
            0.25,
        )
        .unwrap();
        assert!(budget.total_w.is_finite());
        let mut powers = others();
        powers[PowerDomain::BigCpu] = budget.total_w;
        let peak = p.predict_peak(temps, &powers, 10).unwrap();
        assert!(
            peak <= constraint + 0.05,
            "peak {peak} exceeds constraint {constraint}"
        );
        // The budget is tight: meaningfully exceeding it violates the constraint.
        powers[PowerDomain::BigCpu] = budget.total_w + 2.0;
        let over = p.predict_peak(temps, &powers, 10).unwrap();
        assert!(over > constraint);
    }

    #[test]
    fn dynamic_budget_subtracts_leakage() {
        let p = predictor();
        let with_leak =
            PowerBudget::compute(&p, [55.0; 4], &others(), PowerDomain::BigCpu, 63.0, 10, 0.5)
                .unwrap();
        let without_leak =
            PowerBudget::compute(&p, [55.0; 4], &others(), PowerDomain::BigCpu, 63.0, 10, 0.0)
                .unwrap();
        assert!((without_leak.dynamic_w - with_leak.dynamic_w - 0.5).abs() < 1e-9);
        assert_eq!(with_leak.total_w, without_leak.total_w);
    }

    #[test]
    fn budget_is_clamped_at_zero_when_already_violating() {
        let p = predictor();
        let budget = PowerBudget::compute(
            &p,
            [75.0, 74.0, 76.0, 75.5],
            &others(),
            PowerDomain::BigCpu,
            63.0,
            10,
            0.3,
        )
        .unwrap();
        assert_eq!(budget.total_w, 0.0);
        assert_eq!(budget.dynamic_w, 0.0);
        assert!(budget.is_exhausted());
        assert!(budget.headroom_c < 0.0);
    }

    #[test]
    fn hottest_core_is_selected() {
        let p = predictor();
        let budget = PowerBudget::compute(
            &p,
            [50.0, 55.0, 52.0, 51.0],
            &others(),
            PowerDomain::BigCpu,
            63.0,
            10,
            0.2,
        )
        .unwrap();
        assert_eq!(budget.hot_core, 1);
        assert_eq!(budget.domain, PowerDomain::BigCpu);
    }

    #[test]
    fn gpu_heat_reduces_cpu_budget() {
        let p = predictor();
        let mut gpu_hot = others();
        gpu_hot[PowerDomain::Gpu] = 1.5;
        let base =
            PowerBudget::compute(&p, [55.0; 4], &others(), PowerDomain::BigCpu, 63.0, 10, 0.2)
                .unwrap();
        let with_gpu =
            PowerBudget::compute(&p, [55.0; 4], &gpu_hot, PowerDomain::BigCpu, 63.0, 10, 0.2)
                .unwrap();
        assert!(with_gpu.total_w < base.total_w);
    }

    #[test]
    fn zero_horizon_rejected() {
        let p = predictor();
        assert!(
            PowerBudget::compute(&p, [50.0; 4], &others(), PowerDomain::BigCpu, 63.0, 0, 0.2)
                .is_err()
        );
    }

    #[test]
    fn longer_horizon_gives_tighter_budget() {
        // Predicting further ahead leaves less thermal capacitance to hide
        // behind, so the allowed power is smaller.
        let p = predictor();
        let short =
            PowerBudget::compute(&p, [55.0; 4], &others(), PowerDomain::BigCpu, 63.0, 5, 0.2)
                .unwrap();
        let long =
            PowerBudget::compute(&p, [55.0; 4], &others(), PowerDomain::BigCpu, 63.0, 30, 0.2)
                .unwrap();
        assert!(long.total_w < short.total_w);
    }
}

//! Power-budget distribution across heterogeneous resources (Chapter 7).
//!
//! The thesis' future-work chapter formulates how a dynamic power budget
//! should be split across the big CPU cluster, the little cluster and the GPU:
//! minimise the execution-time cost
//!
//! ```text
//! J(f₁ … fₙ) = Σ cᵢ / fᵢ            (Eq. 7.1)
//! ```
//!
//! subject to the dynamic-power constraint
//!
//! ```text
//! P(f₁ … fₙ) = Σ aᵢ·fᵢ³ ≤ P_budget   (Eq. 7.2)
//! ```
//!
//! Chapter 7 notes that branch-and-bound solves this exactly but is awkward in
//! kernel space, so the practical algorithm greedily throttles whichever
//! component costs the least performance (Eq. 7.3). Both are implemented here
//! so the trade-off can be quantified (experiment `fig7_1`).

use serde::{Deserialize, Serialize};
use soc_model::{Frequency, OppTable};

use crate::DtpmError;

/// One throttleable resource participating in the budget distribution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResourceLoad {
    /// Resource name (for reporting).
    pub name: String,
    /// Performance parameter `cᵢ` of Eq. 7.1: work pending on the resource, so
    /// its contribution to the cost is `cᵢ / fᵢ` (frequency in GHz).
    pub performance_weight: f64,
    /// Power parameter `aᵢ` of Eq. 7.2 such that the resource consumes
    /// `aᵢ·fᵢ³` watts at frequency `fᵢ` (GHz).
    pub power_coefficient: f64,
    /// Discrete frequencies available to the resource.
    pub opps: OppTable,
}

impl ResourceLoad {
    /// Dynamic power at the given frequency, `aᵢ·fᵢ³`, in watts.
    pub fn power_at(&self, frequency: Frequency) -> f64 {
        let f = frequency.ghz();
        self.power_coefficient * f * f * f
    }

    /// Cost contribution `cᵢ / fᵢ` at the given frequency.
    pub fn cost_at(&self, frequency: Frequency) -> f64 {
        self.performance_weight / frequency.ghz()
    }
}

/// How to solve the distribution problem.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DistributionMethod {
    /// Greedy descent: repeatedly step down the frequency of the resource
    /// whose step costs the least additional execution time per watt saved
    /// (Eq. 7.3). This is what fits in a kernel.
    Greedy,
    /// Exhaustive branch-and-bound over the discrete frequency combinations;
    /// optimal but exponential in the number of resources.
    BranchAndBound,
}

/// The outcome of a budget distribution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DistributionResult {
    /// Selected frequency per resource, in the order the resources were given.
    pub frequencies: Vec<Frequency>,
    /// Total dynamic power at the selected frequencies, in watts.
    pub total_power_w: f64,
    /// Total cost `J` (Eq. 7.1) at the selected frequencies.
    pub cost: f64,
    /// Whether the budget could be met at all (if `false`, every resource is
    /// at its minimum frequency and the budget is still exceeded).
    pub feasible: bool,
}

/// Distributes `budget_w` of dynamic power across the resources.
///
/// # Errors
///
/// Returns [`DtpmError::InvalidConfig`] if no resources are given or the
/// budget is negative/not finite.
pub fn distribute_budget(
    resources: &[ResourceLoad],
    budget_w: f64,
    method: DistributionMethod,
) -> Result<DistributionResult, DtpmError> {
    if resources.is_empty() {
        return Err(DtpmError::InvalidConfig(
            "budget distribution needs at least one resource",
        ));
    }
    if !(budget_w >= 0.0) || !budget_w.is_finite() {
        return Err(DtpmError::InvalidConfig(
            "power budget must be finite and non-negative",
        ));
    }
    match method {
        DistributionMethod::Greedy => Ok(greedy(resources, budget_w)),
        DistributionMethod::BranchAndBound => Ok(branch_and_bound(resources, budget_w)),
    }
}

fn summarise(resources: &[ResourceLoad], freqs: &[Frequency], budget_w: f64) -> DistributionResult {
    let total_power_w: f64 = resources
        .iter()
        .zip(freqs)
        .map(|(r, &f)| r.power_at(f))
        .sum();
    let cost: f64 = resources
        .iter()
        .zip(freqs)
        .map(|(r, &f)| r.cost_at(f))
        .sum();
    DistributionResult {
        frequencies: freqs.to_vec(),
        total_power_w,
        cost,
        feasible: total_power_w <= budget_w + 1e-12,
    }
}

/// Greedy throttling (Eq. 7.3): start with every resource at its maximum
/// frequency; while the budget is exceeded, step down the resource whose step
/// increases the cost the least per watt of power saved.
fn greedy(resources: &[ResourceLoad], budget_w: f64) -> DistributionResult {
    let mut freqs: Vec<Frequency> = resources
        .iter()
        .map(|r| r.opps.highest().frequency)
        .collect();
    loop {
        let result = summarise(resources, &freqs, budget_w);
        if result.feasible {
            return result;
        }
        // Pick the cheapest step-down.
        let mut best: Option<(usize, Frequency, f64)> = None;
        for (i, resource) in resources.iter().enumerate() {
            if let Some(lower) = resource.opps.step_down(freqs[i]) {
                let power_saved = resource.power_at(freqs[i]) - resource.power_at(lower.frequency);
                let cost_added = resource.cost_at(lower.frequency) - resource.cost_at(freqs[i]);
                if power_saved <= 0.0 {
                    continue;
                }
                let ratio = cost_added / power_saved;
                if best.map(|(_, _, b)| ratio < b).unwrap_or(true) {
                    best = Some((i, lower.frequency, ratio));
                }
            }
        }
        match best {
            Some((i, freq, _)) => freqs[i] = freq,
            // Everything already at minimum: infeasible.
            None => return summarise(resources, &freqs, budget_w),
        }
    }
}

/// Exhaustive search over all discrete frequency combinations with pruning on
/// the power constraint (the resource counts here are tiny, so this is cheap
/// enough offline; the kernel cannot afford the recursion, as the thesis
/// notes).
fn branch_and_bound(resources: &[ResourceLoad], budget_w: f64) -> DistributionResult {
    struct Search<'a> {
        resources: &'a [ResourceLoad],
        budget_w: f64,
        best_cost: f64,
        best_freqs: Option<Vec<Frequency>>,
    }

    impl Search<'_> {
        fn recurse(
            &mut self,
            index: usize,
            chosen: &mut Vec<Frequency>,
            power_so_far: f64,
            cost_so_far: f64,
        ) {
            if power_so_far > self.budget_w + 1e-12 {
                return; // prune: power only grows as we add resources
            }
            if cost_so_far >= self.best_cost {
                return; // prune: cost only grows
            }
            if index == self.resources.len() {
                self.best_cost = cost_so_far;
                self.best_freqs = Some(chosen.clone());
                return;
            }
            let resource = &self.resources[index];
            // Try the highest frequencies first so good solutions are found early.
            for op in resource.opps.points().iter().rev() {
                chosen.push(op.frequency);
                self.recurse(
                    index + 1,
                    chosen,
                    power_so_far + resource.power_at(op.frequency),
                    cost_so_far + resource.cost_at(op.frequency),
                );
                chosen.pop();
            }
        }
    }

    let mut search = Search {
        resources,
        budget_w,
        best_cost: f64::INFINITY,
        best_freqs: None,
    };
    search.recurse(0, &mut Vec::new(), 0.0, 0.0);

    match search.best_freqs {
        Some(freqs) => summarise(resources, &freqs, budget_w),
        // Infeasible: report the all-minimum configuration like the greedy path.
        None => {
            let freqs: Vec<Frequency> = resources
                .iter()
                .map(|r| r.opps.lowest().frequency)
                .collect();
            summarise(resources, &freqs, budget_w)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cpu_gpu_resources() -> Vec<ResourceLoad> {
        vec![
            ResourceLoad {
                name: "big-cpu".to_owned(),
                performance_weight: 3.0,
                power_coefficient: 0.9,
                opps: OppTable::exynos5410_big(),
            },
            ResourceLoad {
                name: "gpu".to_owned(),
                performance_weight: 1.0,
                power_coefficient: 2.0,
                opps: OppTable::exynos5410_gpu(),
            },
        ]
    }

    #[test]
    fn generous_budget_keeps_everything_at_max() {
        let resources = cpu_gpu_resources();
        for method in [
            DistributionMethod::Greedy,
            DistributionMethod::BranchAndBound,
        ] {
            let result = distribute_budget(&resources, 100.0, method).unwrap();
            assert!(result.feasible);
            assert_eq!(result.frequencies[0].mhz(), 1600);
            assert_eq!(result.frequencies[1].mhz(), 533);
        }
    }

    #[test]
    fn tight_budget_throttles_the_resource_with_the_best_power_per_cost() {
        let resources = cpu_gpu_resources();
        // The CPU dominates the power draw (a³f³ with a ten-fold larger power
        // coefficient at its frequencies), so stepping it down frees far more
        // power per unit of added cost than throttling the tiny GPU.
        let result = distribute_budget(&resources, 3.2, DistributionMethod::Greedy).unwrap();
        assert!(result.feasible);
        assert!(
            result.frequencies[0].mhz() < 1600,
            "CPU should be throttled"
        );
        assert_eq!(result.frequencies[1].mhz(), 533, "GPU spared");
    }

    #[test]
    fn branch_and_bound_never_loses_to_greedy() {
        let resources = cpu_gpu_resources();
        for budget in [0.5, 1.0, 2.0, 3.0, 4.0, 5.0] {
            let greedy = distribute_budget(&resources, budget, DistributionMethod::Greedy).unwrap();
            let optimal =
                distribute_budget(&resources, budget, DistributionMethod::BranchAndBound).unwrap();
            if greedy.feasible && optimal.feasible {
                assert!(
                    optimal.cost <= greedy.cost + 1e-9,
                    "budget {budget}: optimal {} vs greedy {}",
                    optimal.cost,
                    greedy.cost
                );
            }
        }
    }

    #[test]
    fn infeasible_budget_reports_all_minimum() {
        let resources = cpu_gpu_resources();
        let result = distribute_budget(&resources, 0.0, DistributionMethod::Greedy).unwrap();
        assert!(!result.feasible);
        assert_eq!(result.frequencies[0].mhz(), 800);
        assert_eq!(result.frequencies[1].mhz(), 177);
        let bb = distribute_budget(&resources, 0.0, DistributionMethod::BranchAndBound).unwrap();
        assert!(!bb.feasible);
    }

    #[test]
    fn three_resource_distribution_includes_little_cluster() {
        let mut resources = cpu_gpu_resources();
        resources.push(ResourceLoad {
            name: "little-cpu".to_owned(),
            performance_weight: 0.5,
            power_coefficient: 0.15,
            opps: OppTable::exynos5410_little(),
        });
        let result =
            distribute_budget(&resources, 2.5, DistributionMethod::BranchAndBound).unwrap();
        assert!(result.feasible);
        assert_eq!(result.frequencies.len(), 3);
        assert!(result.total_power_w <= 2.5 + 1e-9);
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(distribute_budget(&[], 1.0, DistributionMethod::Greedy).is_err());
        let resources = cpu_gpu_resources();
        assert!(distribute_budget(&resources, -1.0, DistributionMethod::Greedy).is_err());
        assert!(distribute_budget(&resources, f64::NAN, DistributionMethod::Greedy).is_err());
    }

    #[test]
    fn cost_decreases_with_larger_budget() {
        let resources = cpu_gpu_resources();
        let small = distribute_budget(&resources, 1.5, DistributionMethod::Greedy).unwrap();
        let large = distribute_budget(&resources, 4.0, DistributionMethod::Greedy).unwrap();
        assert!(large.cost <= small.cost);
        assert!(large.total_power_w >= small.total_power_w);
    }
}

//! Error type for the DTPM policy.

use std::error::Error;
use std::fmt;

/// Errors returned by the DTPM predictor, budget computation and policy.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DtpmError {
    /// The identified thermal model does not have the expected dimensions
    /// (four hotspots, four power inputs).
    ModelShape {
        /// Number of states in the supplied model.
        states: usize,
        /// Number of inputs in the supplied model.
        inputs: usize,
    },
    /// A configuration value was out of range.
    InvalidConfig(&'static str),
    /// A decision input (temperature or power measurement) was NaN or
    /// infinite. The policy refuses to classify on corrupt data — the caller
    /// must screen or drain instead.
    NonFiniteInput(&'static str),
    /// The thermal model rejected an operation.
    Thermal(String),
    /// The platform model rejected an operation.
    Platform(String),
}

impl fmt::Display for DtpmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DtpmError::ModelShape { states, inputs } => write!(
                f,
                "thermal model has {states} states and {inputs} inputs, expected 4 and 4"
            ),
            DtpmError::InvalidConfig(msg) => write!(f, "invalid DTPM configuration: {msg}"),
            DtpmError::NonFiniteInput(what) => {
                write!(f, "non-finite decision input: {what}")
            }
            DtpmError::Thermal(msg) => write!(f, "thermal model error: {msg}"),
            DtpmError::Platform(msg) => write!(f, "platform model error: {msg}"),
        }
    }
}

impl Error for DtpmError {}

impl From<thermal_model::ThermalError> for DtpmError {
    fn from(err: thermal_model::ThermalError) -> Self {
        DtpmError::Thermal(err.to_string())
    }
}

impl From<soc_model::SocError> for DtpmError {
    fn from(err: soc_model::SocError) -> Self {
        DtpmError::Platform(err.to_string())
    }
}

//! DTPM configuration parameters.

use serde::{Deserialize, Serialize};

/// Tunables of the DTPM algorithm.
///
/// The defaults reproduce the configuration evaluated in the paper: a 63 °C
/// constraint (the same threshold the fan controller uses, for a fair
/// comparison), a 1 s prediction interval realised as ten 100 ms control
/// intervals, and an empirically chosen hotspot-imbalance threshold Δ for the
/// hottest-core shutdown rule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DtpmConfig {
    /// Maximum permissible hotspot temperature `T_max`, in °C.
    pub temperature_constraint_c: f64,
    /// Prediction horizon in control intervals (10 intervals × 100 ms = 1 s).
    pub prediction_horizon_steps: usize,
    /// Hotspot imbalance threshold Δ (°C) above which the hottest core is put
    /// to sleep rather than throttling the whole cluster further (Eq. 5.9).
    pub hot_core_delta_c: f64,
    /// Minimum number of big cores kept online before migrating to the little
    /// cluster.
    pub min_big_cores: usize,
    /// Safety margin (°C) subtracted from the constraint when computing the
    /// power budget, absorbing prediction error (the paper reports < 1 °C at
    /// the 1 s horizon).
    pub prediction_margin_c: f64,
}

impl Default for DtpmConfig {
    fn default() -> Self {
        DtpmConfig {
            temperature_constraint_c: 63.0,
            prediction_horizon_steps: 10,
            hot_core_delta_c: 1.0,
            min_big_cores: 2,
            prediction_margin_c: 0.5,
        }
    }
}

impl DtpmConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`crate::DtpmError::InvalidConfig`] for non-physical values.
    pub fn validate(&self) -> Result<(), crate::DtpmError> {
        if !(self.temperature_constraint_c > 0.0) {
            return Err(crate::DtpmError::InvalidConfig(
                "temperature constraint must be positive",
            ));
        }
        if self.prediction_horizon_steps == 0 {
            return Err(crate::DtpmError::InvalidConfig(
                "prediction horizon must be at least one step",
            ));
        }
        if self.hot_core_delta_c < 0.0 {
            return Err(crate::DtpmError::InvalidConfig(
                "hot-core delta must be non-negative",
            ));
        }
        if self.min_big_cores == 0 || self.min_big_cores > 4 {
            return Err(crate::DtpmError::InvalidConfig(
                "minimum big-core count must be between 1 and 4",
            ));
        }
        if self.prediction_margin_c < 0.0 {
            return Err(crate::DtpmError::InvalidConfig(
                "prediction margin must be non-negative",
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_settings() {
        let cfg = DtpmConfig::default();
        assert_eq!(cfg.temperature_constraint_c, 63.0);
        assert_eq!(cfg.prediction_horizon_steps, 10);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn validation_rejects_bad_values() {
        assert!(DtpmConfig {
            temperature_constraint_c: 0.0,
            ..DtpmConfig::default()
        }
        .validate()
        .is_err());
        assert!(DtpmConfig {
            prediction_horizon_steps: 0,
            ..DtpmConfig::default()
        }
        .validate()
        .is_err());
        assert!(DtpmConfig {
            hot_core_delta_c: -1.0,
            ..DtpmConfig::default()
        }
        .validate()
        .is_err());
        assert!(DtpmConfig {
            min_big_cores: 0,
            ..DtpmConfig::default()
        }
        .validate()
        .is_err());
        assert!(DtpmConfig {
            min_big_cores: 5,
            ..DtpmConfig::default()
        }
        .validate()
        .is_err());
        assert!(DtpmConfig {
            prediction_margin_c: -0.1,
            ..DtpmConfig::default()
        }
        .validate()
        .is_err());
    }
}

//! Equivalence bars of the batched control-path prediction.
//!
//! Two properties gate the one-shot / panel prediction rework (same
//! discipline as `crates/sim/tests/equivalence.rs` on the plant side):
//!
//! 1. the one-shot horizon-map prediction agrees with the iterated
//!    discrete-model predictor to ≤ 1e-12 °C over random temperatures,
//!    powers and horizons 1..=32, and
//! 2. [`BatchPredictor`] panel predictions are **bit-identical** per lane to
//!    the scalar [`ThermalPredictor::predict_with`] for lane counts
//!    1/3/8/11 (full register-blocked chunks and scalar remainders alike),
//!    so batching a sweep's decide pre-pass can never flip a control
//!    decision.

use dtpm::{BatchPredictor, ThermalPredictor};
use numeric::Matrix;
use power_model::DomainPower;
use proptest::prelude::*;
use thermal_model::DiscreteThermalModel;

fn predictor() -> ThermalPredictor {
    let a = Matrix::from_rows(&[
        &[0.71, 0.09, 0.09, 0.09],
        &[0.09, 0.71, 0.09, 0.09],
        &[0.09, 0.09, 0.71, 0.09],
        &[0.09, 0.09, 0.09, 0.71],
    ])
    .unwrap();
    let b = Matrix::from_rows(&[
        &[0.26, 0.10, 0.16, 0.06],
        &[0.24, 0.12, 0.10, 0.06],
        &[0.26, 0.10, 0.16, 0.06],
        &[0.24, 0.12, 0.10, 0.06],
    ])
    .unwrap();
    ThermalPredictor::new(DiscreteThermalModel::new(a, b, 0.1).unwrap(), 28.0).unwrap()
}

proptest! {
    #[test]
    fn one_shot_prediction_matches_iterated_model(
        t0 in 28.0..80.0f64,
        t1 in 28.0..80.0f64,
        t2 in 28.0..80.0f64,
        t3 in 28.0..80.0f64,
        p_big in 0.0..6.0f64,
        p_little in 0.0..1.0f64,
        p_gpu in 0.0..2.0f64,
        p_mem in 0.0..1.0f64,
        horizon in 1usize..33,
    ) {
        let predictor = predictor();
        let temps = [t0, t1, t2, t3];
        let powers = DomainPower::new(p_big, p_little, p_gpu, p_mem);
        let one_shot = predictor.predict(temps, &powers, horizon).unwrap();
        let iterated = predictor.predict_iterated(temps, &powers, horizon).unwrap();
        for i in 0..4 {
            prop_assert!(
                (one_shot[i] - iterated[i]).abs() <= 1e-12,
                "horizon {} hotspot {}: {} vs {}",
                horizon,
                i,
                one_shot[i],
                iterated[i]
            );
        }
        let peak = predictor.predict_peak(temps, &powers, horizon).unwrap();
        let peak_iterated = predictor
            .predict_peak_iterated(temps, &powers, horizon)
            .unwrap();
        prop_assert!((peak - peak_iterated).abs() <= 1e-12);
    }

    #[test]
    fn panel_predictions_bit_identical_to_scalar_for_random_lanes(
        base_t in 35.0..65.0f64,
        spread in 0.0..8.0f64,
        base_p in 0.5..5.0f64,
        horizon in 1usize..33,
    ) {
        let predictor = predictor();
        let map = predictor.horizon_map(horizon).unwrap();
        for lanes in [1usize, 3, 8, 11] {
            let mut batch =
                BatchPredictor::for_predictor(&predictor, horizon, lanes).unwrap();
            let inputs: Vec<([f64; 4], DomainPower)> = (0..lanes)
                .map(|lane| {
                    let l = lane as f64;
                    (
                        [
                            base_t + spread * (0.31 * l).sin(),
                            base_t + spread * (0.57 * l).cos(),
                            base_t + spread * (0.73 * l).sin(),
                            base_t + spread * (0.91 * l).cos(),
                        ],
                        DomainPower::new(base_p + 0.13 * l, 0.05, 0.2, 0.35),
                    )
                })
                .collect();
            for (lane, (temps, powers)) in inputs.iter().enumerate() {
                batch.set_lane(lane, *temps, powers);
            }
            batch.predict();
            for (lane, (temps, powers)) in inputs.iter().enumerate() {
                let scalar = predictor.predict_with(*temps, powers, &map).unwrap();
                let batched = batch.predicted_c(lane);
                for i in 0..4 {
                    prop_assert_eq!(
                        batched[i].to_bits(),
                        scalar[i].to_bits(),
                        "lanes={} lane={} hotspot={}",
                        lanes,
                        lane,
                        i
                    );
                }
                prop_assert_eq!(
                    batch.peak_c(lane).to_bits(),
                    predictor
                        .predict_peak_with(*temps, powers, &map)
                        .unwrap()
                        .to_bits()
                );
            }
        }
    }
}

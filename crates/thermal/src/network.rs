//! Ground-truth RC thermal network (the simulated silicon).
//!
//! Using the duality between thermal and electrical quantities, the plant is a
//! lumped RC network: every node has a heat capacitance (J/K) and nodes are
//! connected by thermal conductances (W/K); some nodes are additionally
//! connected to the ambient. The node temperatures obey
//!
//! ```text
//! C·dT/dt = −G·T(t) + P(t) + G_amb·T_amb        (Eq. 4.3 of the paper)
//! ```
//!
//! The simulator integrates this with a fixed-step RK4 scheme at a much finer
//! time step than the 100 ms control interval, so the controller's identified
//! model is a genuine *reduction* of the plant, exactly as on real hardware.

use serde::{Deserialize, Serialize};

use numeric::{Matrix, Panel, PanelF32, Vector};

use crate::ThermalError;

/// Index of a node in a [`ThermalNetwork`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct NodeId(pub usize);

/// Builder for a [`ThermalNetwork`].
///
/// # Example
///
/// ```
/// use thermal_model::ThermalNetworkBuilder;
///
/// # fn main() -> Result<(), thermal_model::ThermalError> {
/// let mut b = ThermalNetworkBuilder::new();
/// let die = b.add_node("die", 0.2);
/// let case = b.add_node("case", 8.0);
/// b.connect(die, case, 2.0)?;
/// b.connect_to_ambient(case, 0.07)?;
/// let network = b.build()?;
/// assert_eq!(network.node_count(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct ThermalNetworkBuilder {
    names: Vec<String>,
    capacitances: Vec<f64>,
    /// (node a, node b, conductance W/K)
    couplings: Vec<(usize, usize, f64)>,
    /// per-node conductance to ambient
    ambient_conductances: Vec<f64>,
}

impl ThermalNetworkBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        ThermalNetworkBuilder::default()
    }

    /// Adds a node with the given name and heat capacitance (J/K) and returns
    /// its id.
    pub fn add_node(&mut self, name: &str, capacitance_j_per_k: f64) -> NodeId {
        self.names.push(name.to_owned());
        self.capacitances.push(capacitance_j_per_k);
        self.ambient_conductances.push(0.0);
        NodeId(self.names.len() - 1)
    }

    /// Connects two nodes with a thermal conductance (W/K).
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidParameter`] for unknown nodes,
    /// self-connections or non-positive conductances.
    pub fn connect(
        &mut self,
        a: NodeId,
        b: NodeId,
        conductance_w_per_k: f64,
    ) -> Result<(), ThermalError> {
        if a.0 >= self.names.len() || b.0 >= self.names.len() {
            return Err(ThermalError::InvalidParameter("unknown node id"));
        }
        if a == b {
            return Err(ThermalError::InvalidParameter(
                "cannot connect a node to itself",
            ));
        }
        if !(conductance_w_per_k > 0.0) {
            return Err(ThermalError::InvalidParameter(
                "conductance must be positive",
            ));
        }
        self.couplings.push((a.0, b.0, conductance_w_per_k));
        Ok(())
    }

    /// Connects a node to the ambient with the given conductance (W/K).
    /// Calling this twice for a node accumulates the conductances.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidParameter`] for unknown nodes or
    /// non-positive conductances.
    pub fn connect_to_ambient(
        &mut self,
        node: NodeId,
        conductance_w_per_k: f64,
    ) -> Result<(), ThermalError> {
        if node.0 >= self.names.len() {
            return Err(ThermalError::InvalidParameter("unknown node id"));
        }
        if !(conductance_w_per_k > 0.0) {
            return Err(ThermalError::InvalidParameter(
                "conductance must be positive",
            ));
        }
        self.ambient_conductances[node.0] += conductance_w_per_k;
        Ok(())
    }

    /// Builds the network.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidParameter`] if the network has no nodes,
    /// a node has a non-positive capacitance, or no node is connected to the
    /// ambient (the network could then not shed heat at all).
    pub fn build(self) -> Result<ThermalNetwork, ThermalError> {
        if self.names.is_empty() {
            return Err(ThermalError::InvalidParameter("network has no nodes"));
        }
        if self.capacitances.iter().any(|&c| !(c > 0.0)) {
            return Err(ThermalError::InvalidParameter(
                "all node capacitances must be positive",
            ));
        }
        if self.ambient_conductances.iter().all(|&g| g == 0.0) {
            return Err(ThermalError::InvalidParameter(
                "at least one node must be connected to the ambient",
            ));
        }
        // Hot-path precomputation: the RK4 integrator multiplies by the
        // reciprocal capacitance instead of dividing, and walks `couplings`
        // as a flat edge list.
        let inv_capacitances = self.capacitances.iter().map(|c| 1.0 / c).collect();
        Ok(ThermalNetwork {
            names: self.names,
            capacitances: self.capacitances,
            couplings: self.couplings,
            ambient_conductances: self.ambient_conductances,
            inv_capacitances,
        })
    }
}

/// Extra node-to-ambient conductance applied during a single integration step
/// without modifying (or cloning) the network — how the fan's contribution
/// enters the hot path.
///
/// The per-interval simulation loop used to call
/// [`ThermalNetwork::with_extra_ambient_conductance`], cloning the entire
/// network (names included) once per control interval. A `FanBoost` carries
/// the same information as a two-word value instead.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FanBoost {
    node: usize,
    conductance_w_per_k: f64,
}

impl FanBoost {
    /// No extra conductance anywhere (fan off).
    pub const NONE: FanBoost = FanBoost {
        node: 0,
        conductance_w_per_k: 0.0,
    };

    /// Adds `conductance_w_per_k` (clamped at zero) of extra ambient
    /// conductance to `node` for the duration of a step.
    pub fn at(node: NodeId, conductance_w_per_k: f64) -> Self {
        FanBoost {
            node: node.0,
            conductance_w_per_k: conductance_w_per_k.max(0.0),
        }
    }

    /// The boosted node.
    pub fn node(&self) -> NodeId {
        NodeId(self.node)
    }

    /// The extra conductance, W/K.
    pub fn conductance_w_per_k(&self) -> f64 {
        self.conductance_w_per_k
    }
}

impl Default for FanBoost {
    fn default() -> Self {
        FanBoost::NONE
    }
}

/// Reusable buffers for the in-place RK4 integrator
/// ([`ThermalNetwork::step_into`]).
///
/// Holding one `RkScratch` per integration loop makes stepping completely
/// allocation-free: the four slope vectors, the stage-state vector and the
/// edge-flow accumulator are allocated once and reused for every micro-step.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RkScratch {
    k1: Vec<f64>,
    k2: Vec<f64>,
    k3: Vec<f64>,
    k4: Vec<f64>,
    stage: Vec<f64>,
    flows: Vec<f64>,
}

impl RkScratch {
    /// Creates scratch buffers sized for a network with `node_count` nodes.
    pub fn new(node_count: usize) -> Self {
        let mut scratch = RkScratch::default();
        scratch.ensure(node_count);
        scratch
    }

    fn ensure(&mut self, n: usize) {
        for buf in [
            &mut self.k1,
            &mut self.k2,
            &mut self.k3,
            &mut self.k4,
            &mut self.stage,
            &mut self.flows,
        ] {
            buf.resize(n, 0.0);
        }
    }
}

/// A lumped RC thermal network integrated with fixed-step RK4.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThermalNetwork {
    names: Vec<String>,
    capacitances: Vec<f64>,
    couplings: Vec<(usize, usize, f64)>,
    ambient_conductances: Vec<f64>,
    /// `1 / capacitances[i]`, precomputed at build time for the integrator.
    inv_capacitances: Vec<f64>,
}

impl ThermalNetwork {
    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.names.len()
    }

    /// Name of a node.
    ///
    /// # Panics
    ///
    /// Panics if the node id is out of range.
    pub fn node_name(&self, node: NodeId) -> &str {
        &self.names[node.0]
    }

    /// Looks up a node id by name.
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.names.iter().position(|n| n == name).map(NodeId)
    }

    /// Additional conductance to ambient applied to `node` (used to model the
    /// fan speeding up); returns a modified copy.
    pub fn with_extra_ambient_conductance(&self, node: NodeId, extra_w_per_k: f64) -> Self {
        let mut copy = self.clone();
        if let Some(g) = copy.ambient_conductances.get_mut(node.0) {
            *g += extra_w_per_k.max(0.0);
        }
        copy
    }

    /// Temperature derivative `dT/dt` for the given state, power injection and
    /// ambient temperature, written into `out` without allocating. `flows`
    /// accumulates the node-to-node edge flows.
    fn derivative_into(
        &self,
        temps: &[f64],
        powers: &[f64],
        ambient_c: f64,
        boost: FanBoost,
        flows: &mut [f64],
        out: &mut [f64],
    ) {
        flows.fill(0.0);
        // Node-to-node coupling over the flat edge list.
        for &(a, b, g) in &self.couplings {
            let flow = g * (temps[b] - temps[a]);
            flows[a] += flow;
            flows[b] -= flow;
        }
        // Ambient exchange and power injection.
        for (i, slot) in out.iter_mut().enumerate() {
            let mut g_amb = self.ambient_conductances[i];
            if i == boost.node {
                g_amb += boost.conductance_w_per_k;
            }
            let ambient_flow = g_amb * (ambient_c - temps[i]);
            *slot = (flows[i] + ambient_flow + powers[i]) * self.inv_capacitances[i];
        }
    }

    /// Advances `temps_c` in place by `dt` seconds using one RK4 step with the
    /// node power injections `powers_w` (W) held constant over the step.
    ///
    /// This is the allocation-free hot path: all intermediate state lives in
    /// `scratch`, and `fan_boost` injects the fan's extra ambient conductance
    /// without cloning the network (pass [`FanBoost::NONE`] when the fan is
    /// off). [`ThermalNetwork::step`] is a convenience wrapper around this
    /// method, so the two are bit-identical by construction.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::DimensionMismatch`] if the vectors have the
    /// wrong length, or [`ThermalError::InvalidParameter`] for a non-positive
    /// step size.
    pub fn step_into(
        &self,
        temps_c: &mut [f64],
        powers_w: &[f64],
        ambient_c: f64,
        dt_s: f64,
        fan_boost: FanBoost,
        scratch: &mut RkScratch,
    ) -> Result<(), ThermalError> {
        let n = self.node_count();
        if temps_c.len() != n {
            return Err(ThermalError::DimensionMismatch {
                what: "temperature vector",
                expected: n,
                actual: temps_c.len(),
            });
        }
        if powers_w.len() != n {
            return Err(ThermalError::DimensionMismatch {
                what: "power vector",
                expected: n,
                actual: powers_w.len(),
            });
        }
        if !(dt_s > 0.0) || !dt_s.is_finite() {
            return Err(ThermalError::InvalidParameter("step size must be positive"));
        }
        scratch.ensure(n);
        let RkScratch {
            k1,
            k2,
            k3,
            k4,
            stage,
            flows,
        } = scratch;

        self.derivative_into(temps_c, powers_w, ambient_c, fan_boost, flows, k1);
        for i in 0..n {
            stage[i] = temps_c[i] + 0.5 * dt_s * k1[i];
        }
        self.derivative_into(stage, powers_w, ambient_c, fan_boost, flows, k2);
        for i in 0..n {
            stage[i] = temps_c[i] + 0.5 * dt_s * k2[i];
        }
        self.derivative_into(stage, powers_w, ambient_c, fan_boost, flows, k3);
        for i in 0..n {
            stage[i] = temps_c[i] + dt_s * k3[i];
        }
        self.derivative_into(stage, powers_w, ambient_c, fan_boost, flows, k4);

        for i in 0..n {
            temps_c[i] += dt_s / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
        }
        Ok(())
    }

    /// Advances the node temperatures by `dt` seconds using one RK4 step with
    /// the node power injections `powers_w` (W) held constant over the step.
    ///
    /// Allocating convenience wrapper over [`ThermalNetwork::step_into`];
    /// prefer the latter (with a reused [`RkScratch`]) in loops.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::DimensionMismatch`] if the vectors have the
    /// wrong length, or [`ThermalError::InvalidParameter`] for a non-positive
    /// step size.
    pub fn step(
        &self,
        temps_c: &[f64],
        powers_w: &[f64],
        ambient_c: f64,
        dt_s: f64,
    ) -> Result<Vec<f64>, ThermalError> {
        if temps_c.len() != self.node_count() {
            return Err(ThermalError::DimensionMismatch {
                what: "temperature vector",
                expected: self.node_count(),
                actual: temps_c.len(),
            });
        }
        let mut out = temps_c.to_vec();
        let mut scratch = RkScratch::new(self.node_count());
        self.step_into(
            &mut out,
            powers_w,
            ambient_c,
            dt_s,
            FanBoost::NONE,
            &mut scratch,
        )?;
        Ok(out)
    }

    /// The node-to-node couplings as `(a, b, conductance W/K)` triples — the
    /// flat edge list the integrator walks.
    pub fn couplings(&self) -> &[(usize, usize, f64)] {
        &self.couplings
    }

    /// Per-node conductance to the ambient (W/K).
    pub fn ambient_conductances(&self) -> &[f64] {
        &self.ambient_conductances
    }

    /// Precomputes the exact one-micro-step RK4 transition for this network
    /// under a fixed fan boost, ambient temperature and step size.
    ///
    /// The thermal ODE is linear, `dT/dt = A·T + u` with constant `A` (the
    /// conductance/capacitance structure) and a per-step-constant drive `u`
    /// (power injection plus ambient exchange), so one classical RK4 step is
    /// *exactly* the affine map
    ///
    /// ```text
    /// T⁺ = R·T + S·u,   R = I + hA·K,   S = h·K,
    /// K = I + (hA/2)·(I + (hA/3)·(I + hA/4))
    /// ```
    ///
    /// [`StepTransition::apply`] evaluates that map with two dense
    /// matrix–vector products — several times cheaper than the four staged
    /// derivative sweeps of [`ThermalNetwork::step_into`], at the cost of
    /// floating-point *reassociation*: results agree with the staged RK4 to
    /// rounding error (~1e-12 °C over long horizons), not bit-exactly. The
    /// simulation hot loop caches one transition per (fan level, ambient)
    /// and reuses it for every micro-step.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidParameter`] for a non-positive step
    /// size.
    pub fn step_transition(
        &self,
        fan_boost: FanBoost,
        ambient_c: f64,
        dt_s: f64,
    ) -> Result<StepTransition, ThermalError> {
        let (r, s_power, ambient_drive) = self.transition_parts(fan_boost, ambient_c, dt_s)?;
        Ok(StepTransition {
            n: self.node_count(),
            r_t: r.transpose().as_slice().to_vec(),
            s_power_t: s_power.transpose().as_slice().to_vec(),
            ambient_drive,
        })
    }

    /// The affine one-micro-step RK4 map `T⁺ = R·T + S_p·p + c` shared by
    /// [`ThermalNetwork::step_transition`] (scalar, transposed storage) and
    /// [`ThermalNetwork::batch_step_transition`] (structure-of-arrays panel
    /// form). Returns `(R, S_p, c)` with the matrices in row-major layout.
    fn transition_parts(
        &self,
        fan_boost: FanBoost,
        ambient_c: f64,
        dt_s: f64,
    ) -> Result<(Matrix, Matrix, Vec<f64>), ThermalError> {
        if !(dt_s > 0.0) || !dt_s.is_finite() {
            return Err(ThermalError::InvalidParameter("step size must be positive"));
        }
        let n = self.node_count();

        // hA, with A_ij = ∂(dT_i/dt)/∂T_j.
        let mut ha = Matrix::zeros(n, n);
        for &(a, b, g) in &self.couplings {
            ha[(a, b)] += dt_s * g * self.inv_capacitances[a];
            ha[(a, a)] -= dt_s * g * self.inv_capacitances[a];
            ha[(b, a)] += dt_s * g * self.inv_capacitances[b];
            ha[(b, b)] -= dt_s * g * self.inv_capacitances[b];
        }
        for i in 0..n {
            let mut g_amb = self.ambient_conductances[i];
            if i == fan_boost.node {
                g_amb += fan_boost.conductance_w_per_k;
            }
            ha[(i, i)] -= dt_s * g_amb * self.inv_capacitances[i];
        }

        // K = I + (hA/2)·(I + (hA/3)·(I + hA/4)), Horner form of the RK4
        // polynomial; then R = I + hA·K and S = h·K.
        let identity = Matrix::identity(n);
        let k = identity
            .add(
                &ha.scale(0.5)
                    .mul(
                        &identity
                            .add(
                                &ha.scale(1.0 / 3.0)
                                    .mul(&identity.add(&ha.scale(0.25)).expect("same shape"))
                                    .expect("square"),
                            )
                            .expect("same shape"),
                    )
                    .expect("square"),
            )
            .expect("same shape");
        let r = identity
            .add(&ha.mul(&k).expect("square"))
            .expect("same shape");
        let s = k.scale(dt_s);

        // Fold the drive u = inv_cap ⊙ (p + g_amb·T_amb) into the matrices:
        // T⁺ = R·T + (S·diag(inv_cap))·p + S·(inv_cap ⊙ g_amb·T_amb).
        let mut s_power = s.clone();
        let mut ambient_drive = vec![0.0; n];
        for i in 0..n {
            let mut c = 0.0;
            for j in 0..n {
                let mut g_amb = self.ambient_conductances[j];
                if j == fan_boost.node {
                    g_amb += fan_boost.conductance_w_per_k;
                }
                c += s[(i, j)] * self.inv_capacitances[j] * g_amb * ambient_c;
                s_power[(i, j)] = s[(i, j)] * self.inv_capacitances[j];
            }
            ambient_drive[i] = c;
        }

        Ok((r, s_power, ambient_drive))
    }

    /// Precomputes the one-micro-step RK4 transition in its
    /// structure-of-arrays batch form: the same affine map as
    /// [`ThermalNetwork::step_transition`], stored row-major so
    /// [`BatchStepTransition::apply_panel`] can advance a whole temperature
    /// panel (one scenario per column) with the matrices loaded once per
    /// micro-step for all lanes.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidParameter`] for a non-positive step
    /// size.
    pub fn batch_step_transition(
        &self,
        fan_boost: FanBoost,
        ambient_c: f64,
        dt_s: f64,
    ) -> Result<BatchStepTransition, ThermalError> {
        let (r, s_power, ambient_drive) = self.transition_parts(fan_boost, ambient_c, dt_s)?;
        Ok(BatchStepTransition {
            n: self.node_count(),
            r,
            s_power,
            ambient_drive,
        })
    }

    /// Steady-state temperatures for constant power injections and ambient.
    ///
    /// Solves `G·T = P + G_amb·T_amb`.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::DimensionMismatch`] for a wrong-length power
    /// vector or [`ThermalError::Numeric`] if the conductance matrix is
    /// singular (no path to ambient).
    pub fn steady_state(&self, powers_w: &[f64], ambient_c: f64) -> Result<Vec<f64>, ThermalError> {
        let n = self.node_count();
        if powers_w.len() != n {
            return Err(ThermalError::DimensionMismatch {
                what: "power vector",
                expected: n,
                actual: powers_w.len(),
            });
        }
        let mut g = Matrix::zeros(n, n);
        for &(a, b, cond) in &self.couplings {
            g[(a, a)] += cond;
            g[(b, b)] += cond;
            g[(a, b)] -= cond;
            g[(b, a)] -= cond;
        }
        let mut rhs = Vector::zeros(n);
        for i in 0..n {
            g[(i, i)] += self.ambient_conductances[i];
            rhs[i] = powers_w[i] + self.ambient_conductances[i] * ambient_c;
        }
        Ok(g.solve(&rhs)?.into_vec())
    }

    /// The thermal capacitance of each node (J/K).
    pub fn capacitances(&self) -> &[f64] {
        &self.capacitances
    }
}

/// Precomputed one-micro-step RK4 transition of a [`ThermalNetwork`] for a
/// fixed fan boost, ambient temperature and step size
/// (see [`ThermalNetwork::step_transition`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StepTransition {
    n: usize,
    /// `Rᵀ`, row-major `n × n` — i.e. the columns of `R` stored contiguously,
    /// so the apply loop is a dense axpy sweep the compiler can vectorise.
    r_t: Vec<f64>,
    /// `(S·diag(1/C))ᵀ`, row-major `n × n` (applied to the raw power vector).
    s_power_t: Vec<f64>,
    /// `S·(1/C ⊙ G_amb·T_amb)`, the constant ambient drive.
    ambient_drive: Vec<f64>,
}

impl StepTransition {
    /// Number of nodes the transition covers.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Advances `temps` in place by one micro-step with the node power
    /// injections `powers_w`, using `tmp` as scratch. Allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if `temps`, `powers_w` or `tmp` do not cover all nodes.
    #[inline]
    pub fn apply(&self, temps: &mut [f64], powers_w: &[f64], tmp: &mut [f64]) {
        let n = self.n;
        assert_eq!(temps.len(), n, "temperature vector length");
        assert_eq!(powers_w.len(), n, "power vector length");
        assert_eq!(tmp.len(), n, "scratch vector length");
        // Column-major (axpy) accumulation: tmp = drive + Σ_j R[:,j]·t_j +
        // Σ_j S[:,j]·p_j. Every tmp element is independent, so the inner
        // loops vectorise without any reduction reassociation.
        tmp.copy_from_slice(&self.ambient_drive);
        for j in 0..n {
            let tj = temps[j];
            let pj = powers_w[j];
            let r_col = &self.r_t[j * n..(j + 1) * n];
            let s_col = &self.s_power_t[j * n..(j + 1) * n];
            for i in 0..n {
                tmp[i] = numeric::simd::madd2(r_col[i], tj, s_col[i], pj, tmp[i]);
            }
        }
        temps.copy_from_slice(tmp);
    }
}

/// The batched (structure-of-arrays) form of a [`StepTransition`]: the same
/// precomputed affine RK4 micro-step, applied to a temperature [`Panel`] that
/// holds one scenario per column
/// (see [`ThermalNetwork::batch_step_transition`]).
///
/// [`BatchStepTransition::apply_panel`] advances every lane in one blocked
/// mat-mat pass (`numeric::affine_pair_apply`), so the two 8×8 matrices are
/// streamed through the cache once per micro-step for *all* scenarios;
/// [`BatchStepTransition::apply_lane`] advances a single column at stride and
/// is used when lanes diverge (e.g. different fan levels) within a batch.
/// Both paths accumulate each lane in the same order as
/// [`StepTransition::apply`], so a batched lane's trajectory is bit-identical
/// to the scalar transition given identical power inputs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchStepTransition {
    n: usize,
    /// `R`, row-major `n × n`.
    r: Matrix,
    /// `S·diag(1/C)`, row-major `n × n` (applied to the raw power panel).
    s_power: Matrix,
    /// `S·(1/C ⊙ G_amb·T_amb)`, the constant ambient drive.
    ambient_drive: Vec<f64>,
}

impl BatchStepTransition {
    /// Number of nodes the transition covers.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// The transition matrix `R` (row-major `n × n`).
    ///
    /// Together with [`BatchStepTransition::s_power`] and
    /// [`BatchStepTransition::ambient_drive`] this exposes the complete
    /// affine micro-step `T⁺ = R·T + S_p·p + c` as borrowed views, so an
    /// alternative `PlantEngine` backend (a GPU kernel over device buffers,
    /// a different SoA layout) can consume the precomputed per-step math
    /// without going through the CPU [`Panel`] apply paths.
    pub fn r(&self) -> &Matrix {
        &self.r
    }

    /// The power-injection matrix `S·diag(1/C)` (row-major `n × n`), applied
    /// to the raw per-node power vector (see [`BatchStepTransition::r`]).
    pub fn s_power(&self) -> &Matrix {
        &self.s_power
    }

    /// The constant ambient drive `S·(1/C ⊙ G_amb·T_amb)` (length `n`, see
    /// [`BatchStepTransition::r`]).
    pub fn ambient_drive(&self) -> &[f64] {
        &self.ambient_drive
    }

    /// Advances every lane of `temps` by one micro-step with the per-lane
    /// node power injections in `powers`, using `tmp` as scratch (its
    /// contents are overwritten; after the call `temps` holds the new
    /// temperatures). Allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if the panels do not all have `node_count` rows and matching
    /// lane counts.
    #[inline]
    pub fn apply_panel(&self, temps: &mut Panel, powers: &Panel, tmp: &mut Panel) {
        numeric::affine_pair_apply(
            &self.r,
            &self.s_power,
            &self.ambient_drive,
            temps,
            powers,
            tmp,
        )
        .expect("panel shapes must cover all nodes");
        std::mem::swap(temps, tmp);
    }

    /// Advances only lane `lane` of `temps` by one micro-step — the strided
    /// fallback for batches whose lanes need different transitions. The
    /// per-lane accumulation order matches [`BatchStepTransition::apply_panel`]
    /// exactly, so mixing the two paths never changes a trajectory.
    ///
    /// # Panics
    ///
    /// Panics if the panels do not have `node_count` rows, `lane` is out of
    /// range, or `col` does not cover all nodes.
    #[inline]
    pub fn apply_lane(&self, temps: &mut Panel, powers: &Panel, lane: usize, col: &mut [f64]) {
        let n = self.n;
        assert_eq!(temps.rows(), n, "temperature panel rows");
        assert_eq!(powers.rows(), n, "power panel rows");
        assert_eq!(col.len(), n, "column scratch length");
        assert!(lane < temps.lanes(), "lane index out of bounds");
        let r = self.r.as_slice();
        let s = self.s_power.as_slice();
        for (i, slot) in col.iter_mut().enumerate() {
            let mut acc = self.ambient_drive[i];
            for j in 0..n {
                acc = numeric::simd::madd2(
                    r[i * n + j],
                    temps.get(j, lane),
                    s[i * n + j],
                    powers.get(j, lane),
                    acc,
                );
            }
            *slot = acc;
        }
        for (i, &v) in col.iter().enumerate() {
            temps.set(i, lane, v);
        }
    }
}

/// Single-precision demotion of a [`BatchStepTransition`] for the
/// mixed-precision batch engine.
///
/// The transition matrices are always *computed* in f64 — the RK4
/// discretisation involves matrix powers whose conditioning f32 would
/// visibly degrade — and demoted element-wise once per control interval via
/// [`BatchStepTransitionF32::from_f64`]. The apply paths then run entirely
/// at f32 width through the width-generic panel kernels
/// ([`numeric::affine_pair_apply_elem`]), doubling the lanes advanced per
/// vector relative to [`BatchStepTransition::apply_panel`]. Like the f64
/// form, the panel and per-lane paths share one per-lane accumulation
/// order, so mixing them never changes a trajectory.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchStepTransitionF32 {
    n: usize,
    /// `R`, demoted, as an `n × n` row-major panel-as-matrix.
    r: PanelF32,
    /// `S·diag(1/C)`, demoted, `n × n` row-major.
    s_power: PanelF32,
    /// `S·(1/C ⊙ G_amb·T_amb)`, demoted.
    ambient_drive: Vec<f32>,
}

impl BatchStepTransitionF32 {
    /// Demotes a precomputed f64 transition to f32 storage, element-wise.
    pub fn from_f64(full: &BatchStepTransition) -> Self {
        let n = full.n;
        let mut r = PanelF32::zeros(n, n);
        let mut s_power = PanelF32::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                r.set(i, j, full.r[(i, j)] as f32);
                s_power.set(i, j, full.s_power[(i, j)] as f32);
            }
        }
        BatchStepTransitionF32 {
            n,
            r,
            s_power,
            ambient_drive: full.ambient_drive.iter().map(|&v| v as f32).collect(),
        }
    }

    /// Number of nodes the transition covers.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Advances every lane of `temps` by one f32 micro-step (see
    /// [`BatchStepTransition::apply_panel`]); `tmp` is overwritten scratch.
    ///
    /// # Panics
    ///
    /// Panics if the panels do not all have `node_count` rows and matching
    /// lane counts.
    #[inline]
    pub fn apply_panel(&self, temps: &mut PanelF32, powers: &PanelF32, tmp: &mut PanelF32) {
        numeric::affine_pair_apply_elem(
            &self.r,
            &self.s_power,
            &self.ambient_drive,
            temps,
            powers,
            tmp,
        )
        .expect("panel shapes must cover all nodes");
        std::mem::swap(temps, tmp);
    }

    /// Advances every lane of `temps` by one f32 micro-step with a caller
    /// supplied per-lane bias panel *replacing* the transition's own ambient
    /// drive: `T⁺ = bias + R·T + S_p·p`. This is the delta-form engine's hot
    /// call — the bias carries the whole constant term `c + (R − I)·T0` per
    /// lane, so the deviation advance needs no follow-up pass. `tmp` is
    /// overwritten scratch. Per-lane accumulation order matches
    /// [`BatchStepTransitionF32::apply_lane_bias`] exactly.
    ///
    /// # Panics
    ///
    /// Panics if the panels do not all have `node_count` rows and matching
    /// lane counts.
    #[inline]
    pub fn apply_panel_bias(
        &self,
        temps: &mut PanelF32,
        powers: &PanelF32,
        bias: &PanelF32,
        tmp: &mut PanelF32,
    ) {
        numeric::affine_panel_bias_apply_elem(&self.r, &self.s_power, bias, temps, powers, tmp)
            .expect("panel shapes must cover all nodes");
        std::mem::swap(temps, tmp);
    }

    /// Advances only lane `lane` of `temps` with a per-lane bias panel — the
    /// strided fallback twin of [`BatchStepTransitionF32::apply_panel_bias`],
    /// accumulation order identical per lane.
    ///
    /// # Panics
    ///
    /// Panics if the panels do not have `node_count` rows, `lane` is out of
    /// range, or `col` does not cover all nodes.
    #[inline]
    pub fn apply_lane_bias(
        &self,
        temps: &mut PanelF32,
        powers: &PanelF32,
        bias: &PanelF32,
        lane: usize,
        col: &mut [f32],
    ) {
        let n = self.n;
        assert_eq!(temps.rows(), n, "temperature panel rows");
        assert_eq!(powers.rows(), n, "power panel rows");
        assert_eq!(bias.rows(), n, "bias panel rows");
        assert_eq!(col.len(), n, "column scratch length");
        assert!(lane < temps.lanes(), "lane index out of bounds");
        let r = self.r.as_slice();
        let s = self.s_power.as_slice();
        for (i, slot) in col.iter_mut().enumerate() {
            let mut acc = bias.get(i, lane);
            for j in 0..n {
                acc = numeric::simd::madd2_f32(
                    r[i * n + j],
                    temps.get(j, lane),
                    s[i * n + j],
                    powers.get(j, lane),
                    acc,
                );
            }
            *slot = acc;
        }
        for (i, &v) in col.iter().enumerate() {
            temps.set(i, lane, v);
        }
    }

    /// Advances only lane `lane` of `temps` — the strided fallback for
    /// batches whose lanes need different transitions, accumulation order
    /// identical to [`BatchStepTransitionF32::apply_panel`].
    ///
    /// # Panics
    ///
    /// Panics if the panels do not have `node_count` rows, `lane` is out of
    /// range, or `col` does not cover all nodes.
    #[inline]
    pub fn apply_lane(
        &self,
        temps: &mut PanelF32,
        powers: &PanelF32,
        lane: usize,
        col: &mut [f32],
    ) {
        let n = self.n;
        assert_eq!(temps.rows(), n, "temperature panel rows");
        assert_eq!(powers.rows(), n, "power panel rows");
        assert_eq!(col.len(), n, "column scratch length");
        assert!(lane < temps.lanes(), "lane index out of bounds");
        let r = self.r.as_slice();
        let s = self.s_power.as_slice();
        for (i, slot) in col.iter_mut().enumerate() {
            let mut acc = self.ambient_drive[i];
            for j in 0..n {
                acc = numeric::simd::madd2_f32(
                    r[i * n + j],
                    temps.get(j, lane),
                    s[i * n + j],
                    powers.get(j, lane),
                    acc,
                );
            }
            *slot = acc;
        }
        for (i, &v) in col.iter().enumerate() {
            temps.set(i, lane, v);
        }
    }
}

/// The eight-node plant model of the Odroid-XU+E used by the simulator.
///
/// Nodes: the four big (A15) cores — the thermal hotspots with dedicated
/// sensors — plus lumped nodes for the little cluster, the GPU, the memory and
/// the board/heat-sink ("case"). Only the case exchanges heat with the ambient;
/// the fan increases that exchange.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExynosThermalNetwork {
    network: ThermalNetwork,
    big_cores: [NodeId; 4],
    little: NodeId,
    gpu: NodeId,
    memory: NodeId,
    case: NodeId,
    passive_case_conductance: f64,
}

impl ExynosThermalNetwork {
    /// Builds the calibrated Odroid-XU+E plant.
    ///
    /// The parameters are chosen so the closed-loop behaviour matches the
    /// paper's measurements in shape: without a fan a sustained ~4 W load
    /// drives the hottest core towards ~85–90 °C within a couple of minutes
    /// (Figure 1.1), while light loads settle in the mid-40s.
    pub fn odroid_xu_e() -> Self {
        let mut b = ThermalNetworkBuilder::new();
        let big0 = b.add_node("big_core0", 0.18);
        let big1 = b.add_node("big_core1", 0.18);
        let big2 = b.add_node("big_core2", 0.18);
        let big3 = b.add_node("big_core3", 0.18);
        let little = b.add_node("little_cluster", 0.35);
        let gpu = b.add_node("gpu", 0.30);
        let memory = b.add_node("memory", 0.40);
        let case = b.add_node("case", 11.0);

        // Big cores sit on a 2x2 grid: 0-1 / 2-3. The relatively small
        // conductances produce per-core gradients of a degree or two under
        // asymmetric load, which is what the hottest-core shutdown rule of the
        // DTPM algorithm keys on.
        let adjacent = 0.18;
        let diagonal = 0.09;
        b.connect(big0, big1, adjacent).expect("valid");
        b.connect(big2, big3, adjacent).expect("valid");
        b.connect(big0, big2, adjacent).expect("valid");
        b.connect(big1, big3, adjacent).expect("valid");
        b.connect(big0, big3, diagonal).expect("valid");
        b.connect(big1, big2, diagonal).expect("valid");

        // Every active block conducts into the case / heat spreader. The
        // junction-to-case resistance of a few K/W per core gives the fast
        // several-degree hotspot response to power steps that real mobile
        // silicon shows within a second — this is what the identified B
        // matrix (and hence the power budget) keys on.
        for core in [big0, big1, big2, big3] {
            b.connect(core, case, 0.25).expect("valid");
        }
        b.connect(little, case, 0.60).expect("valid");
        b.connect(gpu, case, 0.60).expect("valid");
        b.connect(memory, case, 0.50).expect("valid");

        // Lateral die coupling: the GPU neighbours cores 0/2, the little
        // cluster neighbours cores 1/3 (this is what makes the identified B
        // matrix sensitive to GPU and little-cluster power).
        b.connect(gpu, big0, 0.15).expect("valid");
        b.connect(gpu, big2, 0.15).expect("valid");
        b.connect(little, big1, 0.12).expect("valid");
        b.connect(little, big3, 0.12).expect("valid");
        b.connect(memory, gpu, 0.10).expect("valid");

        // Passive convection/radiation from the case to ambient.
        let passive = 0.080;
        b.connect_to_ambient(case, passive).expect("valid");

        ExynosThermalNetwork {
            network: b.build().expect("static network is valid"),
            big_cores: [big0, big1, big2, big3],
            little,
            gpu,
            memory,
            case,
            passive_case_conductance: passive,
        }
    }

    /// The underlying RC network with the fan contributing `fan_boost_w_per_k`
    /// of extra case-to-ambient conductance.
    pub fn network_with_fan_boost(&self, fan_boost_w_per_k: f64) -> ThermalNetwork {
        self.network
            .with_extra_ambient_conductance(self.case, fan_boost_w_per_k)
    }

    /// The underlying RC network without any fan contribution.
    pub fn network(&self) -> &ThermalNetwork {
        &self.network
    }

    /// Number of nodes in the plant model (convenience for
    /// `self.network().node_count()`, which every engine backend needs to
    /// size its temperature and power state).
    pub fn node_count(&self) -> usize {
        self.network.node_count()
    }

    /// The fan's contribution as a [`FanBoost`] step parameter for
    /// [`ThermalNetwork::step_into`] — the allocation-free alternative to
    /// [`ExynosThermalNetwork::network_with_fan_boost`].
    pub fn fan_boost(&self, fan_boost_w_per_k: f64) -> FanBoost {
        FanBoost::at(self.case, fan_boost_w_per_k)
    }

    /// Node ids of the four big cores (the thermal hotspots).
    pub fn big_core_nodes(&self) -> [NodeId; 4] {
        self.big_cores
    }

    /// Node id of the little-cluster lump.
    pub fn little_node(&self) -> NodeId {
        self.little
    }

    /// Node id of the GPU lump.
    pub fn gpu_node(&self) -> NodeId {
        self.gpu
    }

    /// Node id of the memory lump.
    pub fn memory_node(&self) -> NodeId {
        self.memory
    }

    /// Node id of the case / heat-sink lump.
    pub fn case_node(&self) -> NodeId {
        self.case
    }

    /// Passive (fan-off) case-to-ambient conductance in W/K.
    pub fn passive_case_conductance(&self) -> f64 {
        self.passive_case_conductance
    }

    /// Builds the per-node power-injection vector from per-core big powers and
    /// lumped little/GPU/memory powers (all in watts).
    ///
    /// # Panics
    ///
    /// Panics if `big_core_powers` does not have four entries.
    pub fn power_vector(
        &self,
        big_core_powers: &[f64],
        little_w: f64,
        gpu_w: f64,
        memory_w: f64,
    ) -> Vec<f64> {
        assert_eq!(big_core_powers.len(), 4, "expected four big-core powers");
        let mut p = vec![0.0; self.network.node_count()];
        self.power_vector_into(big_core_powers, little_w, gpu_w, memory_w, &mut p);
        p
    }

    /// Fills `out` with the per-node power-injection vector, the
    /// allocation-free form of [`ExynosThermalNetwork::power_vector`].
    ///
    /// # Panics
    ///
    /// Panics if `big_core_powers` does not have four entries or `out` does
    /// not cover all nodes.
    pub fn power_vector_into(
        &self,
        big_core_powers: &[f64],
        little_w: f64,
        gpu_w: f64,
        memory_w: f64,
        out: &mut [f64],
    ) {
        assert_eq!(big_core_powers.len(), 4, "expected four big-core powers");
        assert_eq!(out.len(), self.network.node_count(), "power vector length");
        out.fill(0.0);
        for (node, &power) in self.big_cores.iter().zip(big_core_powers) {
            out[node.0] = power;
        }
        out[self.little.0] = little_w;
        out[self.gpu.0] = gpu_w;
        out[self.memory.0] = memory_w;
    }

    /// Extracts the big-core (hotspot) temperatures from a full plant state.
    ///
    /// # Panics
    ///
    /// Panics if `temps` does not cover all nodes.
    pub fn hotspot_temps(&self, temps: &[f64]) -> [f64; 4] {
        assert_eq!(temps.len(), self.network.node_count());
        [
            temps[self.big_cores[0].0],
            temps[self.big_cores[1].0],
            temps[self.big_cores[2].0],
            temps[self.big_cores[3].0],
        ]
    }
}

impl Default for ExynosThermalNetwork {
    fn default() -> Self {
        ExynosThermalNetwork::odroid_xu_e()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_start(network: &ThermalNetwork, temp: f64) -> Vec<f64> {
        vec![temp; network.node_count()]
    }

    #[test]
    fn builder_rejects_bad_networks() {
        assert!(ThermalNetworkBuilder::new().build().is_err());

        let mut b = ThermalNetworkBuilder::new();
        let n = b.add_node("n", 1.0);
        // No ambient connection.
        assert!(b.clone().build().is_err());
        assert!(b.connect(n, n, 1.0).is_err());
        assert!(b.connect(n, NodeId(7), 1.0).is_err());
        assert!(b.connect_to_ambient(n, -1.0).is_err());
        assert!(b.connect_to_ambient(NodeId(9), 1.0).is_err());
        b.connect_to_ambient(n, 0.5).unwrap();
        assert!(b.build().is_ok());
    }

    #[test]
    fn builder_rejects_non_positive_capacitance() {
        let mut b = ThermalNetworkBuilder::new();
        let n = b.add_node("bad", 0.0);
        b.connect_to_ambient(n, 0.5).unwrap();
        assert!(b.build().is_err());
    }

    #[test]
    fn unpowered_network_relaxes_to_ambient() {
        let plant = ExynosThermalNetwork::odroid_xu_e();
        let network = plant.network();
        let mut temps = uniform_start(network, 70.0);
        let powers = vec![0.0; network.node_count()];
        for _ in 0..200_000 {
            temps = network.step(&temps, &powers, 25.0, 0.01).unwrap();
        }
        for t in &temps {
            assert!((t - 25.0).abs() < 0.5, "temps {temps:?}");
        }
    }

    #[test]
    fn powered_network_heats_above_ambient() {
        let plant = ExynosThermalNetwork::odroid_xu_e();
        let network = plant.network();
        let powers = plant.power_vector(&[0.8, 0.8, 0.8, 0.8], 0.05, 0.2, 0.4);
        let mut temps = uniform_start(network, 28.0);
        for _ in 0..3000 {
            temps = network.step(&temps, &powers, 28.0, 0.01).unwrap();
        }
        let hotspots = plant.hotspot_temps(&temps);
        for t in hotspots {
            assert!(t > 28.5, "cores must heat up, got {hotspots:?}");
        }
    }

    #[test]
    fn steady_state_matches_long_integration() {
        let plant = ExynosThermalNetwork::odroid_xu_e();
        let network = plant.network();
        let powers = plant.power_vector(&[0.6, 0.7, 0.5, 0.6], 0.05, 0.3, 0.4);
        let ss = network.steady_state(&powers, 28.0).unwrap();
        let mut temps = uniform_start(network, 28.0);
        for _ in 0..1_000_000 {
            temps = network.step(&temps, &powers, 28.0, 0.01).unwrap();
        }
        for (a, b) in temps.iter().zip(&ss) {
            assert!(
                (a - b).abs() < 0.3,
                "integration {temps:?} vs steady {ss:?}"
            );
        }
    }

    #[test]
    fn high_load_without_fan_reaches_paper_like_temperatures() {
        // Figure 1.1: without the fan a heavy workload pushes the hottest core
        // towards ~85-90 degC.
        let plant = ExynosThermalNetwork::odroid_xu_e();
        let network = plant.network();
        let powers = plant.power_vector(&[0.95, 1.0, 0.9, 0.95], 0.05, 0.3, 0.45);
        let ss = network.steady_state(&powers, 28.0).unwrap();
        let hottest = plant
            .hotspot_temps(&ss)
            .into_iter()
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(
            (75.0..100.0).contains(&hottest),
            "steady hottest core {hottest} degC"
        );
    }

    #[test]
    fn fan_boost_lowers_steady_state() {
        let plant = ExynosThermalNetwork::odroid_xu_e();
        let powers = plant.power_vector(&[0.9, 0.9, 0.9, 0.9], 0.05, 0.3, 0.4);
        let no_fan = plant.network().steady_state(&powers, 28.0).unwrap();
        let with_fan = plant
            .network_with_fan_boost(0.075)
            .steady_state(&powers, 28.0)
            .unwrap();
        let hot_no_fan = plant.hotspot_temps(&no_fan)[0];
        let hot_with_fan = plant.hotspot_temps(&with_fan)[0];
        assert!(
            hot_with_fan < hot_no_fan - 10.0,
            "fan must cool noticeably: {hot_no_fan} vs {hot_with_fan}"
        );
    }

    #[test]
    fn asymmetric_core_power_creates_a_hotspot_gradient() {
        let plant = ExynosThermalNetwork::odroid_xu_e();
        let powers = plant.power_vector(&[1.4, 0.3, 0.3, 0.3], 0.05, 0.1, 0.3);
        let ss = plant.network().steady_state(&powers, 28.0).unwrap();
        let hotspots = plant.hotspot_temps(&ss);
        assert!(hotspots[0] > hotspots[1] + 0.3);
        assert!(hotspots[0] > hotspots[3] + 0.3);
    }

    #[test]
    fn gpu_power_heats_the_big_cores() {
        // The lateral coupling means GPU activity raises core temperatures,
        // which is why the identified B matrix has a GPU column.
        let plant = ExynosThermalNetwork::odroid_xu_e();
        let idle = plant.power_vector(&[0.1, 0.1, 0.1, 0.1], 0.05, 0.0, 0.3);
        let gpu_busy = plant.power_vector(&[0.1, 0.1, 0.1, 0.1], 0.05, 1.0, 0.3);
        let t_idle = plant.network().steady_state(&idle, 28.0).unwrap();
        let t_busy = plant.network().steady_state(&gpu_busy, 28.0).unwrap();
        let d0 = plant.hotspot_temps(&t_busy)[0] - plant.hotspot_temps(&t_idle)[0];
        assert!(
            d0 > 1.0,
            "GPU heat must couple into the big cores, delta {d0}"
        );
    }

    #[test]
    fn step_rejects_bad_inputs() {
        let plant = ExynosThermalNetwork::odroid_xu_e();
        let network = plant.network();
        let temps = uniform_start(network, 30.0);
        assert!(network.step(&temps[..3], &[0.0; 8], 25.0, 0.01).is_err());
        assert!(network.step(&temps, &[0.0; 3], 25.0, 0.01).is_err());
        assert!(network.step(&temps, &[0.0; 8], 25.0, 0.0).is_err());
        assert!(network.steady_state(&[0.0; 2], 25.0).is_err());
    }

    #[test]
    fn step_transition_matches_staged_rk4() {
        let plant = ExynosThermalNetwork::odroid_xu_e();
        let network = plant.network();
        let powers = plant.power_vector(&[0.9, 1.0, 0.8, 0.95], 0.05, 0.4, 0.4);
        let boost = plant.fan_boost(0.055);
        let transition = network.step_transition(boost, 28.0, 0.01).unwrap();
        assert_eq!(transition.node_count(), 8);

        let mut staged = uniform_start(network, 52.0);
        let mut fast = staged.clone();
        let mut scratch = RkScratch::new(network.node_count());
        let mut tmp = vec![0.0; network.node_count()];
        for step in 0..20_000 {
            network
                .step_into(&mut staged, &powers, 28.0, 0.01, boost, &mut scratch)
                .unwrap();
            transition.apply(&mut fast, &powers, &mut tmp);
            if step % 1000 == 0 {
                for (a, b) in staged.iter().zip(&fast) {
                    assert!(
                        (a - b).abs() < 1e-9,
                        "transition diverged at step {step}: {staged:?} vs {fast:?}"
                    );
                }
            }
        }
        for (a, b) in staged.iter().zip(&fast) {
            assert!((a - b).abs() < 1e-9, "{staged:?} vs {fast:?}");
        }
    }

    #[test]
    fn batch_transition_lanes_match_scalar_transition_bitwise() {
        // Every lane of the panel apply (and the strided per-lane fallback)
        // must reproduce the scalar StepTransition exactly: the accumulation
        // order is the same by construction.
        let plant = ExynosThermalNetwork::odroid_xu_e();
        let network = plant.network();
        let boost = plant.fan_boost(0.04);
        let scalar = network.step_transition(boost, 28.0, 0.01).unwrap();
        let batch = network.batch_step_transition(boost, 28.0, 0.01).unwrap();
        assert_eq!(batch.node_count(), 8);

        for lanes in [1, 3, 8, 11] {
            let n = network.node_count();
            let mut temps = Panel::zeros(n, lanes);
            let mut powers = Panel::zeros(n, lanes);
            let mut tmp = Panel::zeros(n, lanes);
            let mut scalar_temps: Vec<Vec<f64>> = Vec::new();
            let mut scalar_powers: Vec<Vec<f64>> = Vec::new();
            for lane in 0..lanes {
                let t: Vec<f64> = (0..n)
                    .map(|i| 45.0 + (lane * n + i) as f64 * 0.31)
                    .collect();
                let p =
                    plant.power_vector(&[0.8, 0.9, 0.7, 0.6], 0.05, 0.3 + lane as f64 * 0.02, 0.4);
                temps.set_column(lane, &t);
                powers.set_column(lane, &p);
                scalar_temps.push(t);
                scalar_powers.push(p);
            }
            let mut scratch = vec![0.0; n];
            for step in 0..200 {
                if step % 2 == 0 {
                    batch.apply_panel(&mut temps, &powers, &mut tmp);
                } else {
                    for lane in 0..lanes {
                        batch.apply_lane(&mut temps, &powers, lane, &mut scratch);
                    }
                }
                for (lane_temps, lane_powers) in scalar_temps.iter_mut().zip(&scalar_powers) {
                    scalar.apply(lane_temps, lane_powers, &mut scratch);
                }
            }
            for (lane, lane_temps) in scalar_temps.iter().enumerate() {
                for (i, expected) in lane_temps.iter().enumerate() {
                    assert_eq!(
                        temps.get(i, lane).to_bits(),
                        expected.to_bits(),
                        "lanes={lanes} lane={lane} node={i}"
                    );
                }
            }
        }
    }

    #[test]
    fn f32_batch_transition_tracks_f64_within_budget() {
        // The demoted transition steps the same trajectories as the f64
        // batch within the mixed-precision budget: over 200 micro-steps
        // (two control intervals' worth) the divergence must stay well
        // under the engine's documented 1e-3 degC bound. Panel and per-lane
        // f32 paths must also agree with each other to the bit.
        let plant = ExynosThermalNetwork::odroid_xu_e();
        let network = plant.network();
        let boost = plant.fan_boost(0.04);
        let batch = network.batch_step_transition(boost, 28.0, 0.01).unwrap();
        let demoted = BatchStepTransitionF32::from_f64(&batch);
        assert_eq!(demoted.node_count(), batch.node_count());

        let n = network.node_count();
        let lanes = 5;
        let mut temps64 = Panel::zeros(n, lanes);
        let mut powers64 = Panel::zeros(n, lanes);
        let mut tmp64 = Panel::zeros(n, lanes);
        let mut temps32 = PanelF32::zeros(n, lanes);
        let mut powers32 = PanelF32::zeros(n, lanes);
        let mut tmp32 = PanelF32::zeros(n, lanes);
        let mut lane32 = temps32.clone();
        for lane in 0..lanes {
            for i in 0..n {
                let t = 45.0 + (lane * n + i) as f64 * 0.31;
                temps64.set(i, lane, t);
                temps32.set(i, lane, t as f32);
                lane32.set(i, lane, t as f32);
            }
            let p = plant.power_vector(&[0.8, 0.9, 0.7, 0.6], 0.05, 0.3 + lane as f64 * 0.02, 0.4);
            powers64.set_column(lane, &p);
            for (i, &v) in p.iter().enumerate() {
                powers32.set(i, lane, v as f32);
            }
        }
        let mut scratch = vec![0.0f32; n];
        for _ in 0..200 {
            batch.apply_panel(&mut temps64, &powers64, &mut tmp64);
            demoted.apply_panel(&mut temps32, &powers32, &mut tmp32);
            for lane in 0..lanes {
                demoted.apply_lane(&mut lane32, &powers32, lane, &mut scratch);
            }
        }
        for lane in 0..lanes {
            for i in 0..n {
                let err = (f64::from(temps32.get(i, lane)) - temps64.get(i, lane)).abs();
                assert!(err < 5e-4, "lane {lane} node {i}: divergence {err:.3e}");
                assert_eq!(
                    temps32.get(i, lane).to_bits(),
                    lane32.get(i, lane).to_bits(),
                    "f32 panel and lane paths must agree bitwise (lane {lane} node {i})"
                );
            }
        }
    }

    #[test]
    fn batch_transition_rejects_bad_step_size() {
        let plant = ExynosThermalNetwork::odroid_xu_e();
        assert!(plant
            .network()
            .batch_step_transition(FanBoost::NONE, 28.0, -1.0)
            .is_err());
    }

    #[test]
    fn step_transition_rejects_bad_step_size() {
        let plant = ExynosThermalNetwork::odroid_xu_e();
        assert!(plant
            .network()
            .step_transition(FanBoost::NONE, 28.0, 0.0)
            .is_err());
    }

    #[test]
    fn node_lookup_by_name() {
        let plant = ExynosThermalNetwork::odroid_xu_e();
        let network = plant.network();
        assert_eq!(network.node_by_name("gpu"), Some(plant.gpu_node()));
        assert_eq!(network.node_by_name("nonexistent"), None);
        assert_eq!(network.node_name(plant.case_node()), "case");
        assert_eq!(network.capacitances().len(), 8);
    }

    #[test]
    #[should_panic(expected = "four big-core powers")]
    fn power_vector_requires_four_core_powers() {
        let plant = ExynosThermalNetwork::odroid_xu_e();
        plant.power_vector(&[1.0, 1.0], 0.0, 0.0, 0.0);
    }
}

//! Discrete linear state-space thermal model (Eqs. 4.4 and 4.5).
//!
//! The controller-side thermal model is a discrete linear time-invariant
//! system
//!
//! ```text
//! T[k+1] = As·T[k] + Bs·P[k]
//! ```
//!
//! whose states are the hotspot temperatures (the four big cores) and whose
//! inputs are the measured domain powers `[P_big, P_little, P_gpu, P_mem]`.
//! The temperatures here are expressed **relative to the ambient** so that a
//! zero-power system decays to zero — this is also what makes the simple
//! `T[k+1] = As·T[k] + Bs·P[k]` form physically meaningful and is how the
//! identification in the `sysid` crate fits the model.

use serde::{Deserialize, Serialize};

use numeric::{Matrix, Vector};

use crate::ThermalError;

/// Discrete thermal state-space model `(As, Bs)` with a fixed sample period.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiscreteThermalModel {
    a: Matrix,
    b: Matrix,
    sample_period_s: f64,
}

impl DiscreteThermalModel {
    /// Creates a model from its matrices and sample period.
    ///
    /// # Errors
    ///
    /// * [`ThermalError::InvalidParameter`] if the sample period is not
    ///   positive or `As` is not square.
    /// * [`ThermalError::DimensionMismatch`] if `Bs` does not have the same
    ///   number of rows as `As`.
    pub fn new(a: Matrix, b: Matrix, sample_period_s: f64) -> Result<Self, ThermalError> {
        if !(sample_period_s > 0.0) || !sample_period_s.is_finite() {
            return Err(ThermalError::InvalidParameter(
                "sample period must be positive",
            ));
        }
        if !a.is_square() {
            return Err(ThermalError::InvalidParameter(
                "state matrix must be square",
            ));
        }
        if b.rows() != a.rows() {
            return Err(ThermalError::DimensionMismatch {
                what: "input matrix rows",
                expected: a.rows(),
                actual: b.rows(),
            });
        }
        Ok(DiscreteThermalModel {
            a,
            b,
            sample_period_s,
        })
    }

    /// Builds the model by Euler-discretising a continuous thermal network
    /// description `C·dT/dt = −G·T + P`:
    ///
    /// ```text
    /// As = I − Ts·C⁻¹·G,   Bs = Ts·C⁻¹          (Eq. 4.4)
    /// ```
    ///
    /// # Errors
    ///
    /// Returns an error if the matrices are incompatible, `C` is singular, or
    /// the resulting discrete model is unstable (sample period too long for
    /// the fastest time constant).
    pub fn from_continuous(
        capacitance: &Matrix,
        conductance: &Matrix,
        sample_period_s: f64,
    ) -> Result<Self, ThermalError> {
        if !capacitance.is_square() || !conductance.is_square() {
            return Err(ThermalError::InvalidParameter(
                "capacitance and conductance matrices must be square",
            ));
        }
        let c_inv = capacitance.inverse()?;
        let a = Matrix::identity(capacitance.rows())
            .sub(&c_inv.mul(conductance)?.scale(sample_period_s))?;
        let b = c_inv.scale(sample_period_s);
        let model = DiscreteThermalModel::new(a, b, sample_period_s)?;
        let rho = model.spectral_radius()?;
        if rho >= 1.0 {
            return Err(ThermalError::UnstableModel {
                spectral_radius: rho,
            });
        }
        Ok(model)
    }

    /// Number of thermal states (hotspots).
    pub fn state_count(&self) -> usize {
        self.a.rows()
    }

    /// Number of power inputs.
    pub fn input_count(&self) -> usize {
        self.b.cols()
    }

    /// The state matrix `As`.
    pub fn a(&self) -> &Matrix {
        &self.a
    }

    /// The input matrix `Bs`.
    pub fn b(&self) -> &Matrix {
        &self.b
    }

    /// The sample period `Ts` in seconds.
    pub fn sample_period_s(&self) -> f64 {
        self.sample_period_s
    }

    /// The `i`-th row of `As` (written `As,i` in the paper's budget equation)
    /// as a borrowed slice — no per-call allocation.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn a_row(&self, i: usize) -> &[f64] {
        self.a.row_slice(i)
    }

    /// The `i`-th row of `Bs` (written `Bs,i` in the paper's budget equation)
    /// as a borrowed slice — no per-call allocation.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn b_row(&self, i: usize) -> &[f64] {
        self.b.row_slice(i)
    }

    /// One prediction step: `T[k+1] = As·T[k] + Bs·P[k]`.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::DimensionMismatch`] for wrong-length vectors.
    pub fn step(&self, temps: &Vector, powers: &Vector) -> Result<Vector, ThermalError> {
        let mut out = Vector::zeros(self.state_count());
        self.step_into(temps, powers, &mut out)?;
        Ok(out)
    }

    /// One prediction step written into `out` without allocating:
    /// `out = As·temps + Bs·powers`.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::DimensionMismatch`] for wrong-length vectors.
    pub fn step_into(
        &self,
        temps: &Vector,
        powers: &Vector,
        out: &mut Vector,
    ) -> Result<(), ThermalError> {
        self.check_dims(temps, powers)?;
        self.a.mul_vec_into(temps, out)?;
        self.b.mul_vec_acc_into(powers, out)?;
        Ok(())
    }

    /// Predicts the temperature `horizon` steps ahead assuming the power
    /// vector stays constant over the horizon (Eq. 4.5 with
    /// `P[k+i] = P[k]` for all `i`).
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::DimensionMismatch`] for wrong-length vectors or
    /// [`ThermalError::InvalidParameter`] for a zero horizon.
    pub fn predict_constant_power(
        &self,
        temps: &Vector,
        powers: &Vector,
        horizon: usize,
    ) -> Result<Vector, ThermalError> {
        if horizon == 0 {
            return Err(ThermalError::InvalidParameter(
                "prediction horizon must be at least one step",
            ));
        }
        let mut state = temps.clone();
        let mut tmp = Vector::zeros(self.state_count());
        self.predict_constant_power_into(&mut state, powers, horizon, &mut tmp)?;
        Ok(state)
    }

    /// In-place form of [`DiscreteThermalModel::predict_constant_power`]:
    /// advances `state` by `horizon` steps under constant `powers`, using
    /// `tmp` as ping-pong scratch. Neither vector is reallocated when already
    /// correctly sized, which is what keeps the DTPM decision path
    /// allocation-free.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::DimensionMismatch`] for wrong-length vectors or
    /// [`ThermalError::InvalidParameter`] for a zero horizon.
    pub fn predict_constant_power_into(
        &self,
        state: &mut Vector,
        powers: &Vector,
        horizon: usize,
        tmp: &mut Vector,
    ) -> Result<(), ThermalError> {
        if horizon == 0 {
            return Err(ThermalError::InvalidParameter(
                "prediction horizon must be at least one step",
            ));
        }
        self.check_dims(state, powers)?;
        for _ in 0..horizon {
            self.step_into(state, powers, tmp)?;
            std::mem::swap(state, tmp);
        }
        Ok(())
    }

    /// Predicts the full temperature trajectory for a given power trajectory
    /// (Eq. 4.5). Returns one temperature vector per step, starting at
    /// `T[k+1]`.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::DimensionMismatch`] if any power vector has the
    /// wrong length.
    pub fn predict_trajectory(
        &self,
        temps: &Vector,
        power_trajectory: &[Vector],
    ) -> Result<Vec<Vector>, ThermalError> {
        let mut out = Vec::with_capacity(power_trajectory.len());
        let mut state = temps.clone();
        for powers in power_trajectory {
            state = self.step(&state, powers)?;
            out.push(state.clone());
        }
        Ok(out)
    }

    /// The "aggregate" one-shot form of an `n`-step constant-power prediction:
    /// returns `(A_n, B_n)` such that `T[k+n] = A_n·T[k] + B_n·P`.
    ///
    /// `A_n = As^n` and `B_n = (Σ_{i=0}^{n-1} As^i)·Bs`. The DTPM power-budget
    /// computation uses the hot row of these matrices.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidParameter`] for a zero horizon.
    pub fn horizon_matrices(&self, horizon: usize) -> Result<(Matrix, Matrix), ThermalError> {
        if horizon == 0 {
            return Err(ThermalError::InvalidParameter(
                "prediction horizon must be at least one step",
            ));
        }
        let mut a_power = Matrix::identity(self.state_count());
        let mut a_sum = Matrix::zeros(self.state_count(), self.state_count());
        for _ in 0..horizon {
            a_sum = a_sum.add(&a_power)?;
            a_power = a_power.mul(&self.a)?;
        }
        let b_n = a_sum.mul(&self.b)?;
        Ok((a_power, b_n))
    }

    /// Packages [`DiscreteThermalModel::horizon_matrices`] into a
    /// [`HorizonMap`]: the reusable one-shot form of an `horizon`-step
    /// constant-power prediction.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidParameter`] for a zero horizon.
    pub fn horizon_map(&self, horizon: usize) -> Result<HorizonMap, ThermalError> {
        let (a_n, b_n) = self.horizon_matrices(horizon)?;
        Ok(HorizonMap { horizon, a_n, b_n })
    }

    /// Estimate of the spectral radius of `As`; a stable thermal model has a
    /// value strictly below 1.
    ///
    /// # Errors
    ///
    /// Propagates numeric errors from the underlying power iteration.
    pub fn spectral_radius(&self) -> Result<f64, ThermalError> {
        Ok(self.a.spectral_radius_estimate(300)?)
    }

    /// Returns `true` if the model is stable (spectral radius below 1).
    pub fn is_stable(&self) -> bool {
        self.spectral_radius().map(|r| r < 1.0).unwrap_or(false)
    }

    fn check_dims(&self, temps: &Vector, powers: &Vector) -> Result<(), ThermalError> {
        if temps.len() != self.state_count() {
            return Err(ThermalError::DimensionMismatch {
                what: "temperature vector",
                expected: self.state_count(),
                actual: temps.len(),
            });
        }
        if powers.len() != self.input_count() {
            return Err(ThermalError::DimensionMismatch {
                what: "power vector",
                expected: self.input_count(),
                actual: powers.len(),
            });
        }
        Ok(())
    }
}

/// The precomputed one-shot horizon map `(Aₙ, Bₙ)` of an `n`-step
/// constant-power prediction: `T[k+n] = Aₙ·T[k] + Bₙ·P`.
///
/// Iterating `T ← As·T + Bs·P` for `n` steps costs `2n` mat-vecs per
/// prediction; applying the map costs exactly one affine application,
/// independent of the horizon. The matrices are the same
/// [`DiscreteThermalModel::horizon_matrices`] the DTPM power-budget
/// computation solves against, so one map serves both the violation
/// pre-check and the budget.
///
/// [`HorizonMap::apply_into`] accumulates each output element in the same
/// order as the scalar remainder of `numeric::affine_pair_apply` (for
/// `j = 0..n`, the `Aₙ`-term and `Bₙ`-term as one fused expression), so a
/// panel application of the same map is **bit-identical** per lane to this
/// scalar application — the property the batched control-path predictor
/// builds on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HorizonMap {
    horizon: usize,
    a_n: Matrix,
    b_n: Matrix,
}

impl HorizonMap {
    /// The horizon `n` the map aggregates, in control intervals.
    pub fn horizon(&self) -> usize {
        self.horizon
    }

    /// The aggregate state matrix `Aₙ = As^n`.
    pub fn a_n(&self) -> &Matrix {
        &self.a_n
    }

    /// The aggregate input matrix `Bₙ = (Σ As^i)·Bs`.
    pub fn b_n(&self) -> &Matrix {
        &self.b_n
    }

    /// Number of thermal states the map predicts.
    pub fn state_count(&self) -> usize {
        self.a_n.rows()
    }

    /// Number of power inputs the map consumes.
    pub fn input_count(&self) -> usize {
        self.b_n.cols()
    }

    /// One-shot `horizon`-step prediction: `out = Aₙ·state + Bₙ·powers`.
    ///
    /// When the state and input counts agree (the identified 4-state /
    /// 4-input hotspot model), each output element accumulates the two terms
    /// fused per index — the exact per-lane order of the panel kernels, so
    /// batched and scalar predictions agree to the last bit.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::DimensionMismatch`] for wrong-length slices.
    pub fn apply_into(
        &self,
        state: &[f64],
        powers: &[f64],
        out: &mut [f64],
    ) -> Result<(), ThermalError> {
        let n = self.state_count();
        let m = self.input_count();
        if state.len() != n || out.len() != n {
            return Err(ThermalError::DimensionMismatch {
                what: "temperature vector",
                expected: n,
                actual: if state.len() != n {
                    state.len()
                } else {
                    out.len()
                },
            });
        }
        if powers.len() != m {
            return Err(ThermalError::DimensionMismatch {
                what: "power vector",
                expected: m,
                actual: powers.len(),
            });
        }
        let a = self.a_n.as_slice();
        let b = self.b_n.as_slice();
        if n == m {
            for (i, slot) in out.iter_mut().enumerate() {
                let mut acc = 0.0;
                for j in 0..n {
                    // One madd2 step per j, matching the panel kernel's
                    // rounding exactly in both the default and fma builds.
                    acc =
                        numeric::simd::madd2(a[i * n + j], state[j], b[i * m + j], powers[j], acc);
                }
                *slot = acc;
            }
        } else {
            for (i, slot) in out.iter_mut().enumerate() {
                let mut acc = 0.0;
                for (j, x) in state.iter().enumerate() {
                    acc += a[i * n + j] * x;
                }
                for (j, p) in powers.iter().enumerate() {
                    acc += b[i * m + j] * p;
                }
                *slot = acc;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small, stable 4-state/4-input model loosely shaped like an identified
    /// Exynos model (temperatures relative to ambient).
    fn example_model() -> DiscreteThermalModel {
        let a = Matrix::from_rows(&[
            &[0.92, 0.02, 0.02, 0.01],
            &[0.02, 0.92, 0.01, 0.02],
            &[0.02, 0.01, 0.92, 0.02],
            &[0.01, 0.02, 0.02, 0.92],
        ])
        .unwrap();
        let b = Matrix::from_rows(&[
            &[0.30, 0.05, 0.08, 0.04],
            &[0.28, 0.06, 0.06, 0.04],
            &[0.30, 0.05, 0.08, 0.04],
            &[0.28, 0.06, 0.06, 0.04],
        ])
        .unwrap();
        DiscreteThermalModel::new(a, b, 0.1).unwrap()
    }

    #[test]
    fn construction_validates_inputs() {
        let a = Matrix::identity(2).scale(0.9);
        let b = Matrix::zeros(2, 3);
        assert!(DiscreteThermalModel::new(a.clone(), b.clone(), 0.1).is_ok());
        assert!(DiscreteThermalModel::new(a.clone(), b.clone(), 0.0).is_err());
        assert!(DiscreteThermalModel::new(a.clone(), Matrix::zeros(3, 2), 0.1).is_err());
        assert!(DiscreteThermalModel::new(Matrix::zeros(2, 3), b, 0.1).is_err());
    }

    #[test]
    fn step_matches_manual_computation() {
        let model = example_model();
        let t = Vector::from_slice(&[20.0, 21.0, 19.0, 22.0]);
        let p = Vector::from_slice(&[2.0, 0.1, 0.3, 0.4]);
        let next = model.step(&t, &p).unwrap();
        let expected = model.a().mul_vector(&t).unwrap() + model.b().mul_vector(&p).unwrap();
        for i in 0..4 {
            assert!((next[i] - expected[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn zero_power_decays_towards_ambient() {
        let model = example_model();
        let mut t = Vector::from_slice(&[30.0, 28.0, 31.0, 29.0]);
        let p = Vector::zeros(4);
        for _ in 0..2000 {
            t = model.step(&t, &p).unwrap();
        }
        assert!(t.inf_norm() < 0.1, "relative temps must decay, got {t}");
    }

    #[test]
    fn constant_power_converges_to_fixed_point() {
        let model = example_model();
        let p = Vector::from_slice(&[2.0, 0.05, 0.2, 0.4]);
        let long = model
            .predict_constant_power(&Vector::zeros(4), &p, 5000)
            .unwrap();
        let next = model.step(&long, &p).unwrap();
        for i in 0..4 {
            assert!((next[i] - long[i]).abs() < 1e-6, "fixed point not reached");
        }
        assert!(long[0] > 5.0, "steady state must be well above ambient");
    }

    #[test]
    fn predict_constant_power_equals_repeated_steps() {
        let model = example_model();
        let t = Vector::from_slice(&[15.0, 14.0, 16.0, 15.5]);
        let p = Vector::from_slice(&[1.5, 0.1, 0.2, 0.35]);
        let direct = model.predict_constant_power(&t, &p, 10).unwrap();
        let mut manual = t.clone();
        for _ in 0..10 {
            manual = model.step(&manual, &p).unwrap();
        }
        for i in 0..4 {
            assert!((direct[i] - manual[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn horizon_matrices_agree_with_iterated_prediction() {
        let model = example_model();
        let t = Vector::from_slice(&[18.0, 17.0, 19.0, 18.5]);
        let p = Vector::from_slice(&[2.2, 0.1, 0.4, 0.4]);
        for horizon in [1, 5, 10, 25] {
            let (a_n, b_n) = model.horizon_matrices(horizon).unwrap();
            let aggregated = a_n.mul_vector(&t).unwrap() + b_n.mul_vector(&p).unwrap();
            let iterated = model.predict_constant_power(&t, &p, horizon).unwrap();
            for i in 0..4 {
                assert!(
                    (aggregated[i] - iterated[i]).abs() < 1e-9,
                    "horizon {horizon} state {i}"
                );
            }
        }
    }

    #[test]
    fn trajectory_prediction_tracks_varying_power() {
        let model = example_model();
        let t = Vector::zeros(4);
        let trajectory: Vec<Vector> = (0..20)
            .map(|k| {
                let load = if k < 10 { 2.5 } else { 0.5 };
                Vector::from_slice(&[load, 0.05, 0.1, 0.3])
            })
            .collect();
        let temps = model.predict_trajectory(&t, &trajectory).unwrap();
        assert_eq!(temps.len(), 20);
        // Heating during the first phase, cooling during the second.
        assert!(temps[9][0] > temps[0][0]);
        assert!(temps[19][0] < temps[9][0]);
    }

    #[test]
    fn zero_horizon_rejected() {
        let model = example_model();
        assert!(model
            .predict_constant_power(&Vector::zeros(4), &Vector::zeros(4), 0)
            .is_err());
        assert!(model.horizon_matrices(0).is_err());
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let model = example_model();
        assert!(model.step(&Vector::zeros(3), &Vector::zeros(4)).is_err());
        assert!(model.step(&Vector::zeros(4), &Vector::zeros(2)).is_err());
    }

    #[test]
    fn from_continuous_produces_stable_model() {
        // Simple 2-node network: both nodes 1 J/K, coupled by 0.5 W/K, node 0
        // connected to ambient with 0.2 W/K.
        let c = Matrix::from_diagonal(&[1.0, 1.0]);
        let g = Matrix::from_rows(&[&[0.7, -0.5], &[-0.5, 0.5]]).unwrap();
        let model = DiscreteThermalModel::from_continuous(&c, &g, 0.1).unwrap();
        assert!(model.is_stable());
        assert_eq!(model.state_count(), 2);
        assert_eq!(model.input_count(), 2);
        // Heating node 1 heats node 0 through the coupling.
        let heated = model
            .predict_constant_power(&Vector::zeros(2), &Vector::from_slice(&[0.0, 1.0]), 500)
            .unwrap();
        assert!(heated[0] > 0.5);
        assert!(heated[1] > heated[0]);
    }

    #[test]
    fn from_continuous_rejects_too_long_sample_period() {
        // Same network, but a 10 s Euler step is way past the stability limit.
        let c = Matrix::from_diagonal(&[0.1, 0.1]);
        let g = Matrix::from_rows(&[&[0.7, -0.5], &[-0.5, 0.5]]).unwrap();
        let err = DiscreteThermalModel::from_continuous(&c, &g, 10.0).unwrap_err();
        assert!(matches!(err, ThermalError::UnstableModel { .. }));
    }

    #[test]
    fn horizon_map_matches_horizon_matrices() {
        let model = example_model();
        let map = model.horizon_map(12).unwrap();
        let (a_n, b_n) = model.horizon_matrices(12).unwrap();
        assert_eq!(map.horizon(), 12);
        assert_eq!(map.a_n(), &a_n);
        assert_eq!(map.b_n(), &b_n);
        assert_eq!(map.state_count(), 4);
        assert_eq!(map.input_count(), 4);
        assert!(model.horizon_map(0).is_err());
    }

    #[test]
    fn horizon_map_apply_matches_iterated_prediction() {
        let model = example_model();
        let t = [18.0, 17.0, 19.0, 18.5];
        let p = [2.2, 0.1, 0.4, 0.4];
        for horizon in [1, 5, 10, 25] {
            let map = model.horizon_map(horizon).unwrap();
            let mut one_shot = [0.0; 4];
            map.apply_into(&t, &p, &mut one_shot).unwrap();
            let iterated = model
                .predict_constant_power(&Vector::from_slice(&t), &Vector::from_slice(&p), horizon)
                .unwrap();
            for i in 0..4 {
                assert!(
                    (one_shot[i] - iterated[i]).abs() < 1e-12,
                    "horizon {horizon} state {i}: {} vs {}",
                    one_shot[i],
                    iterated[i]
                );
            }
        }
    }

    #[test]
    fn horizon_map_apply_handles_rectangular_inputs() {
        // 2 states, 3 inputs: the non-square (separate-loop) path.
        let a = Matrix::from_rows(&[&[0.9, 0.02], &[0.02, 0.9]]).unwrap();
        let b = Matrix::from_rows(&[&[0.1, 0.02, 0.01], &[0.08, 0.03, 0.01]]).unwrap();
        let model = DiscreteThermalModel::new(a, b, 0.1).unwrap();
        let map = model.horizon_map(7).unwrap();
        let t = [5.0, 6.0];
        let p = [1.0, 0.5, 0.25];
        let mut out = [0.0; 2];
        map.apply_into(&t, &p, &mut out).unwrap();
        let iterated = model
            .predict_constant_power(&Vector::from_slice(&t), &Vector::from_slice(&p), 7)
            .unwrap();
        for i in 0..2 {
            assert!((out[i] - iterated[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn horizon_map_apply_rejects_wrong_lengths() {
        let map = example_model().horizon_map(3).unwrap();
        let mut out = [0.0; 4];
        assert!(map.apply_into(&[0.0; 3], &[0.0; 4], &mut out).is_err());
        assert!(map.apply_into(&[0.0; 4], &[0.0; 5], &mut out).is_err());
        assert!(map.apply_into(&[0.0; 4], &[0.0; 4], &mut [0.0; 2]).is_err());
    }

    #[test]
    fn row_accessors_match_matrices() {
        let model = example_model();
        assert_eq!(model.a_row(2), model.a().row(2).as_slice());
        assert_eq!(model.b_row(1), model.b().row(1).as_slice());
        assert_eq!(model.sample_period_s(), 0.1);
    }
}

//! Error type for thermal-model operations.

use std::error::Error;
use std::fmt;

/// Errors returned by thermal-network and state-space model operations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ThermalError {
    /// A vector passed to the model had the wrong length.
    DimensionMismatch {
        /// What the vector represents.
        what: &'static str,
        /// Expected length.
        expected: usize,
        /// Actual length.
        actual: usize,
    },
    /// A physical parameter was non-positive or non-finite.
    InvalidParameter(&'static str),
    /// The underlying linear algebra failed (singular conductance matrix, ...).
    Numeric(String),
    /// The model is unstable (spectral radius of `As` is not below one).
    UnstableModel {
        /// Estimated spectral radius of the state matrix.
        spectral_radius: f64,
    },
}

impl fmt::Display for ThermalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ThermalError::DimensionMismatch {
                what,
                expected,
                actual,
            } => write!(f, "{what} has length {actual}, expected {expected}"),
            ThermalError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            ThermalError::Numeric(msg) => write!(f, "numeric failure: {msg}"),
            ThermalError::UnstableModel { spectral_radius } => write!(
                f,
                "thermal model is unstable (spectral radius {spectral_radius:.4} >= 1)"
            ),
        }
    }
}

impl Error for ThermalError {}

impl From<numeric::NumericError> for ThermalError {
    fn from(err: numeric::NumericError) -> Self {
        ThermalError::Numeric(err.to_string())
    }
}

//! Thermal modelling for the DTPM reproduction (Chapter 4.2).
//!
//! Two kinds of thermal model live here, mirroring the paper's methodology:
//!
//! * [`network::ThermalNetwork`] — a physical RC thermal network used as the
//!   *ground-truth plant* in the simulator. Using the duality between thermal
//!   and electrical networks, every die/package location is a capacitance and
//!   every heat-flow path a conductance, and the temperatures obey
//!   `C·dT/dt = −G·T + P` (Eq. 4.3). The Odroid plant instantiated by
//!   [`network::ExynosThermalNetwork`] has eight nodes (four big cores, the
//!   little cluster, the GPU, the memory and the board/heat-sink "case"), so it
//!   is deliberately *richer* than the model the controller identifies.
//!
//! * [`state_space::DiscreteThermalModel`] — the discrete linear state-space
//!   model `T[k+1] = As·T[k] + Bs·P[k]` (Eq. 4.4) that the paper identifies
//!   from measurements and uses for prediction (Eq. 4.5). The DTPM controller
//!   only ever sees this reduced model, never the plant.
//!
//! # Hot-path architecture
//!
//! Large calibration/evaluation sweeps step the plant millions of times, so
//! the integrator offers allocation-free forms next to the allocating
//! conveniences:
//!
//! * [`network::ThermalNetwork::step_into`] advances the temperatures in
//!   place through a reusable [`network::RkScratch`] (six preallocated
//!   buffers); [`network::ThermalNetwork::step`] is a thin wrapper, so the
//!   two are bit-identical.
//! * The fan's extra case-to-ambient conductance is a [`network::FanBoost`]
//!   *step parameter* — the per-interval path never clones the network.
//! * [`network::ThermalNetwork::step_transition`] precomputes one RK4 step of
//!   the (linear, constant-coefficient) thermal ODE as an affine map
//!   `T⁺ = R·T + S·p + c`; [`network::StepTransition::apply`] evaluates it
//!   with two dense mat-vecs, several times faster than the staged sweeps and
//!   equal to them up to floating-point reassociation. The simulator caches
//!   one transition per (fan level, ambient).
//! * Per-node inverse capacitances are precomputed at build time, and
//!   [`state_space::DiscreteThermalModel::step_into`] /
//!   [`state_space::DiscreteThermalModel::predict_constant_power_into`] give
//!   the prediction side the same scratch-reuse treatment.
//! * [`state_space::DiscreteThermalModel::horizon_map`] collapses an
//!   `n`-step constant-power prediction into the precomputed affine map
//!   `T[k+n] = Aₙ·T[k] + Bₙ·P` ([`state_space::HorizonMap`]): one
//!   application regardless of the horizon, agreeing with the iterated
//!   predictor to ≤ 1e-12 °C, and with an accumulation order chosen so a
//!   panel (batched) application is bit-identical per lane to the scalar
//!   one. This is the control-path twin of the plant's cached transitions.
//!
//! # Batched (structure-of-arrays) stepping
//!
//! Scenario sweeps advance many *independent* plants through the same
//! network, so beyond the scalar transition there is a batch form:
//! [`network::ThermalNetwork::batch_step_transition`] builds a
//! [`network::BatchStepTransition`] that advances a `numeric::Panel` of
//! temperatures — **one scenario per column**, each node row contiguous
//! across scenarios. One call to
//! [`network::BatchStepTransition::apply_panel`] is a blocked mat-mat that
//! streams the two `n × n` matrices through the cache once for *all* lanes,
//! instead of once per scenario as the scalar
//! [`network::StepTransition::apply`] loop does.
//!
//! Batched stepping applies whenever the lanes share the transition key
//! (fan boost, ambient, step size); lanes that diverge — different fan
//! levels mid-sweep — are advanced by the strided
//! [`network::BatchStepTransition::apply_lane`] fallback, which accumulates
//! in the same per-lane order and is therefore bit-identical to the panel
//! path (and to the scalar transition). Scalar stepping remains the right
//! tool for a single trajectory; the panel pays for itself from a handful of
//! lanes up.
//!
//! # Example
//!
//! ```
//! use numeric::{Matrix, Vector};
//! use thermal_model::DiscreteThermalModel;
//!
//! # fn main() -> Result<(), thermal_model::ThermalError> {
//! // A 2-hotspot, 1-input toy model.
//! let a = Matrix::from_rows(&[&[0.90, 0.05], &[0.04, 0.91]]).unwrap();
//! let b = Matrix::from_rows(&[&[0.8], &[0.3]]).unwrap();
//! let model = DiscreteThermalModel::new(a, b, 0.1)?;
//! let next = model.step(
//!     &Vector::from_slice(&[50.0, 48.0]),
//!     &Vector::from_slice(&[2.0]),
//! )?;
//! assert!(next[0] > 46.0 && next[0] < 52.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod error;
pub mod network;
pub mod state_space;

pub use error::ThermalError;
pub use network::{
    BatchStepTransition, BatchStepTransitionF32, ExynosThermalNetwork, FanBoost, NodeId, RkScratch,
    StepTransition, ThermalNetwork, ThermalNetworkBuilder,
};
pub use state_space::{DiscreteThermalModel, HorizonMap};

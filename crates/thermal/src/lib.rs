//! Thermal modelling for the DTPM reproduction (Chapter 4.2).
//!
//! Two kinds of thermal model live here, mirroring the paper's methodology:
//!
//! * [`network::ThermalNetwork`] — a physical RC thermal network used as the
//!   *ground-truth plant* in the simulator. Using the duality between thermal
//!   and electrical networks, every die/package location is a capacitance and
//!   every heat-flow path a conductance, and the temperatures obey
//!   `C·dT/dt = −G·T + P` (Eq. 4.3). The Odroid plant instantiated by
//!   [`network::ExynosThermalNetwork`] has eight nodes (four big cores, the
//!   little cluster, the GPU, the memory and the board/heat-sink "case"), so it
//!   is deliberately *richer* than the model the controller identifies.
//!
//! * [`state_space::DiscreteThermalModel`] — the discrete linear state-space
//!   model `T[k+1] = As·T[k] + Bs·P[k]` (Eq. 4.4) that the paper identifies
//!   from measurements and uses for prediction (Eq. 4.5). The DTPM controller
//!   only ever sees this reduced model, never the plant.
//!
//! # Example
//!
//! ```
//! use numeric::{Matrix, Vector};
//! use thermal_model::DiscreteThermalModel;
//!
//! # fn main() -> Result<(), thermal_model::ThermalError> {
//! // A 2-hotspot, 1-input toy model.
//! let a = Matrix::from_rows(&[&[0.90, 0.05], &[0.04, 0.91]]).unwrap();
//! let b = Matrix::from_rows(&[&[0.8], &[0.3]]).unwrap();
//! let model = DiscreteThermalModel::new(a, b, 0.1)?;
//! let next = model.step(
//!     &Vector::from_slice(&[50.0, 48.0]),
//!     &Vector::from_slice(&[2.0]),
//! )?;
//! assert!(next[0] > 46.0 && next[0] < 52.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod error;
pub mod network;
pub mod state_space;

pub use error::ThermalError;
pub use network::{ExynosThermalNetwork, NodeId, ThermalNetwork, ThermalNetworkBuilder};
pub use state_space::DiscreteThermalModel;

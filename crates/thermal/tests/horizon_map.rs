//! Property tests pinning the one-shot horizon map to the iterated
//! predictor.
//!
//! The DTPM control path replaces the `horizon`-length prediction loop with
//! one application of the precomputed affine map `T[k+n] = Aₙ·T[k] + Bₙ·P`
//! ([`HorizonMap`]). These tests prove the two agree to ≤ 1e-12 °C over
//! random temperatures, powers and horizons 1..=32 on models shaped like the
//! identified 4-hotspot Exynos model — the bar the batched control-path
//! predictor inherits.

use numeric::{Matrix, Vector};
use proptest::prelude::*;
use thermal_model::DiscreteThermalModel;

/// A stable 4-state/4-input model parameterised by a coupling knob, loosely
/// shaped like the identified Exynos hotspot model.
fn model(coupling: f64) -> DiscreteThermalModel {
    let d = 0.95 - 3.0 * coupling;
    let a = Matrix::from_rows(&[
        &[d, coupling, coupling, coupling],
        &[coupling, d, coupling, coupling],
        &[coupling, coupling, d, coupling],
        &[coupling, coupling, coupling, d],
    ])
    .unwrap();
    let b = Matrix::from_rows(&[
        &[0.26, 0.10, 0.16, 0.06],
        &[0.24, 0.12, 0.10, 0.06],
        &[0.26, 0.10, 0.16, 0.06],
        &[0.24, 0.12, 0.10, 0.06],
    ])
    .unwrap();
    DiscreteThermalModel::new(a, b, 0.1).unwrap()
}

proptest! {
    #[test]
    fn one_shot_map_matches_iterated_predictor(
        coupling in 0.01..0.09f64,
        t0 in 0.0..60.0f64,
        t1 in 0.0..60.0f64,
        t2 in 0.0..60.0f64,
        t3 in 0.0..60.0f64,
        p_big in 0.0..6.0f64,
        p_little in 0.0..1.0f64,
        p_gpu in 0.0..2.0f64,
        p_mem in 0.0..1.0f64,
        horizon in 1usize..33,
    ) {
        let model = model(coupling);
        let temps = [t0, t1, t2, t3];
        let powers = [p_big, p_little, p_gpu, p_mem];

        let map = model.horizon_map(horizon).unwrap();
        prop_assert_eq!(map.horizon(), horizon);
        let mut one_shot = [0.0; 4];
        map.apply_into(&temps, &powers, &mut one_shot).unwrap();

        let iterated = model
            .predict_constant_power(
                &Vector::from_slice(&temps),
                &Vector::from_slice(&powers),
                horizon,
            )
            .unwrap();

        for i in 0..4 {
            prop_assert!(
                (one_shot[i] - iterated[i]).abs() <= 1e-12,
                "horizon {} state {}: one-shot {} vs iterated {} (diff {:e})",
                horizon,
                i,
                one_shot[i],
                iterated[i],
                (one_shot[i] - iterated[i]).abs()
            );
        }
    }
}

//! Property tests for the allocation-free integration hot path.
//!
//! Three guarantees keep the fast paths honest:
//!
//! 1. the allocating [`ThermalNetwork::step`] wrapper is **bit-identical** to
//!    the in-place [`ThermalNetwork::step_into`] across random networks,
//!    states and step sizes,
//! 2. a [`FanBoost`] step parameter is **bit-identical** to stepping a network
//!    rebuilt with [`ThermalNetwork::with_extra_ambient_conductance`] (the old
//!    clone-per-interval path),
//! 3. repeatedly stepping converges to [`ThermalNetwork::steady_state`].

use proptest::prelude::*;
use thermal_model::{
    ExynosThermalNetwork, FanBoost, RkScratch, ThermalNetwork, ThermalNetworkBuilder,
};

/// Builds a connected random network from property-generated parameters.
fn build_network(caps: &[f64], conds: &[f64], ambient_conds: &[f64]) -> ThermalNetwork {
    let n = caps.len();
    let mut b = ThermalNetworkBuilder::new();
    let ids: Vec<_> = caps
        .iter()
        .enumerate()
        .map(|(i, &c)| b.add_node(&format!("n{i}"), c))
        .collect();
    // A chain keeps every node connected; a long-range edge adds structure.
    for i in 0..n - 1 {
        b.connect(ids[i], ids[i + 1], conds[i % conds.len()])
            .unwrap();
    }
    if n > 2 {
        b.connect(ids[0], ids[n - 1], conds[n % conds.len()])
            .unwrap();
    }
    for (i, &g) in ambient_conds.iter().enumerate() {
        if i < n && g > 0.0 {
            b.connect_to_ambient(ids[i], g).unwrap();
        }
    }
    // Guarantee at least one ambient path.
    b.connect_to_ambient(ids[0], conds[0]).unwrap();
    b.build().unwrap()
}

proptest! {
    #[test]
    fn step_is_bit_identical_to_step_into(
        caps in prop::collection::vec(0.1..5.0f64, 2..7),
        conds in prop::collection::vec(0.05..2.0f64, 12),
        ambient_conds in prop::collection::vec(0.01..0.8f64, 3),
        temps_pool in prop::collection::vec(15.0..95.0f64, 7),
        powers_pool in prop::collection::vec(0.0..3.0f64, 7),
        dt in 0.001..0.05f64,
    ) {
        let network = build_network(&caps, &conds, &ambient_conds);
        let n = network.node_count();
        let temps: Vec<f64> = (0..n).map(|i| temps_pool[i % temps_pool.len()]).collect();
        let powers: Vec<f64> = (0..n).map(|i| powers_pool[i % powers_pool.len()]).collect();

        let via_wrapper = network.step(&temps, &powers, 25.0, dt).unwrap();
        let mut in_place = temps.clone();
        let mut scratch = RkScratch::new(n);
        network
            .step_into(&mut in_place, &powers, 25.0, dt, FanBoost::NONE, &mut scratch)
            .unwrap();
        // Bit-identical, not approximately equal.
        prop_assert_eq!(via_wrapper, in_place);
    }

    #[test]
    fn fan_boost_is_bit_identical_to_modified_network(
        caps in prop::collection::vec(0.1..5.0f64, 2..7),
        conds in prop::collection::vec(0.05..2.0f64, 12),
        ambient_conds in prop::collection::vec(0.01..0.8f64, 3),
        temps_pool in prop::collection::vec(15.0..95.0f64, 7),
        powers_pool in prop::collection::vec(0.0..3.0f64, 7),
        boost in 0.0..1.5f64,
        node_pick in 0.0..1.0f64,
        dt in 0.001..0.05f64,
    ) {
        let network = build_network(&caps, &conds, &ambient_conds);
        let n = network.node_count();
        let temps: Vec<f64> = (0..n).map(|i| temps_pool[i % temps_pool.len()]).collect();
        let powers: Vec<f64> = (0..n).map(|i| powers_pool[i % powers_pool.len()]).collect();
        let node = thermal_model::NodeId((node_pick * n as f64) as usize % n);

        // Old path: clone the network with the boost baked in, then step.
        let cloned = network
            .with_extra_ambient_conductance(node, boost)
            .step(&temps, &powers, 25.0, dt)
            .unwrap();
        // Hot path: pass the boost as a step parameter.
        let mut in_place = temps.clone();
        let mut scratch = RkScratch::new(n);
        network
            .step_into(
                &mut in_place,
                &powers,
                25.0,
                dt,
                FanBoost::at(node, boost),
                &mut scratch,
            )
            .unwrap();
        prop_assert_eq!(cloned, in_place);
    }
}

#[test]
fn repeated_step_into_converges_to_steady_state() {
    let plant = ExynosThermalNetwork::odroid_xu_e();
    let network = plant.network();
    let powers = plant.power_vector(&[0.9, 0.8, 0.85, 0.95], 0.05, 0.35, 0.4);
    let expected = network.steady_state(&powers, 28.0).unwrap();

    let mut temps = vec![28.0; network.node_count()];
    let mut scratch = RkScratch::new(network.node_count());
    for _ in 0..3_000_000 {
        network
            .step_into(
                &mut temps,
                &powers,
                28.0,
                0.01,
                FanBoost::NONE,
                &mut scratch,
            )
            .unwrap();
    }
    for (simulated, steady) in temps.iter().zip(&expected) {
        assert!(
            (simulated - steady).abs() < 0.05,
            "integration {temps:?} vs steady state {expected:?}"
        );
    }
}

#[test]
fn fan_boosted_convergence_matches_boosted_steady_state() {
    let plant = ExynosThermalNetwork::odroid_xu_e();
    let network = plant.network();
    let boost = 0.065;
    let powers = plant.power_vector(&[1.0, 1.0, 1.0, 1.0], 0.05, 0.3, 0.45);
    let expected = plant
        .network_with_fan_boost(boost)
        .steady_state(&powers, 28.0)
        .unwrap();

    let mut temps = vec![40.0; network.node_count()];
    let mut scratch = RkScratch::new(network.node_count());
    let fan = plant.fan_boost(boost);
    for _ in 0..3_000_000 {
        network
            .step_into(&mut temps, &powers, 28.0, 0.01, fan, &mut scratch)
            .unwrap();
    }
    for (simulated, steady) in temps.iter().zip(&expected) {
        assert!(
            (simulated - steady).abs() < 0.05,
            "integration {temps:?} vs steady state {expected:?}"
        );
    }
}

//! Property tests for the SIMD-dispatched leakage span across re-anchor
//! cadences.
//!
//! Two layers of contract: (1) every dispatch arm is bit-identical to forced
//! scalar in both the default and `fma` builds (all arms perform the same
//! per-cell operation sequence); (2) against the libm-based
//! `LeakageModel::current_a` reference, the anchored panel tracks within
//! floating-point rounding across a whole re-anchor period — exactly the
//! documented drift bound in the default build, a few ulps looser under
//! `fma` where the panel fuses and libm does not.

use numeric::simd::PanelKernel;
use power_model::{LeakageModel, LeakagePanel, LeakageParams};
use proptest::prelude::*;

#[cfg(not(feature = "fma"))]
const REL_BOUND: f64 = 5e-15;
#[cfg(feature = "fma")]
const REL_BOUND: f64 = 1e-14;

fn models() -> [LeakageModel; 4] {
    [
        LeakageModel::exynos5410_big(),
        LeakageModel::exynos5410_little(),
        LeakageModel::exynos5410_gpu(),
        LeakageModel::exynos5410_memory(),
    ]
}

proptest! {
    #[test]
    fn anchored_currents_track_libm_across_reanchor_cadences(
        lanes in 1usize..14,
        anchor_t in 35.0..85.0f64,
        // Per-step drift up to the documented worst case (~0.06 K/step).
        drift in -0.06..0.06f64,
        // Re-anchor after 1..=REANCHOR_STEPS steps — every legal cadence.
        cadence in 1usize..(LeakagePanel::REANCHOR_STEPS + 1),
        model_idx in 0usize..4,
        periods in 1usize..4,
    ) {
        let model = models()[model_idx];
        let mut panel = LeakagePanel::filled(1, lanes, &model, anchor_t);
        let mut temps = vec![anchor_t; lanes];
        let mut out = vec![0.0; lanes];
        let mut steps_since_anchor = 0;
        for _step in 0..periods * cadence {
            if steps_since_anchor == cadence {
                panel.anchor_row(0, &temps);
                steps_since_anchor = 0;
            }
            for (l, t) in temps.iter_mut().enumerate() {
                *t += drift * (1.0 + l as f64 * 0.03);
            }
            panel.currents_row_into(0, &temps, &mut out);
            for (l, &got) in out.iter().enumerate() {
                let exact = model.current_a(temps[l]);
                let rel = ((got - exact) / exact).abs();
                prop_assert!(
                    rel < REL_BOUND,
                    "lane {l} rel error {rel:.3e} ({got} vs {exact})"
                );
            }
            steps_since_anchor += 1;
        }
    }

    #[test]
    fn leakage_arms_bit_identical_across_cells_and_drift(
        rows in 1usize..7,
        lanes in 1usize..14,
        anchor_t in 35.0..85.0f64,
        offset in -0.5..0.5f64,
        model_seed in 0usize..4,
    ) {
        let base = models();
        let mut panel = LeakagePanel::filled(rows, lanes, &base[model_seed], anchor_t);
        // Vary the models per cell so the coefficient loads actually differ.
        for r in 0..rows {
            for l in 0..lanes {
                let m = base[(r + l + model_seed) % 4];
                // Perturb igate per cell to break symmetry further.
                let params = LeakageParams {
                    igate_a: m.params().igate_a * (1.0 + 0.01 * l as f64),
                    ..m.params()
                };
                panel.set_model(r, l, &LeakageModel::new(params), anchor_t + 0.1 * r as f64);
            }
        }
        let cells = rows * lanes;
        let temps: Vec<f64> = (0..cells)
            .map(|k| anchor_t + offset + 0.002 * k as f64)
            .collect();
        let mut scalar = vec![0.0; cells];
        panel.currents_into_with(PanelKernel::Scalar, &temps, &mut scalar);
        for kernel in [PanelKernel::Avx2Fma, PanelKernel::Neon] {
            if !kernel.is_available() {
                continue;
            }
            let mut wide = vec![0.0; cells];
            panel.currents_into_with(kernel, &temps, &mut wide);
            for (k, (s, w)) in scalar.iter().zip(&wide).enumerate() {
                prop_assert_eq!(
                    s.to_bits(),
                    w.to_bits(),
                    "kernel {:?} cell {} ({} vs {})",
                    kernel, k, s, w
                );
            }
        }
    }
}

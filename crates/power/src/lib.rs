//! Power modelling methodology of the DTPM paper (Chapter 4.1).
//!
//! The total power of every measured domain is split into a dynamic and a
//! leakage component:
//!
//! ```text
//! P_total = P_dynamic + P_leakage = αCV²f + V·I_leak(T)
//! I_leak(T) = c1·T²·e^(c2/T) + I_gate
//! ```
//!
//! Three pieces reproduce the paper's methodology:
//!
//! * [`leakage`] — the condensed leakage-current model and the nonlinear fit
//!   of `c1`, `c2`, `I_gate` from furnace measurements (Figures 4.1–4.3),
//! * [`furnace`] — the furnace characterisation procedure itself: sweep the
//!   ambient temperature from 40 °C to 80 °C with a light fixed-frequency
//!   workload and collect total-power samples (Figure 4.2),
//! * [`dynamic`] — the run-time estimation of the activity-factor ×
//!   switching-capacitance product `αC` by subtracting modelled leakage from
//!   measured power (Figure 4.4), and the resulting dynamic-power predictor.
//!
//! [`model::PowerModel`] ties the per-domain pieces together and is what the
//! DTPM algorithm queries to translate a power budget into a frequency.
//!
//! # Example
//!
//! ```
//! use power_model::{LeakageModel, PowerModel};
//! use soc_model::{Frequency, PowerDomain, SocSpec, Voltage};
//!
//! let spec = SocSpec::odroid_xu_e();
//! let mut model = PowerModel::exynos5410_defaults();
//!
//! // Feed one sensor observation for the big cluster...
//! model.observe(
//!     PowerDomain::BigCpu,
//!     /* measured power */ 1.8,
//!     /* temperature  */ 55.0,
//!     Voltage::from_volts(1.2),
//!     Frequency::from_mhz(1600),
//! );
//! // ...and predict what the cluster would draw at 1.2 GHz instead.
//! let v = spec.big_opps().voltage_for(Frequency::from_mhz(1200)).unwrap();
//! let predicted = model.predict_total(
//!     PowerDomain::BigCpu,
//!     55.0,
//!     v,
//!     Frequency::from_mhz(1200),
//! );
//! assert!(predicted > 0.0 && predicted < 1.8);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod domain_power;
pub mod dynamic;
pub mod error;
pub mod furnace;
pub mod leakage;
pub mod model;

pub use domain_power::DomainPower;
pub use dynamic::{ActivityEstimator, DynamicPowerModel};
pub use error::PowerError;
pub use furnace::{FurnaceDataset, FurnaceRun, FurnaceSample};
pub use leakage::{currents_batch, LeakageModel, LeakagePanel, LeakagePanelF32, LeakageParams};
pub use model::{DomainPowerModel, PowerModel};

//! Dynamic power model and run-time `αC` estimation.
//!
//! Dynamic power follows the classic CMOS switching equation
//! `P_dyn = αCV²f`. The product of the activity factor `α` and the switching
//! capacitance `C` is workload dependent, so the paper estimates it at run
//! time (Figure 4.4): subtract the modelled leakage from the measured power
//! and divide by `V²f`. The estimate is then used to predict the dynamic
//! power of *candidate* frequencies before the governor commits to one.

use serde::{Deserialize, Serialize};
use soc_model::{Frequency, Voltage};

use crate::leakage::LeakageModel;

/// Plain `P = αCV²f` dynamic-power model with a fixed effective capacitance.
///
/// # Example
///
/// ```
/// use power_model::DynamicPowerModel;
/// use soc_model::{Frequency, Voltage};
///
/// // A fully-active big core has an effective switched capacitance of ~0.3 nF.
/// let core = DynamicPowerModel::new(0.30e-9);
/// let p = core.power_w(Voltage::from_volts(1.2), Frequency::from_mhz(1600));
/// assert!((p - 0.69).abs() < 0.01);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DynamicPowerModel {
    /// Effective switched capacitance `αC` in farads.
    alpha_c_f: f64,
}

impl DynamicPowerModel {
    /// Creates a model with the given `αC` product in farads.
    pub fn new(alpha_c_f: f64) -> Self {
        DynamicPowerModel { alpha_c_f }
    }

    /// The `αC` product in farads.
    pub fn alpha_c(&self) -> f64 {
        self.alpha_c_f
    }

    /// Dynamic power at the given voltage and frequency, in watts.
    pub fn power_w(&self, voltage: Voltage, frequency: Frequency) -> f64 {
        let v = voltage.volts();
        self.alpha_c_f * v * v * frequency.hz()
    }

    /// The frequency (in Hz, continuous) at which this model would consume
    /// exactly `budget_w` at the given voltage — the inversion
    /// `f_budget = P_budget / (αCV²)` used by the DTPM algorithm (Eq. 5.7).
    ///
    /// Returns `None` when the capacitance is (numerically) zero, i.e. the
    /// workload draws no measurable dynamic power and any frequency satisfies
    /// the budget.
    pub fn frequency_for_budget_hz(&self, budget_w: f64, voltage: Voltage) -> Option<f64> {
        let v = voltage.volts();
        let denom = self.alpha_c_f * v * v;
        if denom <= f64::EPSILON {
            return None;
        }
        Some((budget_w / denom).max(0.0))
    }
}

/// Run-time estimator of the `αC` product for one power domain (Figure 4.4).
///
/// Every control interval the estimator receives the measured total power,
/// the die temperature, and the operating point; it subtracts the modelled
/// leakage and updates an exponentially-weighted moving average of `αC`. The
/// smoothing mirrors the kernel implementation, which must tolerate sensor
/// noise and abrupt workload phase changes without oscillating.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ActivityEstimator {
    /// Current EWMA of the `αC` product, in farads.
    alpha_c_f: f64,
    /// EWMA smoothing factor in (0, 1]; 1.0 means "use the newest sample only".
    smoothing: f64,
    /// Number of observations folded into the estimate.
    samples: u64,
}

impl ActivityEstimator {
    /// Creates an estimator with the given initial `αC` guess (farads) and
    /// EWMA smoothing factor.
    ///
    /// # Panics
    ///
    /// Panics if `smoothing` is not in `(0, 1]` or the initial value is
    /// negative.
    pub fn new(initial_alpha_c_f: f64, smoothing: f64) -> Self {
        assert!(
            smoothing > 0.0 && smoothing <= 1.0,
            "smoothing factor must be in (0, 1]"
        );
        assert!(initial_alpha_c_f >= 0.0, "alpha*C must be non-negative");
        ActivityEstimator {
            alpha_c_f: initial_alpha_c_f,
            smoothing,
            samples: 0,
        }
    }

    /// Default estimator used for CPU clusters: starts from a light-workload
    /// capacitance and follows changes quickly (the kernel runs this every
    /// 100 ms, so a smoothing factor of 0.5 settles within a few hundred ms).
    pub fn for_cpu_cluster() -> Self {
        ActivityEstimator::new(0.15e-9, 0.5)
    }

    /// Default estimator used for the GPU and memory domains.
    pub fn for_uncore() -> Self {
        ActivityEstimator::new(0.10e-9, 0.5)
    }

    /// The current `αC` estimate in farads.
    pub fn alpha_c(&self) -> f64 {
        self.alpha_c_f
    }

    /// Number of observations folded into the estimate so far.
    pub fn sample_count(&self) -> u64 {
        self.samples
    }

    /// The dynamic-power model implied by the current estimate.
    pub fn dynamic_model(&self) -> DynamicPowerModel {
        DynamicPowerModel::new(self.alpha_c_f)
    }

    /// Folds one sensor observation into the estimate and returns the
    /// instantaneous (un-smoothed) `αC` value computed from it.
    ///
    /// `measured_total_w` is the domain's total measured power; the leakage
    /// model and die temperature determine how much of it is attributed to
    /// leakage. Negative dynamic residuals (possible with sensor noise at
    /// idle) are clamped to zero rather than corrupting the estimate.
    pub fn observe(
        &mut self,
        measured_total_w: f64,
        temp_c: f64,
        voltage: Voltage,
        frequency: Frequency,
        leakage: &LeakageModel,
    ) -> f64 {
        let leak_w = leakage.power_w(voltage, temp_c);
        let dynamic_w = (measured_total_w - leak_w).max(0.0);
        let v = voltage.volts();
        let denom = v * v * frequency.hz();
        let instantaneous = if denom > 0.0 { dynamic_w / denom } else { 0.0 };
        if self.samples == 0 {
            self.alpha_c_f = instantaneous;
        } else {
            self.alpha_c_f =
                self.smoothing * instantaneous + (1.0 - self.smoothing) * self.alpha_c_f;
        }
        self.samples += 1;
        instantaneous
    }

    /// Predicts the dynamic power this domain would draw at a candidate
    /// operating point, assuming the workload activity stays what it is now.
    pub fn predict_dynamic_w(&self, voltage: Voltage, frequency: Frequency) -> f64 {
        self.dynamic_model().power_w(voltage, frequency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::leakage::LeakageModel;

    #[test]
    fn dynamic_power_scales_quadratically_with_voltage_and_linearly_with_f() {
        let m = DynamicPowerModel::new(0.3e-9);
        let p_base = m.power_w(Voltage::from_volts(1.0), Frequency::from_mhz(1000));
        let p_2v = m.power_w(Voltage::from_volts(2.0), Frequency::from_mhz(1000));
        let p_2f = m.power_w(Voltage::from_volts(1.0), Frequency::from_mhz(2000));
        assert!((p_2v / p_base - 4.0).abs() < 1e-9);
        assert!((p_2f / p_base - 2.0).abs() < 1e-9);
    }

    #[test]
    fn budget_frequency_inverts_power() {
        let m = DynamicPowerModel::new(0.3e-9);
        let v = Voltage::from_volts(1.1);
        let f = Frequency::from_mhz(1400);
        let p = m.power_w(v, f);
        let f_back = m.frequency_for_budget_hz(p, v).unwrap();
        assert!((f_back - f.hz()).abs() / f.hz() < 1e-12);
    }

    #[test]
    fn budget_frequency_none_for_zero_capacitance() {
        let m = DynamicPowerModel::new(0.0);
        assert!(m
            .frequency_for_budget_hz(1.0, Voltage::from_volts(1.0))
            .is_none());
    }

    #[test]
    fn estimator_recovers_true_alpha_c_from_clean_measurements() {
        let truth = DynamicPowerModel::new(0.25e-9);
        let leak = LeakageModel::exynos5410_big();
        let mut est = ActivityEstimator::for_cpu_cluster();
        let v = Voltage::from_volts(1.2);
        let f = Frequency::from_mhz(1600);
        for _ in 0..20 {
            let total = truth.power_w(v, f) + leak.power_w(v, 60.0);
            est.observe(total, 60.0, v, f, &leak);
        }
        assert!((est.alpha_c() - 0.25e-9).abs() / 0.25e-9 < 1e-6);
        assert_eq!(est.sample_count(), 20);
    }

    #[test]
    fn estimator_tracks_workload_phase_change() {
        let leak = LeakageModel::exynos5410_big();
        let mut est = ActivityEstimator::for_cpu_cluster();
        let v = Voltage::from_volts(1.2);
        let f = Frequency::from_mhz(1600);
        // Light phase.
        for _ in 0..10 {
            let total = DynamicPowerModel::new(0.05e-9).power_w(v, f) + leak.power_w(v, 50.0);
            est.observe(total, 50.0, v, f, &leak);
        }
        let light = est.alpha_c();
        // Heavy phase.
        for _ in 0..10 {
            let total = DynamicPowerModel::new(0.30e-9).power_w(v, f) + leak.power_w(v, 50.0);
            est.observe(total, 50.0, v, f, &leak);
        }
        let heavy = est.alpha_c();
        assert!(light < 0.1e-9);
        assert!(
            heavy > 0.25e-9,
            "estimator must converge towards the heavy phase"
        );
    }

    #[test]
    fn estimator_clamps_negative_dynamic_residual() {
        let leak = LeakageModel::exynos5410_big();
        let mut est = ActivityEstimator::for_cpu_cluster();
        let v = Voltage::from_volts(1.2);
        let f = Frequency::from_mhz(800);
        // Measured power below the modelled leakage (sensor noise at idle).
        let inst = est.observe(0.01, 70.0, v, f, &leak);
        assert_eq!(inst, 0.0);
        assert_eq!(est.alpha_c(), 0.0);
    }

    #[test]
    fn estimator_prediction_matches_model() {
        let mut est = ActivityEstimator::new(0.2e-9, 1.0);
        let leak = LeakageModel::exynos5410_big();
        let v = Voltage::from_volts(1.0);
        let f = Frequency::from_mhz(1000);
        est.observe(0.5, 50.0, v, f, &leak);
        let predicted = est.predict_dynamic_w(v, f);
        let expected = est.alpha_c() * 1.0 * 1.0 * 1.0e9;
        assert!((predicted - expected).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "smoothing factor")]
    fn estimator_rejects_bad_smoothing() {
        ActivityEstimator::new(0.1e-9, 0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn estimator_rejects_negative_capacitance() {
        ActivityEstimator::new(-1.0, 0.5);
    }
}

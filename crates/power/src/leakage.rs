//! Temperature-dependent leakage model and its characterisation.
//!
//! The paper condenses the sub-threshold leakage equation into
//!
//! ```text
//! I_leak(T) = c1·T²·e^(c2/T) + I_gate      (Eq. 4.2, T in kelvin)
//! ```
//!
//! and fits `c1`, `c2` and `I_gate` to furnace measurements taken while a
//! light, fixed-frequency workload keeps the dynamic power constant
//! (Figures 4.1–4.3). Leakage *power* is the supply voltage times the leakage
//! current.

use numeric::simd::{madd, madd_f32, PanelKernel};
use numeric::{levenberg_marquardt, FitOptions, Vector};
use serde::{Deserialize, Serialize};
use soc_model::Voltage;

use crate::PowerError;

/// Converts a temperature in °C to kelvin.
pub fn celsius_to_kelvin(temp_c: f64) -> f64 {
    temp_c + 273.15
}

/// The three condensed parameters of the leakage-current model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LeakageParams {
    /// Pre-exponential constant `c1` (A/K²).
    pub c1: f64,
    /// Exponential constant `c2` (K); negative for sub-threshold leakage that
    /// grows with temperature.
    pub c2: f64,
    /// Gate leakage current `I_gate` (A), independent of temperature.
    pub igate_a: f64,
}

impl LeakageParams {
    /// Parameters characterised for the Exynos 5410 big (A15) cluster.
    ///
    /// They reproduce the shape of Figure 4.3: roughly 0.08 W of leakage at
    /// 40 °C growing to roughly 0.27 W at 80 °C (at 1.2 V).
    pub fn exynos5410_big() -> Self {
        LeakageParams {
            c1: 0.0115,
            c2: -3100.0,
            igate_a: 0.008,
        }
    }

    /// Parameters for the little (A7) cluster: the A7 cores are far smaller,
    /// so their leakage is roughly an order of magnitude below the A15's.
    pub fn exynos5410_little() -> Self {
        LeakageParams {
            c1: 0.0017,
            c2: -3100.0,
            igate_a: 0.0015,
        }
    }

    /// Parameters for the GPU domain.
    pub fn exynos5410_gpu() -> Self {
        LeakageParams {
            c1: 0.0040,
            c2: -3100.0,
            igate_a: 0.003,
        }
    }

    /// Parameters for the memory domain (mostly temperature-insensitive
    /// standby current).
    pub fn exynos5410_memory() -> Self {
        LeakageParams {
            c1: 0.0008,
            c2: -3100.0,
            igate_a: 0.010,
        }
    }
}

/// Leakage currents for `N` (domain, temperature) pairs at once,
/// bit-identical to `N` separate [`LeakageModel::current_a`] calls.
///
/// The batched, branch-free form lets the compiler vectorise the temperature
/// conversions and the `c2/T` divisions and lets the `exp` latency chains
/// overlap — the plant simulator evaluates every domain's leakage this way
/// once per micro-step, millions of times per simulated run.
#[inline]
pub fn currents_batch<const N: usize>(models: [&LeakageModel; N], temps_c: [f64; N]) -> [f64; N] {
    let mut pre = [0.0f64; N];
    let mut arg = [0.0f64; N];
    for k in 0..N {
        let t = celsius_to_kelvin(temps_c[k]);
        pre[k] = models[k].params.c1 * t * t;
        arg[k] = models[k].params.c2 / t;
    }
    let mut out = [0.0f64; N];
    for k in 0..N {
        out[k] = arg[k].exp();
    }
    for k in 0..N {
        out[k] = pre[k] * out[k] + models[k].params.igate_a;
    }
    out
}

/// Structure-of-arrays leakage evaluation for many scenarios at once: one
/// (domain, lane) leakage model per panel cell, evaluated row by row with
/// unit-stride inner loops.
///
/// This is the panel variant of [`currents_batch`] used by the batched plant
/// engine. The expensive part of the leakage equation is `e^(c2/T)`; the
/// panel replaces the per-call `libm` exponential with an *anchored* form
///
/// ```text
/// e^a = e^a0 · e^(a − a0)
/// ```
///
/// where the anchor `e^a0` is computed exactly (via `f64::exp`) every
/// [`LeakagePanel::REANCHOR_STEPS`] micro-steps and the drift factor
/// `e^(a − a0)` by a degree-7 polynomial. Node temperatures move by at most a
/// few hundredths of a kelvin per micro-step, so `|a − a0|` stays below ~0.05
/// between re-anchors and the polynomial is accurate to < 1 ulp (≈ 2e-16
/// relative); the batched currents therefore agree with
/// [`LeakageModel::current_a`] to floating-point rounding, not bit-exactly.
///
/// The branch-free inner loops (divide, polynomial, fused add) vectorise
/// across lanes, which is where the batched engine's leakage speedup over
/// one `libm` exponential per scenario comes from.
#[derive(Debug, Clone, PartialEq)]
pub struct LeakagePanel {
    rows: usize,
    lanes: usize,
    c1: Vec<f64>,
    c2: Vec<f64>,
    igate: Vec<f64>,
    /// Anchor argument `a0 = c2 / T_anchor` per cell.
    a0: Vec<f64>,
    /// Anchor exponential `e^(a0)` per cell.
    e0: Vec<f64>,
}

impl LeakagePanel {
    /// How many micro-steps an anchor stays valid before
    /// `LeakagePanel::anchor` must refresh it. At the plant's worst-case
    /// drift (~0.06 K per 10 ms micro-step) the exponent moves ~2e-3 per
    /// step, so 16 steps keep `|a − a0| < 0.05` with a wide margin.
    pub const REANCHOR_STEPS: usize = 16;

    /// Creates a `rows × lanes` panel with every cell set to `model`,
    /// anchored at `anchor_temp_c`.
    ///
    /// Anchors are valid from construction: there is no unanchored state a
    /// caller could evaluate by mistake, so a panel (or a lane admitted into
    /// one mid-sweep via [`LeakagePanel::set_model`]) always produces finite
    /// currents. The anchor is *exact* at `anchor_temp_c` and the drift
    /// polynomial covers departures of a few hundredths of a kelvin, so pass
    /// the temperature the first evaluation will actually use (the plant's
    /// initial temperature) and re-anchor on the usual cadence afterwards.
    ///
    /// # Panics
    ///
    /// Panics if `rows` or `lanes` is zero or `anchor_temp_c` is not finite.
    pub fn filled(rows: usize, lanes: usize, model: &LeakageModel, anchor_temp_c: f64) -> Self {
        assert!(rows > 0 && lanes > 0, "panel dimensions must be non-zero");
        assert!(
            anchor_temp_c.is_finite(),
            "anchor temperature must be finite"
        );
        let n = rows * lanes;
        let a = model.params.c2 / celsius_to_kelvin(anchor_temp_c);
        LeakagePanel {
            rows,
            lanes,
            c1: vec![model.params.c1; n],
            c2: vec![model.params.c2; n],
            igate: vec![model.params.igate_a; n],
            a0: vec![a; n],
            e0: vec![a.exp(); n],
        }
    }

    /// Number of domain rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of scenario lanes.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Sets the leakage model of cell `(row, lane)` and immediately anchors
    /// it at `anchor_temp_c` with the exact `libm` exponential.
    ///
    /// Requiring the anchor temperature here (instead of poisoning the cell
    /// until a separate anchor call) means a lane admitted into a running
    /// sweep can never read an unanchored exponential: the stale anchor of
    /// the *old* model is replaced atomically with a fresh, exact anchor for
    /// the new one. Pass the temperature the lane restarts at (its initial
    /// temperature); scheduled re-anchoring takes over from there.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `lane` is out of bounds or `anchor_temp_c` is not
    /// finite.
    pub fn set_model(&mut self, row: usize, lane: usize, model: &LeakageModel, anchor_temp_c: f64) {
        assert!(
            row < self.rows && lane < self.lanes,
            "panel index out of bounds"
        );
        assert!(
            anchor_temp_c.is_finite(),
            "anchor temperature must be finite"
        );
        let k = row * self.lanes + lane;
        self.c1[k] = model.params.c1;
        self.c2[k] = model.params.c2;
        self.igate[k] = model.params.igate_a;
        let a = model.params.c2 / celsius_to_kelvin(anchor_temp_c);
        self.a0[k] = a;
        self.e0[k] = a.exp();
    }

    /// Re-anchors row `row` at the given temperatures (°C, one per lane)
    /// using the exact `libm` exponential.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds or `temps_c.len() != self.lanes()`.
    pub fn anchor_row(&mut self, row: usize, temps_c: &[f64]) {
        assert!(row < self.rows, "panel row out of bounds");
        assert_eq!(temps_c.len(), self.lanes, "anchor temperature row length");
        let lanes = self.lanes;
        let c2 = &self.c2[row * lanes..(row + 1) * lanes];
        let a0 = &mut self.a0[row * lanes..(row + 1) * lanes];
        let e0 = &mut self.e0[row * lanes..(row + 1) * lanes];
        for k in 0..lanes {
            let a = c2[k] / celsius_to_kelvin(temps_c[k]);
            a0[k] = a;
            e0[k] = a.exp();
        }
    }

    /// Re-anchors the whole panel at once; `temps_c` covers every cell in
    /// row-major order (`rows × lanes`).
    ///
    /// # Panics
    ///
    /// Panics if `temps_c` does not cover every cell.
    pub fn anchor_all(&mut self, temps_c: &[f64]) {
        assert_eq!(temps_c.len(), self.rows * self.lanes, "anchor panel size");
        for (k, &t) in temps_c.iter().enumerate() {
            let a = self.c2[k] / celsius_to_kelvin(t);
            self.a0[k] = a;
            self.e0[k] = a.exp();
        }
    }

    /// Evaluates row `row`'s leakage currents at the given temperatures
    /// (°C, one per lane) into `out`, using the anchored exponential.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds or the slices do not cover every
    /// lane. The caller must have anchored the row (within
    /// [`LeakagePanel::REANCHOR_STEPS`] micro-steps) first.
    #[inline]
    pub fn currents_row_into(&self, row: usize, temps_c: &[f64], out: &mut [f64]) {
        assert!(row < self.rows, "panel row out of bounds");
        assert_eq!(temps_c.len(), self.lanes, "temperature row length");
        assert_eq!(out.len(), self.lanes, "output row length");
        let lanes = self.lanes;
        let offset = row * lanes;
        currents_span(
            &self.c1[offset..offset + lanes],
            &self.c2[offset..offset + lanes],
            &self.igate[offset..offset + lanes],
            &self.a0[offset..offset + lanes],
            &self.e0[offset..offset + lanes],
            temps_c,
            out,
        );
    }

    /// Evaluates the whole panel's leakage currents in one unit-stride pass:
    /// `temps_c` and `out` cover every cell in row-major order
    /// (`rows × lanes`). This is the batch engine's per-micro-step call — one
    /// long vector loop (through the SIMD arm selected by
    /// [`PanelKernel::active`]) instead of one short loop per domain row.
    ///
    /// # Panics
    ///
    /// Panics if the slices do not cover every cell.
    #[inline]
    pub fn currents_into(&self, temps_c: &[f64], out: &mut [f64]) {
        self.currents_into_with(PanelKernel::active(), temps_c, out);
    }

    /// [`LeakagePanel::currents_into`] through an explicit [`PanelKernel`]
    /// arm (testing/benching form; an unavailable kernel degrades to scalar).
    ///
    /// # Panics
    ///
    /// Panics if the slices do not cover every cell.
    #[inline]
    pub fn currents_into_with(&self, kernel: PanelKernel, temps_c: &[f64], out: &mut [f64]) {
        let cells = self.rows * self.lanes;
        assert_eq!(temps_c.len(), cells, "temperature panel size");
        assert_eq!(out.len(), cells, "output panel size");
        currents_span_with(
            kernel,
            &self.c1,
            &self.c2,
            &self.igate,
            &self.a0,
            &self.e0,
            temps_c,
            out,
        );
    }
}

/// The anchored leakage-current evaluation over one contiguous span (see
/// [`LeakagePanel`]); all slices have equal length.
#[inline(always)]
fn currents_span(
    c1: &[f64],
    c2: &[f64],
    igate: &[f64],
    a0: &[f64],
    e0: &[f64],
    temps_c: &[f64],
    out: &mut [f64],
) {
    currents_span_with(PanelKernel::active(), c1, c2, igate, a0, e0, temps_c, out);
}

/// [`currents_span`] through an explicit kernel arm: the vector arm (if
/// requested and available) covers the full-vector prefix, the scalar
/// [`leak_cell`] the tail. Every arm performs the same per-cell operation
/// sequence, so a cell's current is bit-identical regardless of arm or
/// position — see `numeric::simd` for the dispatch and `fma` contract.
#[allow(clippy::too_many_arguments)]
fn currents_span_with(
    kernel: PanelKernel,
    c1: &[f64],
    c2: &[f64],
    igate: &[f64],
    a0: &[f64],
    e0: &[f64],
    temps_c: &[f64],
    out: &mut [f64],
) {
    let len = out.len();
    #[cfg(debug_assertions)]
    for k in 0..len {
        debug_assert!(
            a0[k].is_finite() && e0[k].is_finite(),
            "leakage cell {k} evaluated with an invalid anchor"
        );
    }
    let kernel = if kernel.is_available() {
        kernel
    } else {
        PanelKernel::Scalar
    };
    let mut k = 0;
    match kernel {
        #[cfg(target_arch = "x86_64")]
        PanelKernel::Avx2Fma => {
            let vec_len = len - len % 4;
            if vec_len > 0 {
                // SAFETY: availability was just checked; all slices cover
                // `len >= vec_len` cells.
                unsafe { leak_avx2::span(c1, c2, igate, a0, e0, temps_c, out, vec_len) };
            }
            k = vec_len;
        }
        #[cfg(target_arch = "aarch64")]
        PanelKernel::Neon => {
            let vec_len = len - len % 2;
            if vec_len > 0 {
                // SAFETY: as above.
                unsafe { leak_neon::span(c1, c2, igate, a0, e0, temps_c, out, vec_len) };
            }
            k = vec_len;
        }
        _ => {}
    }
    while k < len {
        out[k] = leak_cell(c1[k], c2[k], igate[k], a0[k], e0[k], temps_c[k]);
        k += 1;
    }
}

/// One cell of the anchored leakage evaluation — the scalar reference the
/// vector arms mirror operation for operation.
#[inline(always)]
fn leak_cell(c1: f64, c2: f64, igate: f64, a0: f64, e0: f64, temp_c: f64) -> f64 {
    let t = celsius_to_kelvin(temp_c);
    let delta = c2 / t - a0;
    let e = e0 * exp_delta(delta);
    madd(c1 * t * t, e, igate)
}

/// `e^d` for a small drift `|d| ≲ 0.05` via a degree-7 polynomial (Estrin
/// form for instruction-level parallelism). The truncation error at
/// `|d| = 0.05` is `0.05^8/8! ≈ 1e-15` relative — below one ulp of the full
/// leakage expression. Accumulates through [`madd`] so the scalar and vector
/// evaluations fuse identically under the `fma` feature.
#[inline(always)]
fn exp_delta(d: f64) -> f64 {
    let d2 = d * d;
    let p01 = 1.0 + d;
    let p23 = madd(d, 1.0 / 6.0, 0.5);
    let p45 = madd(d, 1.0 / 120.0, 1.0 / 24.0);
    let p67 = madd(d, 1.0 / 5040.0, 1.0 / 720.0);
    madd(d2 * d2, madd(d2, p67, p45), madd(d2, p23, p01))
}

/// AVX2 arm of the leakage span: 4 cells per vector, operation order
/// identical to [`leak_cell`] per lane (divide → drift polynomial → fused
/// accumulate).
#[cfg(target_arch = "x86_64")]
mod leak_avx2 {
    use core::arch::x86_64::{
        __m256, __m256d, _mm256_add_pd, _mm256_add_ps, _mm256_div_pd, _mm256_div_ps,
        _mm256_loadu_pd, _mm256_loadu_ps, _mm256_mul_pd, _mm256_mul_ps, _mm256_set1_pd,
        _mm256_set1_ps, _mm256_storeu_pd, _mm256_storeu_ps, _mm256_sub_pd, _mm256_sub_ps,
    };
    #[cfg(feature = "fma")]
    use core::arch::x86_64::{_mm256_fmadd_pd, _mm256_fmadd_ps};

    /// `acc + a·x` per lane, rounding exactly like `numeric::simd::madd`.
    #[cfg_attr(not(feature = "fma"), target_feature(enable = "avx2"))]
    #[cfg_attr(feature = "fma", target_feature(enable = "avx2", enable = "fma"))]
    #[inline]
    unsafe fn vmadd(a: __m256d, x: __m256d, acc: __m256d) -> __m256d {
        #[cfg(not(feature = "fma"))]
        {
            _mm256_add_pd(acc, _mm256_mul_pd(a, x))
        }
        #[cfg(feature = "fma")]
        {
            _mm256_fmadd_pd(a, x, acc)
        }
    }

    /// The vector body of `currents_span_with` over cells `[0, vec_len)`
    /// (`vec_len` a multiple of 4).
    ///
    /// # Safety
    ///
    /// AVX2 (and FMA under the `fma` feature) must be available; every slice
    /// must cover at least `vec_len` cells.
    #[allow(clippy::too_many_arguments)]
    #[cfg_attr(not(feature = "fma"), target_feature(enable = "avx2"))]
    #[cfg_attr(feature = "fma", target_feature(enable = "avx2", enable = "fma"))]
    pub(super) unsafe fn span(
        c1: &[f64],
        c2: &[f64],
        igate: &[f64],
        a0: &[f64],
        e0: &[f64],
        temps_c: &[f64],
        out: &mut [f64],
        vec_len: usize,
    ) {
        // One vector's worth of the per-cell pipeline; the caller interleaves
        // two of these per pass so the divide latency chains overlap.
        #[cfg_attr(not(feature = "fma"), target_feature(enable = "avx2"))]
        #[cfg_attr(feature = "fma", target_feature(enable = "avx2", enable = "fma"))]
        #[inline]
        #[allow(clippy::too_many_arguments)]
        unsafe fn cell4(
            c1: &[f64],
            c2: &[f64],
            igate: &[f64],
            a0: &[f64],
            e0: &[f64],
            temps_c: &[f64],
            out: &mut [f64],
            k: usize,
        ) {
            let kelvin = _mm256_set1_pd(273.15);
            let one = _mm256_set1_pd(1.0);
            let c3 = _mm256_set1_pd(1.0 / 6.0);
            let half = _mm256_set1_pd(0.5);
            let c5 = _mm256_set1_pd(1.0 / 120.0);
            let c4 = _mm256_set1_pd(1.0 / 24.0);
            let c7 = _mm256_set1_pd(1.0 / 5040.0);
            let c6 = _mm256_set1_pd(1.0 / 720.0);
            let t = _mm256_add_pd(_mm256_loadu_pd(temps_c.as_ptr().add(k)), kelvin);
            let d = _mm256_sub_pd(
                _mm256_div_pd(_mm256_loadu_pd(c2.as_ptr().add(k)), t),
                _mm256_loadu_pd(a0.as_ptr().add(k)),
            );
            let d2 = _mm256_mul_pd(d, d);
            let p01 = _mm256_add_pd(one, d);
            let p23 = vmadd(d, c3, half);
            let p45 = vmadd(d, c5, c4);
            let p67 = vmadd(d, c7, c6);
            let expd = vmadd(
                _mm256_mul_pd(d2, d2),
                vmadd(d2, p67, p45),
                vmadd(d2, p23, p01),
            );
            let e = _mm256_mul_pd(_mm256_loadu_pd(e0.as_ptr().add(k)), expd);
            let pre = _mm256_mul_pd(_mm256_mul_pd(_mm256_loadu_pd(c1.as_ptr().add(k)), t), t);
            let i = vmadd(pre, e, _mm256_loadu_pd(igate.as_ptr().add(k)));
            _mm256_storeu_pd(out.as_mut_ptr().add(k), i);
        }

        let mut k = 0;
        while k + 8 <= vec_len {
            cell4(c1, c2, igate, a0, e0, temps_c, out, k);
            cell4(c1, c2, igate, a0, e0, temps_c, out, k + 4);
            k += 8;
        }
        while k < vec_len {
            cell4(c1, c2, igate, a0, e0, temps_c, out, k);
            k += 4;
        }
    }

    /// `acc + a·x` per f32 lane, rounding exactly like
    /// `numeric::simd::madd_f32`.
    #[cfg_attr(not(feature = "fma"), target_feature(enable = "avx2"))]
    #[cfg_attr(feature = "fma", target_feature(enable = "avx2", enable = "fma"))]
    #[inline]
    unsafe fn vmadd_f32(a: __m256, x: __m256, acc: __m256) -> __m256 {
        #[cfg(not(feature = "fma"))]
        {
            _mm256_add_ps(acc, _mm256_mul_ps(a, x))
        }
        #[cfg(feature = "fma")]
        {
            _mm256_fmadd_ps(a, x, acc)
        }
    }

    /// The f32 vector body of `currents_span_with_f32` over cells
    /// `[0, vec_len)` (`vec_len` a multiple of 8): 8 cells per vector with
    /// two divide chains in flight per pass, mirroring [`span`].
    ///
    /// # Safety
    ///
    /// AVX2 (and FMA under the `fma` feature) must be available; every slice
    /// must cover at least `vec_len` cells.
    #[allow(clippy::too_many_arguments)]
    #[cfg_attr(not(feature = "fma"), target_feature(enable = "avx2"))]
    #[cfg_attr(feature = "fma", target_feature(enable = "avx2", enable = "fma"))]
    pub(super) unsafe fn span_f32(
        c1: &[f32],
        c2: &[f32],
        igate: &[f32],
        a0: &[f32],
        e0: &[f32],
        temps_c: &[f32],
        out: &mut [f32],
        vec_len: usize,
    ) {
        // One vector's worth (8 cells) of the per-cell f32 pipeline,
        // operation order identical to `leak_cell_f32` per lane.
        #[cfg_attr(not(feature = "fma"), target_feature(enable = "avx2"))]
        #[cfg_attr(feature = "fma", target_feature(enable = "avx2", enable = "fma"))]
        #[inline]
        #[allow(clippy::too_many_arguments)]
        unsafe fn cell8(
            c1: &[f32],
            c2: &[f32],
            igate: &[f32],
            a0: &[f32],
            e0: &[f32],
            temps_c: &[f32],
            out: &mut [f32],
            k: usize,
        ) {
            let kelvin = _mm256_set1_ps(273.15);
            let one = _mm256_set1_ps(1.0);
            let c3 = _mm256_set1_ps(1.0 / 6.0);
            let half = _mm256_set1_ps(0.5);
            let c4 = _mm256_set1_ps(1.0 / 24.0);
            let t = _mm256_add_ps(_mm256_loadu_ps(temps_c.as_ptr().add(k)), kelvin);
            let d = _mm256_sub_ps(
                _mm256_div_ps(_mm256_loadu_ps(c2.as_ptr().add(k)), t),
                _mm256_loadu_ps(a0.as_ptr().add(k)),
            );
            let d2 = _mm256_mul_ps(d, d);
            let p01 = _mm256_add_ps(one, d);
            let p23 = vmadd_f32(d, c3, half);
            let expd = vmadd_f32(d2, vmadd_f32(d2, c4, p23), p01);
            let e = _mm256_mul_ps(_mm256_loadu_ps(e0.as_ptr().add(k)), expd);
            let pre = _mm256_mul_ps(_mm256_mul_ps(_mm256_loadu_ps(c1.as_ptr().add(k)), t), t);
            let i = vmadd_f32(pre, e, _mm256_loadu_ps(igate.as_ptr().add(k)));
            _mm256_storeu_ps(out.as_mut_ptr().add(k), i);
        }

        let mut k = 0;
        while k + 16 <= vec_len {
            cell8(c1, c2, igate, a0, e0, temps_c, out, k);
            cell8(c1, c2, igate, a0, e0, temps_c, out, k + 8);
            k += 16;
        }
        while k < vec_len {
            cell8(c1, c2, igate, a0, e0, temps_c, out, k);
            k += 8;
        }
    }

    /// Gathered f32 row span over cells `[0, vec_len)` (`vec_len` a multiple
    /// of 8): the temperature is reconstructed on the fly as `t0 + dx` — the
    /// same single f32 add a separate gather pass would perform — before the
    /// per-cell pipeline of [`span_f32`].
    ///
    /// # Safety
    ///
    /// AVX2 (and FMA under the `fma` feature) must be available; every slice
    /// must cover at least `vec_len` cells.
    #[allow(clippy::too_many_arguments)]
    #[cfg_attr(not(feature = "fma"), target_feature(enable = "avx2"))]
    #[cfg_attr(feature = "fma", target_feature(enable = "avx2", enable = "fma"))]
    pub(super) unsafe fn span_gathered_f32(
        c1: &[f32],
        c2: &[f32],
        igate: &[f32],
        a0: &[f32],
        e0: &[f32],
        t0: &[f32],
        dx: &[f32],
        out: &mut [f32],
        vec_len: usize,
    ) {
        // One vector's worth (8 cells), identical to `span_f32`'s `cell8`
        // except the temperature load is the two-panel sum.
        #[cfg_attr(not(feature = "fma"), target_feature(enable = "avx2"))]
        #[cfg_attr(feature = "fma", target_feature(enable = "avx2", enable = "fma"))]
        #[inline]
        #[allow(clippy::too_many_arguments)]
        unsafe fn cell8(
            c1: &[f32],
            c2: &[f32],
            igate: &[f32],
            a0: &[f32],
            e0: &[f32],
            t0: &[f32],
            dx: &[f32],
            out: &mut [f32],
            k: usize,
        ) {
            let kelvin = _mm256_set1_ps(273.15);
            let one = _mm256_set1_ps(1.0);
            let c3 = _mm256_set1_ps(1.0 / 6.0);
            let half = _mm256_set1_ps(0.5);
            let c4 = _mm256_set1_ps(1.0 / 24.0);
            let temp = _mm256_add_ps(
                _mm256_loadu_ps(t0.as_ptr().add(k)),
                _mm256_loadu_ps(dx.as_ptr().add(k)),
            );
            let t = _mm256_add_ps(temp, kelvin);
            let d = _mm256_sub_ps(
                _mm256_div_ps(_mm256_loadu_ps(c2.as_ptr().add(k)), t),
                _mm256_loadu_ps(a0.as_ptr().add(k)),
            );
            let d2 = _mm256_mul_ps(d, d);
            let p01 = _mm256_add_ps(one, d);
            let p23 = vmadd_f32(d, c3, half);
            let expd = vmadd_f32(d2, vmadd_f32(d2, c4, p23), p01);
            let e = _mm256_mul_ps(_mm256_loadu_ps(e0.as_ptr().add(k)), expd);
            let pre = _mm256_mul_ps(_mm256_mul_ps(_mm256_loadu_ps(c1.as_ptr().add(k)), t), t);
            let i = vmadd_f32(pre, e, _mm256_loadu_ps(igate.as_ptr().add(k)));
            _mm256_storeu_ps(out.as_mut_ptr().add(k), i);
        }

        let mut k = 0;
        while k + 16 <= vec_len {
            cell8(c1, c2, igate, a0, e0, t0, dx, out, k);
            cell8(c1, c2, igate, a0, e0, t0, dx, out, k + 8);
            k += 16;
        }
        while k < vec_len {
            cell8(c1, c2, igate, a0, e0, t0, dx, out, k);
            k += 8;
        }
    }
}

/// NEON arm of the leakage span: 2 cells per vector, operation order
/// identical to [`leak_cell`] per lane.
#[cfg(target_arch = "aarch64")]
mod leak_neon {
    use core::arch::aarch64::{
        float32x4_t, float64x2_t, vaddq_f32, vaddq_f64, vdivq_f32, vdivq_f64, vdupq_n_f32,
        vdupq_n_f64, vld1q_f32, vld1q_f64, vmulq_f32, vmulq_f64, vst1q_f32, vst1q_f64, vsubq_f32,
        vsubq_f64,
    };
    #[cfg(feature = "fma")]
    use core::arch::aarch64::{vfmaq_f32, vfmaq_f64};

    /// `acc + a·x` per lane, rounding exactly like `numeric::simd::madd`.
    #[target_feature(enable = "neon")]
    #[inline]
    unsafe fn vmadd(a: float64x2_t, x: float64x2_t, acc: float64x2_t) -> float64x2_t {
        #[cfg(not(feature = "fma"))]
        {
            vaddq_f64(acc, vmulq_f64(a, x))
        }
        #[cfg(feature = "fma")]
        {
            vfmaq_f64(acc, a, x)
        }
    }

    /// The vector body of `currents_span_with` over cells `[0, vec_len)`
    /// (`vec_len` a multiple of 2).
    ///
    /// # Safety
    ///
    /// NEON must be available; every slice must cover at least `vec_len`
    /// cells.
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn span(
        c1: &[f64],
        c2: &[f64],
        igate: &[f64],
        a0: &[f64],
        e0: &[f64],
        temps_c: &[f64],
        out: &mut [f64],
        vec_len: usize,
    ) {
        let kelvin = vdupq_n_f64(273.15);
        let one = vdupq_n_f64(1.0);
        let c3 = vdupq_n_f64(1.0 / 6.0);
        let half = vdupq_n_f64(0.5);
        let c5 = vdupq_n_f64(1.0 / 120.0);
        let c4 = vdupq_n_f64(1.0 / 24.0);
        let c7 = vdupq_n_f64(1.0 / 5040.0);
        let c6 = vdupq_n_f64(1.0 / 720.0);
        let mut k = 0;
        while k < vec_len {
            let t = vaddq_f64(vld1q_f64(temps_c.as_ptr().add(k)), kelvin);
            let d = vsubq_f64(
                vdivq_f64(vld1q_f64(c2.as_ptr().add(k)), t),
                vld1q_f64(a0.as_ptr().add(k)),
            );
            let d2 = vmulq_f64(d, d);
            let p01 = vaddq_f64(one, d);
            let p23 = vmadd(d, c3, half);
            let p45 = vmadd(d, c5, c4);
            let p67 = vmadd(d, c7, c6);
            let expd = vmadd(vmulq_f64(d2, d2), vmadd(d2, p67, p45), vmadd(d2, p23, p01));
            let e = vmulq_f64(vld1q_f64(e0.as_ptr().add(k)), expd);
            let pre = vmulq_f64(vmulq_f64(vld1q_f64(c1.as_ptr().add(k)), t), t);
            let i = vmadd(pre, e, vld1q_f64(igate.as_ptr().add(k)));
            vst1q_f64(out.as_mut_ptr().add(k), i);
            k += 2;
        }
    }

    /// `acc + a·x` per f32 lane, rounding exactly like
    /// `numeric::simd::madd_f32`.
    #[target_feature(enable = "neon")]
    #[inline]
    unsafe fn vmadd_f32(a: float32x4_t, x: float32x4_t, acc: float32x4_t) -> float32x4_t {
        #[cfg(not(feature = "fma"))]
        {
            vaddq_f32(acc, vmulq_f32(a, x))
        }
        #[cfg(feature = "fma")]
        {
            vfmaq_f32(acc, a, x)
        }
    }

    /// The f32 vector body of `currents_span_with_f32` over cells
    /// `[0, vec_len)` (`vec_len` a multiple of 4): 4 cells per vector,
    /// operation order identical to `leak_cell_f32` per lane.
    ///
    /// # Safety
    ///
    /// NEON must be available; every slice must cover at least `vec_len`
    /// cells.
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn span_f32(
        c1: &[f32],
        c2: &[f32],
        igate: &[f32],
        a0: &[f32],
        e0: &[f32],
        temps_c: &[f32],
        out: &mut [f32],
        vec_len: usize,
    ) {
        let kelvin = vdupq_n_f32(273.15);
        let one = vdupq_n_f32(1.0);
        let c3 = vdupq_n_f32(1.0 / 6.0);
        let half = vdupq_n_f32(0.5);
        let c4 = vdupq_n_f32(1.0 / 24.0);
        let mut k = 0;
        while k < vec_len {
            let t = vaddq_f32(vld1q_f32(temps_c.as_ptr().add(k)), kelvin);
            let d = vsubq_f32(
                vdivq_f32(vld1q_f32(c2.as_ptr().add(k)), t),
                vld1q_f32(a0.as_ptr().add(k)),
            );
            let d2 = vmulq_f32(d, d);
            let p01 = vaddq_f32(one, d);
            let p23 = vmadd_f32(d, c3, half);
            let expd = vmadd_f32(d2, vmadd_f32(d2, c4, p23), p01);
            let e = vmulq_f32(vld1q_f32(e0.as_ptr().add(k)), expd);
            let pre = vmulq_f32(vmulq_f32(vld1q_f32(c1.as_ptr().add(k)), t), t);
            let i = vmadd_f32(pre, e, vld1q_f32(igate.as_ptr().add(k)));
            vst1q_f32(out.as_mut_ptr().add(k), i);
            k += 4;
        }
    }

    /// Gathered f32 row span over cells `[0, vec_len)` (`vec_len` a multiple
    /// of 4): the temperature is reconstructed on the fly as `t0 + dx` — the
    /// same single f32 add a separate gather pass would perform — before the
    /// per-cell pipeline of [`span_f32`].
    ///
    /// # Safety
    ///
    /// NEON must be available; every slice must cover at least `vec_len`
    /// cells.
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn span_gathered_f32(
        c1: &[f32],
        c2: &[f32],
        igate: &[f32],
        a0: &[f32],
        e0: &[f32],
        t0: &[f32],
        dx: &[f32],
        out: &mut [f32],
        vec_len: usize,
    ) {
        let kelvin = vdupq_n_f32(273.15);
        let one = vdupq_n_f32(1.0);
        let c3 = vdupq_n_f32(1.0 / 6.0);
        let half = vdupq_n_f32(0.5);
        let c4 = vdupq_n_f32(1.0 / 24.0);
        let mut k = 0;
        while k < vec_len {
            let temp = vaddq_f32(vld1q_f32(t0.as_ptr().add(k)), vld1q_f32(dx.as_ptr().add(k)));
            let t = vaddq_f32(temp, kelvin);
            let d = vsubq_f32(
                vdivq_f32(vld1q_f32(c2.as_ptr().add(k)), t),
                vld1q_f32(a0.as_ptr().add(k)),
            );
            let d2 = vmulq_f32(d, d);
            let p01 = vaddq_f32(one, d);
            let p23 = vmadd_f32(d, c3, half);
            let expd = vmadd_f32(d2, vmadd_f32(d2, c4, p23), p01);
            let e = vmulq_f32(vld1q_f32(e0.as_ptr().add(k)), expd);
            let pre = vmulq_f32(vmulq_f32(vld1q_f32(c1.as_ptr().add(k)), t), t);
            let i = vmadd_f32(pre, e, vld1q_f32(igate.as_ptr().add(k)));
            vst1q_f32(out.as_mut_ptr().add(k), i);
            k += 4;
        }
    }
}

/// Single-precision variant of [`LeakagePanel`] for the mixed-precision
/// batch engine: f32 storage and f32 inter-anchor spans, with the anchor
/// itself — the one numerically delicate step — still computed in f64.
///
/// Each re-anchor evaluates `a0 = c2/T` in f64 (using an f64 copy of `c2`
/// kept alongside the f32 coefficients) and advances an f64 shadow of the
/// anchor exponential incrementally — `e0 ·= e^Δa` through the degree-7
/// drift polynomial, with a true `libm` `exp` fallback for large anchor
/// moves (see [`LeakagePanelF32::anchor_all`]) — then demotes the results
/// once, so f32 rounding never compounds through the exponential. Between
/// anchors the drift `|a − a0|` stays below ~0.1 over
/// the doubled horizon (see [`LeakagePanelF32::REANCHOR_STEPS`]), where a
/// *degree-4* polynomial has truncation error `0.1⁵/5! ≈ 8.3e-8` — below
/// f32 epsilon (~1.2e-7), which is the real precision floor of the span.
/// Relative current error versus the f64 panel is therefore a few f32 ulps,
/// well inside the mixed-precision engine's ≤ 1e-3 °C trajectory budget.
///
/// The AVX2 arm evaluates 8 cells per vector (twice the f64 arm's 4) and
/// the NEON arm 4; every arm performs the same per-cell f32 operation
/// sequence as the scalar reference, so arms are bit-identical to each
/// other exactly like the f64 panel's.
#[derive(Debug, Clone, PartialEq)]
pub struct LeakagePanelF32 {
    rows: usize,
    lanes: usize,
    c1: Vec<f32>,
    c2: Vec<f32>,
    igate: Vec<f32>,
    /// f64 copy of `c2` used only at re-anchor time, so the anchor argument
    /// is exact.
    c2_anchor: Vec<f64>,
    /// Anchor argument `a0 = c2 / T_anchor` per cell, demoted from f64.
    a0: Vec<f32>,
    /// Anchor exponential `e^(a0)` per cell, demoted from f64 `libm` `exp`.
    e0: Vec<f32>,
    /// f64 shadow of `a0`, kept so re-anchoring can measure the exact drift
    /// since the previous anchor.
    a0_anchor: Vec<f64>,
    /// f64 shadow of `e0`, maintained incrementally across re-anchors
    /// (`e0 ·= e^Δa` via the f64 drift polynomial) so the `libm` exponential
    /// is only paid when a cell's anchor moves far.
    e0_anchor: Vec<f64>,
}

impl LeakagePanelF32 {
    /// Anchor validity horizon — twice the f64 panel's, because the f32 span
    /// has precision to spare: over 32 micro-steps the drift stays
    /// `|a − a0| ≲ 0.1` (double the f64 panel's per-16-step budget), where
    /// the degree-4 polynomial's truncation error `0.1⁵/5! ≈ 8.3e-8` is
    /// still below f32 epsilon (~1.2e-7) — the span's precision floor. The
    /// f64 anchor (a `libm` exponential per cell) is the panel's costliest
    /// amortised step, so doubling the horizon halves it.
    pub const REANCHOR_STEPS: usize = 2 * LeakagePanel::REANCHOR_STEPS;

    /// Creates a `rows × lanes` panel with every cell set to `model`,
    /// anchored (in f64, then demoted) at `anchor_temp_c`. See
    /// [`LeakagePanel::filled`] for the always-anchored rationale.
    ///
    /// # Panics
    ///
    /// Panics if `rows` or `lanes` is zero or `anchor_temp_c` is not finite.
    pub fn filled(rows: usize, lanes: usize, model: &LeakageModel, anchor_temp_c: f64) -> Self {
        assert!(rows > 0 && lanes > 0, "panel dimensions must be non-zero");
        assert!(
            anchor_temp_c.is_finite(),
            "anchor temperature must be finite"
        );
        let n = rows * lanes;
        let a = model.params.c2 / celsius_to_kelvin(anchor_temp_c);
        LeakagePanelF32 {
            rows,
            lanes,
            c1: vec![model.params.c1 as f32; n],
            c2: vec![model.params.c2 as f32; n],
            igate: vec![model.params.igate_a as f32; n],
            c2_anchor: vec![model.params.c2; n],
            a0: vec![a as f32; n],
            e0: vec![a.exp() as f32; n],
            a0_anchor: vec![a; n],
            e0_anchor: vec![a.exp(); n],
        }
    }

    /// Number of domain rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of scenario lanes.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Sets the leakage model of cell `(row, lane)` and immediately anchors
    /// it at `anchor_temp_c` (f64 anchor, demoted). See
    /// [`LeakagePanel::set_model`] for the mid-sweep admission rationale.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `lane` is out of bounds or `anchor_temp_c` is not
    /// finite.
    pub fn set_model(&mut self, row: usize, lane: usize, model: &LeakageModel, anchor_temp_c: f64) {
        assert!(
            row < self.rows && lane < self.lanes,
            "panel index out of bounds"
        );
        assert!(
            anchor_temp_c.is_finite(),
            "anchor temperature must be finite"
        );
        let k = row * self.lanes + lane;
        self.c1[k] = model.params.c1 as f32;
        self.c2[k] = model.params.c2 as f32;
        self.igate[k] = model.params.igate_a as f32;
        self.c2_anchor[k] = model.params.c2;
        let a = model.params.c2 / celsius_to_kelvin(anchor_temp_c);
        self.a0[k] = a as f32;
        self.e0[k] = a.exp() as f32;
        self.a0_anchor[k] = a;
        self.e0_anchor[k] = a.exp();
    }

    /// Re-anchors the whole panel at once; `temps_c` covers every cell in
    /// row-major order (`rows × lanes`). The anchor argument is computed in
    /// f64 (promoting each f32 temperature) and the f64 anchor exponential
    /// is advanced *incrementally*: `e0 ·= e^Δa` with the drift `Δa` since
    /// the previous anchor evaluated through the degree-7 f64 drift
    /// polynomial (truncation ≤ `0.25⁸/8! ≈ 3.8e-10` relative at the
    /// fallback threshold, and the product is carried in f64, so lifetime
    /// accumulation stays orders of magnitude below f32 epsilon). A cell
    /// whose anchor moved beyond the polynomial's range (`|Δa| > 0.25`,
    /// e.g. across a large ambient step) falls back to a true `libm`
    /// exponential — correct at any drift, just slower.
    ///
    /// # Panics
    ///
    /// Panics if `temps_c` does not cover every cell.
    pub fn anchor_all(&mut self, temps_c: &[f32]) {
        assert_eq!(temps_c.len(), self.rows * self.lanes, "anchor panel size");
        for (k, &t) in temps_c.iter().enumerate() {
            let a = self.c2_anchor[k] / celsius_to_kelvin(f64::from(t));
            let d = a - self.a0_anchor[k];
            self.e0_anchor[k] = if d.abs() <= 0.25 {
                self.e0_anchor[k] * exp_delta(d)
            } else {
                a.exp()
            };
            self.a0_anchor[k] = a;
            self.a0[k] = a as f32;
            self.e0[k] = self.e0_anchor[k] as f32;
        }
    }

    /// Evaluates the whole panel's leakage currents in one unit-stride f32
    /// pass; `temps_c` and `out` cover every cell in row-major order. The
    /// mixed-precision engine's per-micro-step call.
    ///
    /// # Panics
    ///
    /// Panics if the slices do not cover every cell.
    #[inline]
    pub fn currents_into(&self, temps_c: &[f32], out: &mut [f32]) {
        self.currents_into_with(PanelKernel::active(), temps_c, out);
    }

    /// [`LeakagePanelF32::currents_into`] through an explicit [`PanelKernel`]
    /// arm (testing/benching form; an unavailable kernel degrades to scalar).
    ///
    /// # Panics
    ///
    /// Panics if the slices do not cover every cell.
    #[inline]
    pub fn currents_into_with(&self, kernel: PanelKernel, temps_c: &[f32], out: &mut [f32]) {
        let cells = self.rows * self.lanes;
        assert_eq!(temps_c.len(), cells, "temperature panel size");
        assert_eq!(out.len(), cells, "output panel size");
        currents_span_with_f32(
            kernel,
            &self.c1,
            &self.c2,
            &self.igate,
            &self.a0,
            &self.e0,
            temps_c,
            out,
        );
    }

    /// Evaluates every cell's leakage current with the temperature
    /// reconstructed on the fly as `t0[row_map[r]·lanes + l] + dx[…]`
    /// instead of reading a pre-gathered panel — the mixed-precision
    /// engine's non-anchor micro-step call, which skips materialising the
    /// intermediate temperature panel entirely. The reconstruction performs
    /// the same single f32 add a separate gather pass would, so the result
    /// is bit-identical to gathering into a panel and calling
    /// [`LeakagePanelF32::currents_into`].
    ///
    /// `t0` and `dx` are node-major panels of `lanes` columns (baseline and
    /// deviation temperatures, summing to °C); `row_map[r]` names the node
    /// whose temperature feeds leakage row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` differs from the panel's, `row_map` does not name a
    /// node per row, `out` does not cover every cell, or a mapped node row
    /// lies outside `t0`/`dx`.
    #[inline]
    pub fn currents_into_gathered(
        &self,
        t0: &[f32],
        dx: &[f32],
        lanes: usize,
        row_map: &[usize],
        out: &mut [f32],
    ) {
        self.currents_into_gathered_with(PanelKernel::active(), t0, dx, lanes, row_map, out);
    }

    /// [`LeakagePanelF32::currents_into_gathered`] through an explicit
    /// [`PanelKernel`] arm (testing/benching form; an unavailable kernel
    /// degrades to scalar).
    ///
    /// # Panics
    ///
    /// As [`LeakagePanelF32::currents_into_gathered`].
    #[allow(clippy::too_many_arguments)]
    pub fn currents_into_gathered_with(
        &self,
        kernel: PanelKernel,
        t0: &[f32],
        dx: &[f32],
        lanes: usize,
        row_map: &[usize],
        out: &mut [f32],
    ) {
        assert_eq!(lanes, self.lanes, "lane count mismatch");
        assert_eq!(row_map.len(), self.rows, "row map must name a node per row");
        assert_eq!(out.len(), self.rows * self.lanes, "output panel size");
        #[cfg(debug_assertions)]
        for k in 0..out.len() {
            debug_assert!(
                self.a0[k].is_finite() && self.e0[k].is_finite(),
                "leakage cell {k} evaluated with an invalid anchor"
            );
        }
        let kernel = if kernel.is_available() {
            kernel
        } else {
            PanelKernel::Scalar
        };
        for (r, &node) in row_map.iter().enumerate() {
            let start = node * lanes;
            let tr = &t0[start..start + lanes];
            let xr = &dx[start..start + lanes];
            let pr = r * lanes;
            let or = &mut out[pr..pr + lanes];
            let c1 = &self.c1[pr..pr + lanes];
            let c2 = &self.c2[pr..pr + lanes];
            let igate = &self.igate[pr..pr + lanes];
            let a0 = &self.a0[pr..pr + lanes];
            let e0 = &self.e0[pr..pr + lanes];
            let mut k = 0;
            match kernel {
                #[cfg(target_arch = "x86_64")]
                PanelKernel::Avx2Fma => {
                    let vec_len = lanes - lanes % 8;
                    if vec_len > 0 {
                        // SAFETY: availability was just checked; all slices
                        // cover `lanes >= vec_len` cells.
                        unsafe {
                            leak_avx2::span_gathered_f32(c1, c2, igate, a0, e0, tr, xr, or, vec_len)
                        };
                    }
                    k = vec_len;
                }
                #[cfg(target_arch = "aarch64")]
                PanelKernel::Neon => {
                    let vec_len = lanes - lanes % 4;
                    if vec_len > 0 {
                        // SAFETY: as above.
                        unsafe {
                            leak_neon::span_gathered_f32(c1, c2, igate, a0, e0, tr, xr, or, vec_len)
                        };
                    }
                    k = vec_len;
                }
                _ => {}
            }
            while k < lanes {
                or[k] = leak_cell_f32(c1[k], c2[k], igate[k], a0[k], e0[k], tr[k] + xr[k]);
                k += 1;
            }
        }
    }
}

/// f32 twin of [`currents_span_with`]: the vector arm (if requested and
/// available) covers the full-vector prefix at f32 width — 8 cells per AVX2
/// vector, 4 per NEON vector — and the scalar [`leak_cell_f32`] the tail.
#[allow(clippy::too_many_arguments)]
fn currents_span_with_f32(
    kernel: PanelKernel,
    c1: &[f32],
    c2: &[f32],
    igate: &[f32],
    a0: &[f32],
    e0: &[f32],
    temps_c: &[f32],
    out: &mut [f32],
) {
    let len = out.len();
    #[cfg(debug_assertions)]
    for k in 0..len {
        debug_assert!(
            a0[k].is_finite() && e0[k].is_finite(),
            "leakage cell {k} evaluated with an invalid anchor"
        );
    }
    let kernel = if kernel.is_available() {
        kernel
    } else {
        PanelKernel::Scalar
    };
    let mut k = 0;
    match kernel {
        #[cfg(target_arch = "x86_64")]
        PanelKernel::Avx2Fma => {
            let vec_len = len - len % 8;
            if vec_len > 0 {
                // SAFETY: availability was just checked; all slices cover
                // `len >= vec_len` cells.
                unsafe { leak_avx2::span_f32(c1, c2, igate, a0, e0, temps_c, out, vec_len) };
            }
            k = vec_len;
        }
        #[cfg(target_arch = "aarch64")]
        PanelKernel::Neon => {
            let vec_len = len - len % 4;
            if vec_len > 0 {
                // SAFETY: as above.
                unsafe { leak_neon::span_f32(c1, c2, igate, a0, e0, temps_c, out, vec_len) };
            }
            k = vec_len;
        }
        _ => {}
    }
    while k < len {
        out[k] = leak_cell_f32(c1[k], c2[k], igate[k], a0[k], e0[k], temps_c[k]);
        k += 1;
    }
}

/// One cell of the f32 anchored leakage evaluation — the scalar reference
/// the f32 vector arms mirror operation for operation.
#[inline(always)]
fn leak_cell_f32(c1: f32, c2: f32, igate: f32, a0: f32, e0: f32, temp_c: f32) -> f32 {
    let t = temp_c + 273.15f32;
    let delta = c2 / t - a0;
    let e = e0 * exp_delta_f32(delta);
    madd_f32(c1 * t * t, e, igate)
}

/// `e^d` for a small drift `|d| ≲ 0.1` at f32 precision via a degree-4
/// polynomial: the truncation error `0.1⁵/5! ≈ 8.3e-8` stays below f32
/// epsilon even at the doubled f32 re-anchor horizon, so the extra terms of
/// the f64 panel's degree-7 form would only burn latency. Accumulates
/// through [`madd_f32`] so scalar and vector evaluations fuse identically
/// under the `fma` feature.
#[inline(always)]
fn exp_delta_f32(d: f32) -> f32 {
    let d2 = d * d;
    let p01 = 1.0 + d;
    let p23 = madd_f32(d, 1.0 / 6.0, 0.5);
    madd_f32(d2, madd_f32(d2, 1.0 / 24.0, p23), p01)
}

/// Temperature-dependent leakage model for one power domain.
///
/// # Example
///
/// ```
/// use power_model::LeakageModel;
/// use soc_model::Voltage;
///
/// let model = LeakageModel::exynos5410_big();
/// let cool = model.power_w(Voltage::from_volts(1.2), 40.0);
/// let hot = model.power_w(Voltage::from_volts(1.2), 80.0);
/// assert!(hot > 2.5 * cool, "leakage grows steeply with temperature");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LeakageModel {
    params: LeakageParams,
}

impl LeakageModel {
    /// Creates a leakage model from explicit parameters.
    pub fn new(params: LeakageParams) -> Self {
        LeakageModel { params }
    }

    /// Characterised model of the big cluster.
    pub fn exynos5410_big() -> Self {
        LeakageModel::new(LeakageParams::exynos5410_big())
    }

    /// Characterised model of the little cluster.
    pub fn exynos5410_little() -> Self {
        LeakageModel::new(LeakageParams::exynos5410_little())
    }

    /// Characterised model of the GPU.
    pub fn exynos5410_gpu() -> Self {
        LeakageModel::new(LeakageParams::exynos5410_gpu())
    }

    /// Characterised model of the memory domain.
    pub fn exynos5410_memory() -> Self {
        LeakageModel::new(LeakageParams::exynos5410_memory())
    }

    /// The model parameters.
    pub fn params(&self) -> LeakageParams {
        self.params
    }

    /// Leakage current at the given die temperature, in amperes.
    #[inline]
    pub fn current_a(&self, temp_c: f64) -> f64 {
        let t = celsius_to_kelvin(temp_c);
        self.params.c1 * t * t * (self.params.c2 / t).exp() + self.params.igate_a
    }

    /// Leakage power at the given supply voltage and die temperature, in watts.
    pub fn power_w(&self, voltage: Voltage, temp_c: f64) -> f64 {
        voltage.volts() * self.current_a(temp_c)
    }

    /// Fits the leakage parameters to furnace measurements.
    ///
    /// Each sample pairs a die temperature (°C) with the measured *total*
    /// power (W) of the domain while a light workload keeps the dynamic power
    /// constant at `dynamic_w` (the paper's central assumption: "dynamic power
    /// shows negligible variation with temperature"). The dynamic component is
    /// subtracted, the remainder is divided by the supply voltage, and the
    /// condensed leakage-current equation is fitted to the result with
    /// nonlinear least squares.
    ///
    /// # Errors
    ///
    /// * [`PowerError::InsufficientData`] with fewer than four distinct
    ///   temperature points.
    /// * [`PowerError::InvalidArgument`] for a non-positive supply voltage or
    ///   negative dynamic power.
    /// * [`PowerError::FitFailed`] if the nonlinear fit does not converge or
    ///   produces non-physical (negative-leakage) parameters.
    pub fn fit_from_furnace(
        samples: &[(f64, f64)],
        supply: Voltage,
        dynamic_w: f64,
    ) -> Result<Self, PowerError> {
        if samples.len() < 4 {
            return Err(PowerError::InsufficientData {
                required: 4,
                provided: samples.len(),
            });
        }
        if supply.volts() <= 0.0 {
            return Err(PowerError::InvalidArgument(
                "supply voltage must be positive",
            ));
        }
        if dynamic_w < 0.0 {
            return Err(PowerError::InvalidArgument(
                "characterisation dynamic power must be non-negative",
            ));
        }
        let temps: Vec<f64> = samples.iter().map(|(t, _)| *t).collect();
        let v = supply.volts();
        // Leakage current implied by each measurement.
        let currents: Vec<f64> = samples
            .iter()
            .map(|(_, p)| ((p - dynamic_w) / v).max(0.0))
            .collect();

        let i_min = currents.iter().cloned().fold(f64::INFINITY, f64::min);
        let initial = Vector::from_slice(&[0.005, -2500.0, (0.3 * i_min).max(1e-4)]);

        let report = levenberg_marquardt(&initial, &FitOptions::default(), |p| {
            Vector::from_iter(temps.iter().zip(&currents).map(|(&t_c, &i_meas)| {
                let t = celsius_to_kelvin(t_c);
                p[0] * t * t * (p[1] / t).exp() + p[2] - i_meas
            }))
        })
        .map_err(|e| PowerError::FitFailed(e.to_string()))?;

        let fitted = LeakageParams {
            c1: report.parameters[0],
            c2: report.parameters[1],
            igate_a: report.parameters[2],
        };
        let model = LeakageModel::new(fitted);

        // Sanity: the fitted model must predict non-negative, finite leakage
        // over the characterised range.
        for &t in &temps {
            let i = model.current_a(t);
            if !i.is_finite() || i < 0.0 {
                return Err(PowerError::FitFailed(format!(
                    "fitted leakage current is non-physical at {t} degC: {i}"
                )));
            }
        }
        Ok(model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// In the default build the panel reproduces [`LeakageModel::current_a`]
    /// bit for bit at the anchor. Under the `fma` feature the panel's final
    /// accumulate fuses while `current_a` (libm form) does not, so the
    /// contract relaxes to a few ulps.
    fn assert_current_matches(got: f64, want: f64, ctx: &str) {
        #[cfg(not(feature = "fma"))]
        assert_eq!(got, want, "{ctx}");
        #[cfg(feature = "fma")]
        {
            let ulps = (got.to_bits() as i64 - want.to_bits() as i64).abs();
            assert!(ulps <= 4, "{ctx}: {got} vs {want} ({ulps} ulps)");
        }
    }

    #[test]
    fn currents_batch_is_bit_identical_to_scalar() {
        let model = LeakageModel::exynos5410_big();
        let temps = [41.25, 55.5, 68.875, 83.0625];
        let batched = currents_batch([&model; 4], temps);
        for k in 0..4 {
            assert_eq!(batched[k], model.current_a(temps[k]), "lane {k}");
        }
    }

    #[test]
    fn leakage_panel_matches_scalar_at_anchor() {
        // At the anchor temperature the polynomial drift factor is exactly 1,
        // so the panel reproduces `current_a` bit for bit.
        let big = LeakageModel::exynos5410_big();
        let gpu = LeakageModel::exynos5410_gpu();
        let mut panel = LeakagePanel::filled(2, 3, &big, 52.0);
        for lane in 0..3 {
            panel.set_model(1, lane, &gpu, 52.0);
        }
        let temps = [41.5, 63.25, 80.0];
        let mut out = [0.0; 3];
        panel.anchor_row(0, &temps);
        panel.anchor_row(1, &temps);
        panel.currents_row_into(0, &temps, &mut out);
        for (k, &t) in temps.iter().enumerate() {
            assert_current_matches(out[k], big.current_a(t), &format!("big lane {k}"));
        }
        panel.currents_row_into(1, &temps, &mut out);
        for (k, &t) in temps.iter().enumerate() {
            assert_current_matches(out[k], gpu.current_a(t), &format!("gpu lane {k}"));
        }
    }

    #[test]
    fn leakage_panel_tracks_scalar_through_drift() {
        // Between re-anchors the temperatures drift; the anchored polynomial
        // must stay within floating-point rounding of the scalar model over
        // the documented drift budget.
        let model = LeakageModel::exynos5410_big();
        let mut panel = LeakagePanel::filled(1, 4, &model, 45.0);
        let anchor = [45.0, 55.0, 70.0, 85.0];
        panel.anchor_row(0, &anchor);
        let mut out = [0.0; 4];
        for step in 0..=LeakagePanel::REANCHOR_STEPS {
            // Worst-case plant drift: ~0.06 K per micro-step.
            let temps: [f64; 4] = std::array::from_fn(|k| anchor[k] + 0.06 * step as f64);
            panel.currents_row_into(0, &temps, &mut out);
            for (k, &t) in temps.iter().enumerate() {
                let exact = model.current_a(t);
                let rel = ((out[k] - exact) / exact).abs();
                assert!(
                    rel < 5e-15,
                    "step {step} lane {k}: rel error {rel:.3e} ({} vs {exact})",
                    out[k]
                );
            }
        }
    }

    #[test]
    fn leakage_panel_is_anchored_from_construction() {
        // Regression for the NaN-until-first-anchor footgun: a freshly built
        // panel must be evaluable immediately, and at the construction anchor
        // temperature it must reproduce `current_a` bit for bit.
        let model = LeakageModel::exynos5410_big();
        let panel = LeakagePanel::filled(3, 2, &model, 52.0);
        let temps = [52.0; 6];
        let mut out = [0.0; 6];
        panel.currents_into(&temps, &mut out);
        for (k, &i) in out.iter().enumerate() {
            assert!(i.is_finite(), "cell {k} must be finite without anchoring");
            assert_current_matches(i, model.current_a(52.0), &format!("cell {k}"));
        }
    }

    #[test]
    fn set_model_mid_run_never_reads_unanchored_exponential() {
        // A lane admitted into a running sweep swaps its models mid-flight,
        // between scheduled re-anchors. The swapped cell must evaluate to the
        // new model's exact current straight away — no NaN, no stale-anchor
        // drift from the old model.
        let big = LeakageModel::exynos5410_big();
        let gpu = LeakageModel::exynos5410_gpu();
        let mut panel = LeakagePanel::filled(1, 3, &big, 48.0);
        let mut out = [0.0; 3];
        // Drift the running lanes away from the anchor, as a sweep would.
        panel.currents_row_into(0, &[48.3, 48.3, 48.3], &mut out);

        // Admit a new scenario into lane 1 at a different temperature.
        panel.set_model(0, 1, &gpu, 61.0);
        panel.currents_row_into(0, &[48.3, 61.0, 48.3], &mut out);
        assert!(out.iter().all(|i| i.is_finite()));
        assert_current_matches(out[1], gpu.current_a(61.0), "admitted lane is exact");
        // Neighbouring lanes keep tracking the old model within drift budget.
        let exact = big.current_a(48.3);
        for &lane in &[0usize, 2] {
            let rel = ((out[lane] - exact) / exact).abs();
            assert!(rel < 5e-15, "lane {lane} rel error {rel:.3e}");
        }
    }

    #[test]
    fn currents_kernel_arms_are_bit_identical() {
        // All dispatch arms perform the same per-cell operation sequence, so
        // they must agree to the bit in both the default and `fma` builds —
        // including at awkward span lengths that exercise the vector tail.
        let big = LeakageModel::exynos5410_big();
        let gpu = LeakageModel::exynos5410_gpu();
        for lanes in [1, 2, 3, 4, 5, 7, 8, 13] {
            let mut panel = LeakagePanel::filled(3, lanes, &big, 48.0);
            for lane in 0..lanes {
                panel.set_model(2, lane, &gpu, 48.0 + lane as f64);
            }
            let cells = 3 * lanes;
            let temps: Vec<f64> = (0..cells).map(|k| 48.0 + (k as f64) * 0.013).collect();
            let mut scalar = vec![0.0; cells];
            panel.currents_into_with(PanelKernel::Scalar, &temps, &mut scalar);
            for kernel in [PanelKernel::Avx2Fma, PanelKernel::Neon] {
                if !kernel.is_available() {
                    continue;
                }
                let mut wide = vec![0.0; cells];
                panel.currents_into_with(kernel, &temps, &mut wide);
                for (k, (s, w)) in scalar.iter().zip(&wide).enumerate() {
                    assert_eq!(
                        s.to_bits(),
                        w.to_bits(),
                        "kernel {kernel:?} lanes {lanes} cell {k}"
                    );
                }
            }
        }
    }

    #[test]
    fn f32_panel_tracks_the_f64_oracle_through_drift() {
        // The f32 panel must stay within a few f32 ulps of the exact f64
        // model across the full anchored drift budget — the anchor is f64,
        // so only the span contributes f32 rounding.
        let model = LeakageModel::exynos5410_big();
        let mut panel = LeakagePanelF32::filled(1, 4, &model, 45.0);
        let anchor = [45.0f32, 55.0, 70.0, 85.0];
        panel.anchor_all(&anchor);
        let mut out = [0.0f32; 4];
        for step in 0..=LeakagePanelF32::REANCHOR_STEPS {
            let temps: [f32; 4] = std::array::from_fn(|k| anchor[k] + 0.06 * step as f32);
            panel.currents_into(&temps, &mut out);
            for (k, &t) in temps.iter().enumerate() {
                let exact = model.current_a(f64::from(t));
                let rel = ((f64::from(out[k]) - exact) / exact).abs();
                assert!(
                    rel < 1e-5,
                    "step {step} lane {k}: rel error {rel:.3e} ({} vs {exact})",
                    out[k]
                );
            }
        }
    }

    #[test]
    fn f32_panel_is_anchored_from_construction_and_on_admission() {
        let big = LeakageModel::exynos5410_big();
        let gpu = LeakageModel::exynos5410_gpu();
        let mut panel = LeakagePanelF32::filled(2, 3, &big, 52.0);
        assert_eq!(panel.rows(), 2);
        assert_eq!(panel.lanes(), 3);
        let temps = [52.0f32; 6];
        let mut out = [0.0f32; 6];
        panel.currents_into(&temps, &mut out);
        let exact = big.current_a(52.0);
        for (k, &i) in out.iter().enumerate() {
            assert!(i.is_finite(), "cell {k} must be finite without anchoring");
            let rel = ((f64::from(i) - exact) / exact).abs();
            assert!(rel < 1e-6, "cell {k}: rel error {rel:.3e}");
        }
        // Mid-sweep admission replaces model and anchor atomically.
        panel.set_model(1, 1, &gpu, 61.0);
        let temps = [52.0f32, 52.0, 52.0, 52.0, 61.0, 52.0];
        panel.currents_into(&temps, &mut out);
        let exact = gpu.current_a(61.0);
        let rel = ((f64::from(out[4]) - exact) / exact).abs();
        assert!(rel < 1e-6, "admitted cell: rel error {rel:.3e}");
    }

    #[test]
    fn f32_currents_kernel_arms_are_bit_identical() {
        // Like the f64 arms, every f32 arm performs the same per-cell f32
        // operation sequence — including at lengths exercising the 8-wide
        // AVX2 / 4-wide NEON tails.
        let big = LeakageModel::exynos5410_big();
        let gpu = LeakageModel::exynos5410_gpu();
        for lanes in [1, 3, 4, 7, 8, 9, 16, 21] {
            let mut panel = LeakagePanelF32::filled(3, lanes, &big, 48.0);
            for lane in 0..lanes {
                panel.set_model(2, lane, &gpu, 48.0 + lane as f64);
            }
            let cells = 3 * lanes;
            let temps: Vec<f32> = (0..cells).map(|k| 48.0 + (k as f32) * 0.013).collect();
            let mut scalar = vec![0.0f32; cells];
            panel.currents_into_with(PanelKernel::Scalar, &temps, &mut scalar);
            for kernel in [PanelKernel::Avx2Fma, PanelKernel::Neon] {
                if !kernel.is_available() {
                    continue;
                }
                let mut wide = vec![0.0f32; cells];
                panel.currents_into_with(kernel, &temps, &mut wide);
                for (k, (s, w)) in scalar.iter().zip(&wide).enumerate() {
                    assert_eq!(
                        s.to_bits(),
                        w.to_bits(),
                        "kernel {kernel:?} lanes {lanes} cell {k}"
                    );
                }
            }
        }
    }

    #[test]
    fn leakage_panel_validates_indices() {
        let model = LeakageModel::exynos5410_big();
        let panel = LeakagePanel::filled(2, 2, &model, 52.0);
        assert_eq!(panel.rows(), 2);
        assert_eq!(panel.lanes(), 2);
        let result = std::panic::catch_unwind(|| {
            let mut out = [0.0; 2];
            panel.currents_row_into(5, &[40.0, 40.0], &mut out);
        });
        assert!(result.is_err(), "out-of-bounds row must panic");
    }

    #[test]
    fn leakage_grows_with_temperature() {
        let m = LeakageModel::exynos5410_big();
        let mut last = 0.0;
        for t in [40.0, 50.0, 60.0, 70.0, 80.0] {
            let p = m.power_w(Voltage::from_volts(1.2), t);
            assert!(p > last, "leakage must be monotonic in temperature");
            last = p;
        }
    }

    #[test]
    fn big_cluster_leakage_matches_figure_4_3_shape() {
        // Figure 4.3: about 0.07-0.09 W at 40degC and 0.22-0.3 W at 80degC.
        let m = LeakageModel::exynos5410_big();
        let cool = m.power_w(Voltage::from_volts(1.2), 40.0);
        let hot = m.power_w(Voltage::from_volts(1.2), 80.0);
        assert!((0.05..0.12).contains(&cool), "cool leakage {cool}");
        assert!((0.20..0.35).contains(&hot), "hot leakage {hot}");
        assert!(hot / cool > 2.5 && hot / cool < 5.0, "ratio {}", hot / cool);
    }

    #[test]
    fn little_cluster_leaks_much_less_than_big() {
        let big = LeakageModel::exynos5410_big();
        let little = LeakageModel::exynos5410_little();
        for t in [40.0, 60.0, 80.0] {
            assert!(little.current_a(t) < 0.3 * big.current_a(t));
        }
    }

    #[test]
    fn leakage_power_scales_with_voltage() {
        let m = LeakageModel::exynos5410_big();
        let lo = m.power_w(Voltage::from_volts(0.92), 60.0);
        let hi = m.power_w(Voltage::from_volts(1.20), 60.0);
        assert!((hi / lo - 1.2 / 0.92).abs() < 1e-9);
    }

    #[test]
    fn fit_recovers_generated_parameters() {
        let truth = LeakageModel::exynos5410_big();
        let v = Voltage::from_volts(1.2);
        let dyn_const = 0.31;
        let samples: Vec<(f64, f64)> = (0..9)
            .map(|i| {
                let t = 40.0 + 5.0 * i as f64;
                (t, truth.power_w(v, t) + dyn_const)
            })
            .collect();
        let fitted = LeakageModel::fit_from_furnace(&samples, v, dyn_const).unwrap();
        for t in [40.0, 55.0, 70.0, 80.0] {
            let err = (fitted.power_w(v, t) - truth.power_w(v, t)).abs();
            assert!(err < 0.005, "fit error {err} W at {t} degC");
        }
    }

    #[test]
    fn fit_tolerates_measurement_noise() {
        let truth = LeakageModel::exynos5410_big();
        let v = Voltage::from_volts(1.2);
        let samples: Vec<(f64, f64)> = (0..9)
            .map(|i| {
                let t = 40.0 + 5.0 * i as f64;
                // Deterministic +-5 mW "noise".
                let noise = if i % 2 == 0 { 0.005 } else { -0.005 };
                (t, truth.power_w(v, t) + 0.31 + noise)
            })
            .collect();
        let fitted = LeakageModel::fit_from_furnace(&samples, v, 0.31).unwrap();
        for t in [45.0, 65.0, 75.0] {
            let rel = (fitted.power_w(v, t) - truth.power_w(v, t)).abs() / truth.power_w(v, t);
            assert!(rel < 0.15, "relative fit error {rel} at {t} degC");
        }
    }

    #[test]
    fn fit_rejects_too_few_samples() {
        let err = LeakageModel::fit_from_furnace(
            &[(40.0, 0.4), (50.0, 0.45)],
            Voltage::from_volts(1.2),
            0.3,
        )
        .unwrap_err();
        assert!(matches!(err, PowerError::InsufficientData { .. }));
    }

    #[test]
    fn fit_rejects_non_positive_voltage_and_negative_dynamic() {
        let samples = [(40.0, 0.4), (50.0, 0.45), (60.0, 0.5), (70.0, 0.55)];
        assert!(LeakageModel::fit_from_furnace(&samples, Voltage::from_volts(0.0), 0.3).is_err());
        assert!(LeakageModel::fit_from_furnace(&samples, Voltage::from_volts(1.2), -0.1).is_err());
    }

    #[test]
    fn kelvin_conversion() {
        assert!((celsius_to_kelvin(0.0) - 273.15).abs() < 1e-12);
        assert!((celsius_to_kelvin(40.0) - 313.15).abs() < 1e-12);
    }
}

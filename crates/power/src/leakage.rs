//! Temperature-dependent leakage model and its characterisation.
//!
//! The paper condenses the sub-threshold leakage equation into
//!
//! ```text
//! I_leak(T) = c1·T²·e^(c2/T) + I_gate      (Eq. 4.2, T in kelvin)
//! ```
//!
//! and fits `c1`, `c2` and `I_gate` to furnace measurements taken while a
//! light, fixed-frequency workload keeps the dynamic power constant
//! (Figures 4.1–4.3). Leakage *power* is the supply voltage times the leakage
//! current.

use numeric::{levenberg_marquardt, FitOptions, Vector};
use serde::{Deserialize, Serialize};
use soc_model::Voltage;

use crate::PowerError;

/// Converts a temperature in °C to kelvin.
pub fn celsius_to_kelvin(temp_c: f64) -> f64 {
    temp_c + 273.15
}

/// The three condensed parameters of the leakage-current model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LeakageParams {
    /// Pre-exponential constant `c1` (A/K²).
    pub c1: f64,
    /// Exponential constant `c2` (K); negative for sub-threshold leakage that
    /// grows with temperature.
    pub c2: f64,
    /// Gate leakage current `I_gate` (A), independent of temperature.
    pub igate_a: f64,
}

impl LeakageParams {
    /// Parameters characterised for the Exynos 5410 big (A15) cluster.
    ///
    /// They reproduce the shape of Figure 4.3: roughly 0.08 W of leakage at
    /// 40 °C growing to roughly 0.27 W at 80 °C (at 1.2 V).
    pub fn exynos5410_big() -> Self {
        LeakageParams {
            c1: 0.0115,
            c2: -3100.0,
            igate_a: 0.008,
        }
    }

    /// Parameters for the little (A7) cluster: the A7 cores are far smaller,
    /// so their leakage is roughly an order of magnitude below the A15's.
    pub fn exynos5410_little() -> Self {
        LeakageParams {
            c1: 0.0017,
            c2: -3100.0,
            igate_a: 0.0015,
        }
    }

    /// Parameters for the GPU domain.
    pub fn exynos5410_gpu() -> Self {
        LeakageParams {
            c1: 0.0040,
            c2: -3100.0,
            igate_a: 0.003,
        }
    }

    /// Parameters for the memory domain (mostly temperature-insensitive
    /// standby current).
    pub fn exynos5410_memory() -> Self {
        LeakageParams {
            c1: 0.0008,
            c2: -3100.0,
            igate_a: 0.010,
        }
    }
}

/// Leakage currents for `N` (domain, temperature) pairs at once,
/// bit-identical to `N` separate [`LeakageModel::current_a`] calls.
///
/// The batched, branch-free form lets the compiler vectorise the temperature
/// conversions and the `c2/T` divisions and lets the `exp` latency chains
/// overlap — the plant simulator evaluates every domain's leakage this way
/// once per micro-step, millions of times per simulated run.
#[inline]
pub fn currents_batch<const N: usize>(models: [&LeakageModel; N], temps_c: [f64; N]) -> [f64; N] {
    let mut pre = [0.0f64; N];
    let mut arg = [0.0f64; N];
    for k in 0..N {
        let t = celsius_to_kelvin(temps_c[k]);
        pre[k] = models[k].params.c1 * t * t;
        arg[k] = models[k].params.c2 / t;
    }
    let mut out = [0.0f64; N];
    for k in 0..N {
        out[k] = arg[k].exp();
    }
    for k in 0..N {
        out[k] = pre[k] * out[k] + models[k].params.igate_a;
    }
    out
}

/// Temperature-dependent leakage model for one power domain.
///
/// # Example
///
/// ```
/// use power_model::LeakageModel;
/// use soc_model::Voltage;
///
/// let model = LeakageModel::exynos5410_big();
/// let cool = model.power_w(Voltage::from_volts(1.2), 40.0);
/// let hot = model.power_w(Voltage::from_volts(1.2), 80.0);
/// assert!(hot > 2.5 * cool, "leakage grows steeply with temperature");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LeakageModel {
    params: LeakageParams,
}

impl LeakageModel {
    /// Creates a leakage model from explicit parameters.
    pub fn new(params: LeakageParams) -> Self {
        LeakageModel { params }
    }

    /// Characterised model of the big cluster.
    pub fn exynos5410_big() -> Self {
        LeakageModel::new(LeakageParams::exynos5410_big())
    }

    /// Characterised model of the little cluster.
    pub fn exynos5410_little() -> Self {
        LeakageModel::new(LeakageParams::exynos5410_little())
    }

    /// Characterised model of the GPU.
    pub fn exynos5410_gpu() -> Self {
        LeakageModel::new(LeakageParams::exynos5410_gpu())
    }

    /// Characterised model of the memory domain.
    pub fn exynos5410_memory() -> Self {
        LeakageModel::new(LeakageParams::exynos5410_memory())
    }

    /// The model parameters.
    pub fn params(&self) -> LeakageParams {
        self.params
    }

    /// Leakage current at the given die temperature, in amperes.
    #[inline]
    pub fn current_a(&self, temp_c: f64) -> f64 {
        let t = celsius_to_kelvin(temp_c);
        self.params.c1 * t * t * (self.params.c2 / t).exp() + self.params.igate_a
    }

    /// Leakage power at the given supply voltage and die temperature, in watts.
    pub fn power_w(&self, voltage: Voltage, temp_c: f64) -> f64 {
        voltage.volts() * self.current_a(temp_c)
    }

    /// Fits the leakage parameters to furnace measurements.
    ///
    /// Each sample pairs a die temperature (°C) with the measured *total*
    /// power (W) of the domain while a light workload keeps the dynamic power
    /// constant at `dynamic_w` (the paper's central assumption: "dynamic power
    /// shows negligible variation with temperature"). The dynamic component is
    /// subtracted, the remainder is divided by the supply voltage, and the
    /// condensed leakage-current equation is fitted to the result with
    /// nonlinear least squares.
    ///
    /// # Errors
    ///
    /// * [`PowerError::InsufficientData`] with fewer than four distinct
    ///   temperature points.
    /// * [`PowerError::InvalidArgument`] for a non-positive supply voltage or
    ///   negative dynamic power.
    /// * [`PowerError::FitFailed`] if the nonlinear fit does not converge or
    ///   produces non-physical (negative-leakage) parameters.
    pub fn fit_from_furnace(
        samples: &[(f64, f64)],
        supply: Voltage,
        dynamic_w: f64,
    ) -> Result<Self, PowerError> {
        if samples.len() < 4 {
            return Err(PowerError::InsufficientData {
                required: 4,
                provided: samples.len(),
            });
        }
        if supply.volts() <= 0.0 {
            return Err(PowerError::InvalidArgument(
                "supply voltage must be positive",
            ));
        }
        if dynamic_w < 0.0 {
            return Err(PowerError::InvalidArgument(
                "characterisation dynamic power must be non-negative",
            ));
        }
        let temps: Vec<f64> = samples.iter().map(|(t, _)| *t).collect();
        let v = supply.volts();
        // Leakage current implied by each measurement.
        let currents: Vec<f64> = samples
            .iter()
            .map(|(_, p)| ((p - dynamic_w) / v).max(0.0))
            .collect();

        let i_min = currents.iter().cloned().fold(f64::INFINITY, f64::min);
        let initial = Vector::from_slice(&[0.005, -2500.0, (0.3 * i_min).max(1e-4)]);

        let report = levenberg_marquardt(&initial, &FitOptions::default(), |p| {
            Vector::from_iter(temps.iter().zip(&currents).map(|(&t_c, &i_meas)| {
                let t = celsius_to_kelvin(t_c);
                p[0] * t * t * (p[1] / t).exp() + p[2] - i_meas
            }))
        })
        .map_err(|e| PowerError::FitFailed(e.to_string()))?;

        let fitted = LeakageParams {
            c1: report.parameters[0],
            c2: report.parameters[1],
            igate_a: report.parameters[2],
        };
        let model = LeakageModel::new(fitted);

        // Sanity: the fitted model must predict non-negative, finite leakage
        // over the characterised range.
        for &t in &temps {
            let i = model.current_a(t);
            if !i.is_finite() || i < 0.0 {
                return Err(PowerError::FitFailed(format!(
                    "fitted leakage current is non-physical at {t} degC: {i}"
                )));
            }
        }
        Ok(model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn currents_batch_is_bit_identical_to_scalar() {
        let model = LeakageModel::exynos5410_big();
        let temps = [41.25, 55.5, 68.875, 83.0625];
        let batched = currents_batch([&model; 4], temps);
        for k in 0..4 {
            assert_eq!(batched[k], model.current_a(temps[k]), "lane {k}");
        }
    }

    #[test]
    fn leakage_grows_with_temperature() {
        let m = LeakageModel::exynos5410_big();
        let mut last = 0.0;
        for t in [40.0, 50.0, 60.0, 70.0, 80.0] {
            let p = m.power_w(Voltage::from_volts(1.2), t);
            assert!(p > last, "leakage must be monotonic in temperature");
            last = p;
        }
    }

    #[test]
    fn big_cluster_leakage_matches_figure_4_3_shape() {
        // Figure 4.3: about 0.07-0.09 W at 40degC and 0.22-0.3 W at 80degC.
        let m = LeakageModel::exynos5410_big();
        let cool = m.power_w(Voltage::from_volts(1.2), 40.0);
        let hot = m.power_w(Voltage::from_volts(1.2), 80.0);
        assert!((0.05..0.12).contains(&cool), "cool leakage {cool}");
        assert!((0.20..0.35).contains(&hot), "hot leakage {hot}");
        assert!(hot / cool > 2.5 && hot / cool < 5.0, "ratio {}", hot / cool);
    }

    #[test]
    fn little_cluster_leaks_much_less_than_big() {
        let big = LeakageModel::exynos5410_big();
        let little = LeakageModel::exynos5410_little();
        for t in [40.0, 60.0, 80.0] {
            assert!(little.current_a(t) < 0.3 * big.current_a(t));
        }
    }

    #[test]
    fn leakage_power_scales_with_voltage() {
        let m = LeakageModel::exynos5410_big();
        let lo = m.power_w(Voltage::from_volts(0.92), 60.0);
        let hi = m.power_w(Voltage::from_volts(1.20), 60.0);
        assert!((hi / lo - 1.2 / 0.92).abs() < 1e-9);
    }

    #[test]
    fn fit_recovers_generated_parameters() {
        let truth = LeakageModel::exynos5410_big();
        let v = Voltage::from_volts(1.2);
        let dyn_const = 0.31;
        let samples: Vec<(f64, f64)> = (0..9)
            .map(|i| {
                let t = 40.0 + 5.0 * i as f64;
                (t, truth.power_w(v, t) + dyn_const)
            })
            .collect();
        let fitted = LeakageModel::fit_from_furnace(&samples, v, dyn_const).unwrap();
        for t in [40.0, 55.0, 70.0, 80.0] {
            let err = (fitted.power_w(v, t) - truth.power_w(v, t)).abs();
            assert!(err < 0.005, "fit error {err} W at {t} degC");
        }
    }

    #[test]
    fn fit_tolerates_measurement_noise() {
        let truth = LeakageModel::exynos5410_big();
        let v = Voltage::from_volts(1.2);
        let samples: Vec<(f64, f64)> = (0..9)
            .map(|i| {
                let t = 40.0 + 5.0 * i as f64;
                // Deterministic +-5 mW "noise".
                let noise = if i % 2 == 0 { 0.005 } else { -0.005 };
                (t, truth.power_w(v, t) + 0.31 + noise)
            })
            .collect();
        let fitted = LeakageModel::fit_from_furnace(&samples, v, 0.31).unwrap();
        for t in [45.0, 65.0, 75.0] {
            let rel = (fitted.power_w(v, t) - truth.power_w(v, t)).abs() / truth.power_w(v, t);
            assert!(rel < 0.15, "relative fit error {rel} at {t} degC");
        }
    }

    #[test]
    fn fit_rejects_too_few_samples() {
        let err = LeakageModel::fit_from_furnace(
            &[(40.0, 0.4), (50.0, 0.45)],
            Voltage::from_volts(1.2),
            0.3,
        )
        .unwrap_err();
        assert!(matches!(err, PowerError::InsufficientData { .. }));
    }

    #[test]
    fn fit_rejects_non_positive_voltage_and_negative_dynamic() {
        let samples = [(40.0, 0.4), (50.0, 0.45), (60.0, 0.5), (70.0, 0.55)];
        assert!(LeakageModel::fit_from_furnace(&samples, Voltage::from_volts(0.0), 0.3).is_err());
        assert!(LeakageModel::fit_from_furnace(&samples, Voltage::from_volts(1.2), -0.1).is_err());
    }

    #[test]
    fn kelvin_conversion() {
        assert!((celsius_to_kelvin(0.0) - 273.15).abs() < 1e-12);
        assert!((celsius_to_kelvin(40.0) - 313.15).abs() < 1e-12);
    }
}

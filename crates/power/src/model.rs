//! The combined per-domain power model used by the DTPM framework.

use serde::{Deserialize, Serialize};
use soc_model::{Frequency, PowerDomain, Voltage};

use crate::dynamic::ActivityEstimator;
use crate::leakage::LeakageModel;

/// Split of one domain's measured power into its components.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerSplit {
    /// Modelled leakage power, in watts.
    pub leakage_w: f64,
    /// Residual dynamic power (measured minus leakage, clamped at zero), in watts.
    pub dynamic_w: f64,
}

impl PowerSplit {
    /// Total of the two components, in watts.
    pub fn total(&self) -> f64 {
        self.leakage_w + self.dynamic_w
    }
}

/// Power model of a single measured domain: a characterised leakage model
/// plus the run-time activity estimator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DomainPowerModel {
    domain: PowerDomain,
    leakage: LeakageModel,
    activity: ActivityEstimator,
}

impl DomainPowerModel {
    /// Creates a domain model from a characterised leakage model and an
    /// activity estimator.
    pub fn new(domain: PowerDomain, leakage: LeakageModel, activity: ActivityEstimator) -> Self {
        DomainPowerModel {
            domain,
            leakage,
            activity,
        }
    }

    /// The domain this model describes.
    pub fn domain(&self) -> PowerDomain {
        self.domain
    }

    /// The leakage model of this domain.
    pub fn leakage(&self) -> &LeakageModel {
        &self.leakage
    }

    /// The current activity (αC) estimator of this domain.
    pub fn activity(&self) -> &ActivityEstimator {
        &self.activity
    }

    /// Splits a measured total power into leakage and dynamic components at
    /// the given die temperature and supply voltage (Figure 4.4).
    pub fn split(&self, measured_total_w: f64, temp_c: f64, voltage: Voltage) -> PowerSplit {
        let leakage_w = self.leakage.power_w(voltage, temp_c);
        PowerSplit {
            leakage_w,
            dynamic_w: (measured_total_w - leakage_w).max(0.0),
        }
    }

    /// Feeds one sensor observation into the activity estimator.
    pub fn observe(
        &mut self,
        measured_total_w: f64,
        temp_c: f64,
        voltage: Voltage,
        frequency: Frequency,
    ) {
        self.activity
            .observe(measured_total_w, temp_c, voltage, frequency, &self.leakage);
    }

    /// Predicted leakage power at a temperature/voltage, in watts.
    pub fn predict_leakage(&self, temp_c: f64, voltage: Voltage) -> f64 {
        self.leakage.power_w(voltage, temp_c)
    }

    /// Predicted dynamic power at a candidate operating point, assuming the
    /// current workload activity, in watts.
    pub fn predict_dynamic(&self, voltage: Voltage, frequency: Frequency) -> f64 {
        self.activity.predict_dynamic_w(voltage, frequency)
    }

    /// Predicted total power at a candidate operating point and temperature,
    /// in watts.
    pub fn predict_total(&self, temp_c: f64, voltage: Voltage, frequency: Frequency) -> f64 {
        self.predict_leakage(temp_c, voltage) + self.predict_dynamic(voltage, frequency)
    }
}

/// The complete power model: one [`DomainPowerModel`] per measured domain.
///
/// # Example
///
/// ```
/// use power_model::PowerModel;
/// use soc_model::{Frequency, PowerDomain, Voltage};
///
/// let mut model = PowerModel::exynos5410_defaults();
/// model.observe(
///     PowerDomain::Gpu,
///     0.4,
///     50.0,
///     Voltage::from_volts(1.05),
///     Frequency::from_mhz(533),
/// );
/// let at_min = model.predict_total(
///     PowerDomain::Gpu,
///     50.0,
///     Voltage::from_volts(0.85),
///     Frequency::from_mhz(177),
/// );
/// assert!(at_min < 0.4);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    domains: Vec<DomainPowerModel>,
}

impl PowerModel {
    /// Builds a power model from explicit per-domain models.
    ///
    /// # Panics
    ///
    /// Panics if a domain is missing or duplicated.
    pub fn new(domains: Vec<DomainPowerModel>) -> Self {
        assert_eq!(
            domains.len(),
            PowerDomain::COUNT,
            "power model needs exactly one model per domain"
        );
        for domain in PowerDomain::ALL {
            assert_eq!(
                domains.iter().filter(|m| m.domain() == domain).count(),
                1,
                "domain {domain} must appear exactly once"
            );
        }
        PowerModel { domains }
    }

    /// The default characterised model of the Exynos 5410: per-domain leakage
    /// parameters from the furnace experiment and fresh activity estimators.
    pub fn exynos5410_defaults() -> Self {
        PowerModel::new(vec![
            DomainPowerModel::new(
                PowerDomain::BigCpu,
                LeakageModel::exynos5410_big(),
                ActivityEstimator::for_cpu_cluster(),
            ),
            DomainPowerModel::new(
                PowerDomain::LittleCpu,
                LeakageModel::exynos5410_little(),
                ActivityEstimator::for_cpu_cluster(),
            ),
            DomainPowerModel::new(
                PowerDomain::Gpu,
                LeakageModel::exynos5410_gpu(),
                ActivityEstimator::for_uncore(),
            ),
            DomainPowerModel::new(
                PowerDomain::Memory,
                LeakageModel::exynos5410_memory(),
                ActivityEstimator::for_uncore(),
            ),
        ])
    }

    /// The per-domain model for `domain`.
    pub fn domain(&self, domain: PowerDomain) -> &DomainPowerModel {
        self.domains
            .iter()
            .find(|m| m.domain() == domain)
            .expect("constructor guarantees every domain exists")
    }

    /// Mutable access to the per-domain model for `domain`.
    pub fn domain_mut(&mut self, domain: PowerDomain) -> &mut DomainPowerModel {
        self.domains
            .iter_mut()
            .find(|m| m.domain() == domain)
            .expect("constructor guarantees every domain exists")
    }

    /// Feeds one sensor observation for `domain` into the model.
    pub fn observe(
        &mut self,
        domain: PowerDomain,
        measured_total_w: f64,
        temp_c: f64,
        voltage: Voltage,
        frequency: Frequency,
    ) {
        self.domain_mut(domain)
            .observe(measured_total_w, temp_c, voltage, frequency);
    }

    /// Predicted total power of `domain` at a candidate operating point.
    pub fn predict_total(
        &self,
        domain: PowerDomain,
        temp_c: f64,
        voltage: Voltage,
        frequency: Frequency,
    ) -> f64 {
        self.domain(domain)
            .predict_total(temp_c, voltage, frequency)
    }

    /// Predicted leakage power of `domain` at a temperature and voltage.
    pub fn predict_leakage(&self, domain: PowerDomain, temp_c: f64, voltage: Voltage) -> f64 {
        self.domain(domain).predict_leakage(temp_c, voltage)
    }

    /// Predicted dynamic power of `domain` at a candidate operating point.
    pub fn predict_dynamic(
        &self,
        domain: PowerDomain,
        voltage: Voltage,
        frequency: Frequency,
    ) -> f64 {
        self.domain(domain).predict_dynamic(voltage, frequency)
    }
}

impl Default for PowerModel {
    fn default() -> Self {
        PowerModel::exynos5410_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_model_covers_all_domains() {
        let model = PowerModel::exynos5410_defaults();
        for domain in PowerDomain::ALL {
            assert_eq!(model.domain(domain).domain(), domain);
        }
    }

    #[test]
    #[should_panic(expected = "exactly once")]
    fn duplicate_domain_rejected() {
        let big = DomainPowerModel::new(
            PowerDomain::BigCpu,
            LeakageModel::exynos5410_big(),
            ActivityEstimator::for_cpu_cluster(),
        );
        PowerModel::new(vec![big.clone(), big.clone(), big.clone(), big]);
    }

    #[test]
    fn split_separates_leakage_and_dynamic() {
        let model = PowerModel::exynos5410_defaults();
        let big = model.domain(PowerDomain::BigCpu);
        let v = Voltage::from_volts(1.2);
        let split = big.split(1.0, 60.0, v);
        assert!(split.leakage_w > 0.05 && split.leakage_w < 0.3);
        assert!((split.total() - 1.0).abs() < 1e-12);
        // Measured power below leakage clamps dynamic at zero.
        let idle = big.split(0.01, 80.0, v);
        assert_eq!(idle.dynamic_w, 0.0);
    }

    #[test]
    fn observation_then_prediction_round_trips() {
        let mut model = PowerModel::exynos5410_defaults();
        let v = Voltage::from_volts(1.2);
        let f = Frequency::from_mhz(1600);
        let temp = 58.0;
        let measured = 2.3;
        // After repeated observations of the same operating point the
        // prediction converges to the measurement.
        for _ in 0..12 {
            model.observe(PowerDomain::BigCpu, measured, temp, v, f);
        }
        let predicted = model.predict_total(PowerDomain::BigCpu, temp, v, f);
        assert!((predicted - measured).abs() < 0.01, "predicted {predicted}");
    }

    #[test]
    fn prediction_scales_down_with_frequency() {
        let mut model = PowerModel::exynos5410_defaults();
        let v_hi = Voltage::from_volts(1.2);
        let f_hi = Frequency::from_mhz(1600);
        for _ in 0..10 {
            model.observe(PowerDomain::BigCpu, 2.5, 60.0, v_hi, f_hi);
        }
        let v_lo = Voltage::from_volts(0.92);
        let f_lo = Frequency::from_mhz(800);
        let p_hi = model.predict_total(PowerDomain::BigCpu, 60.0, v_hi, f_hi);
        let p_lo = model.predict_total(PowerDomain::BigCpu, 60.0, v_lo, f_lo);
        // Halving f and dropping V should cut dynamic power by ~3.4x.
        assert!(p_lo < 0.5 * p_hi, "p_lo {p_lo} vs p_hi {p_hi}");
    }

    #[test]
    fn default_trait_matches_exynos_defaults() {
        assert_eq!(PowerModel::default(), PowerModel::exynos5410_defaults());
    }
}

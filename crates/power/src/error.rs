//! Error type for power-model operations.

use std::error::Error;
use std::fmt;

/// Errors returned by power-model construction and characterisation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PowerError {
    /// The characterisation data was empty or too small to fit the model.
    InsufficientData {
        /// Minimum number of samples required.
        required: usize,
        /// Number of samples provided.
        provided: usize,
    },
    /// The nonlinear leakage fit failed to converge.
    FitFailed(String),
    /// An argument was out of its physical range.
    InvalidArgument(&'static str),
}

impl fmt::Display for PowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PowerError::InsufficientData { required, provided } => write!(
                f,
                "insufficient characterisation data: {provided} samples, need at least {required}"
            ),
            PowerError::FitFailed(msg) => write!(f, "leakage model fit failed: {msg}"),
            PowerError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl Error for PowerError {}

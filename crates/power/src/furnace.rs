//! Furnace characterisation of the leakage model (Section 4.1.1).
//!
//! The paper places the board in a temperature furnace, sweeps the ambient
//! temperature from 40 °C to 80 °C in 10 °C steps, runs a light fixed
//! frequency/voltage workload so the dynamic power stays constant, and logs
//! the total power of each domain. Because the dynamic component is constant,
//! any growth of the total power with temperature is attributable to leakage
//! (Figure 4.2), which is then fitted with the condensed leakage equation
//! (Figure 4.3).
//!
//! This module holds the dataset produced by such an experiment and a
//! synthetic generator that plays the role of the physical furnace: it clamps
//! the die temperature to the furnace setpoint (a light workload cannot raise
//! it appreciably) and samples the power model plus measurement noise.

use serde::{Deserialize, Serialize};
use soc_model::Voltage;

use crate::leakage::LeakageModel;
use crate::PowerError;

/// One logged power sample inside the furnace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FurnaceSample {
    /// Time since the start of the run, in seconds.
    pub time_s: f64,
    /// Die temperature at the sample, in °C.
    pub die_temp_c: f64,
    /// Measured total power of the domain, in watts.
    pub total_power_w: f64,
}

/// All samples collected at one furnace setpoint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FurnaceRun {
    /// Furnace setpoint (ambient temperature), in °C.
    pub ambient_c: f64,
    /// Logged samples.
    pub samples: Vec<FurnaceSample>,
}

impl FurnaceRun {
    /// Mean measured power over the run, in watts.
    ///
    /// # Panics
    ///
    /// Panics if the run has no samples.
    pub fn mean_power_w(&self) -> f64 {
        assert!(!self.samples.is_empty(), "furnace run has no samples");
        self.samples.iter().map(|s| s.total_power_w).sum::<f64>() / self.samples.len() as f64
    }

    /// Mean die temperature over the run, in °C.
    ///
    /// # Panics
    ///
    /// Panics if the run has no samples.
    pub fn mean_die_temp_c(&self) -> f64 {
        assert!(!self.samples.is_empty(), "furnace run has no samples");
        self.samples.iter().map(|s| s.die_temp_c).sum::<f64>() / self.samples.len() as f64
    }
}

/// A complete furnace sweep: one run per ambient setpoint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FurnaceDataset {
    /// Supply voltage of the characterised domain during the sweep.
    pub supply: Voltage,
    /// Constant dynamic power of the light characterisation workload, in
    /// watts. In the paper this is known from `αCV²f` of the (fixed-frequency)
    /// characterisation workload; the fit subtracts it before extracting the
    /// leakage current.
    pub light_workload_dynamic_w: f64,
    /// Runs, one per furnace setpoint.
    pub runs: Vec<FurnaceRun>,
}

impl FurnaceDataset {
    /// The ambient sweep used by the paper: 40 °C to 80 °C in 10 °C steps.
    pub const PAPER_SWEEP_C: [f64; 5] = [40.0, 50.0, 60.0, 70.0, 80.0];

    /// Synthesises the dataset a furnace experiment would produce.
    ///
    /// The light characterisation workload draws the constant dynamic power
    /// `dynamic_w`; the die temperature settles slightly above the furnace
    /// ambient (`die_offset_c`); `noise` is called once per sample and its
    /// return value (watts) is added to the measurement to emulate sensor
    /// noise. `sample_period_s` and `duration_s` control the log density.
    #[allow(clippy::too_many_arguments)]
    pub fn synthesize(
        leakage: &LeakageModel,
        supply: Voltage,
        dynamic_w: f64,
        ambients_c: &[f64],
        die_offset_c: f64,
        duration_s: f64,
        sample_period_s: f64,
        mut noise: impl FnMut() -> f64,
    ) -> Self {
        let mut runs = Vec::with_capacity(ambients_c.len());
        for &ambient_c in ambients_c {
            let die_temp_c = ambient_c + die_offset_c;
            let steps = (duration_s / sample_period_s).floor() as usize;
            let samples = (0..steps)
                .map(|k| {
                    let time_s = k as f64 * sample_period_s;
                    let true_power = leakage.power_w(supply, die_temp_c) + dynamic_w;
                    FurnaceSample {
                        time_s,
                        die_temp_c,
                        total_power_w: (true_power + noise()).max(0.0),
                    }
                })
                .collect();
            runs.push(FurnaceRun { ambient_c, samples });
        }
        FurnaceDataset {
            supply,
            light_workload_dynamic_w: dynamic_w,
            runs,
        }
    }

    /// The per-setpoint `(mean die temperature, mean total power)` table used
    /// as input to the leakage fit — the condensed form of Figure 4.2.
    pub fn temperature_power_table(&self) -> Vec<(f64, f64)> {
        self.runs
            .iter()
            .filter(|r| !r.samples.is_empty())
            .map(|r| (r.mean_die_temp_c(), r.mean_power_w()))
            .collect()
    }

    /// Fits the leakage model to this dataset.
    ///
    /// # Errors
    ///
    /// Propagates [`PowerError`] from [`LeakageModel::fit_from_furnace`].
    pub fn fit_leakage(&self) -> Result<LeakageModel, PowerError> {
        LeakageModel::fit_from_furnace(
            &self.temperature_power_table(),
            self.supply,
            self.light_workload_dynamic_w,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::leakage::LeakageParams;

    fn no_noise() -> impl FnMut() -> f64 {
        || 0.0
    }

    fn paper_like_dataset(noise: impl FnMut() -> f64) -> FurnaceDataset {
        FurnaceDataset::synthesize(
            &LeakageModel::exynos5410_big(),
            Voltage::from_volts(1.2),
            0.31,
            &FurnaceDataset::PAPER_SWEEP_C,
            2.0,
            400.0,
            1.0,
            noise,
        )
    }

    #[test]
    fn synthesized_sweep_has_five_runs_of_400_samples() {
        let ds = paper_like_dataset(no_noise());
        assert_eq!(ds.runs.len(), 5);
        for run in &ds.runs {
            assert_eq!(run.samples.len(), 400);
        }
    }

    #[test]
    fn total_power_grows_with_furnace_setpoint() {
        // Figure 4.2: the 80degC trace sits clearly above the 40degC trace.
        let ds = paper_like_dataset(no_noise());
        let means: Vec<f64> = ds.runs.iter().map(|r| r.mean_power_w()).collect();
        assert!(means.windows(2).all(|w| w[1] > w[0]), "{means:?}");
        assert!(
            means[4] - means[0] > 0.1,
            "spread {:.3} W",
            means[4] - means[0]
        );
    }

    #[test]
    fn fit_recovers_leakage_within_a_few_percent() {
        let truth = LeakageModel::exynos5410_big();
        let ds = paper_like_dataset(no_noise());
        let fitted = ds.fit_leakage().unwrap();
        for t in [45.0, 60.0, 75.0] {
            let rel = (fitted.power_w(Voltage::from_volts(1.2), t + 2.0)
                - truth.power_w(Voltage::from_volts(1.2), t + 2.0))
            .abs()
                / truth.power_w(Voltage::from_volts(1.2), t + 2.0);
            assert!(rel < 0.05, "relative error {rel} at {t}");
        }
    }

    #[test]
    fn fit_survives_deterministic_noise() {
        let mut flip = false;
        let ds = paper_like_dataset(move || {
            flip = !flip;
            if flip {
                0.004
            } else {
                -0.004
            }
        });
        let fitted = ds.fit_leakage().unwrap();
        let p40 = fitted.power_w(Voltage::from_volts(1.2), 42.0);
        let p80 = fitted.power_w(Voltage::from_volts(1.2), 82.0);
        assert!(
            p80 > 2.0 * p40,
            "fitted model must keep the exponential shape"
        );
    }

    #[test]
    fn table_skips_empty_runs() {
        let mut ds = paper_like_dataset(no_noise());
        ds.runs.push(FurnaceRun {
            ambient_c: 90.0,
            samples: vec![],
        });
        assert_eq!(ds.temperature_power_table().len(), 5);
    }

    #[test]
    fn custom_leakage_parameters_round_trip_through_fit() {
        let truth = LeakageModel::new(LeakageParams {
            c1: 0.02,
            c2: -3500.0,
            igate_a: 0.004,
        });
        let ds = FurnaceDataset::synthesize(
            &truth,
            Voltage::from_volts(1.0),
            0.2,
            &[40.0, 48.0, 56.0, 64.0, 72.0, 80.0],
            1.5,
            100.0,
            0.5,
            no_noise(),
        );
        let fitted = ds.fit_leakage().unwrap();
        for t in [45.0, 65.0, 80.0] {
            let rel = (fitted.current_a(t) - truth.current_a(t)).abs() / truth.current_a(t);
            assert!(rel < 0.05, "relative current error {rel} at {t}");
        }
    }
}

//! Per-domain power breakdowns.

use std::ops::{Add, Index, IndexMut};

use serde::{Deserialize, Serialize};
use soc_model::PowerDomain;

/// Power consumption of the four measured domains, in watts.
///
/// The ordering matches the thermal model's power input vector
/// `P = [P_big, P_little, P_gpu, P_mem]ᵀ`.
///
/// # Example
///
/// ```
/// use power_model::DomainPower;
/// use soc_model::PowerDomain;
///
/// let mut p = DomainPower::default();
/// p[PowerDomain::BigCpu] = 2.0;
/// p[PowerDomain::Memory] = 0.4;
/// assert_eq!(p.total(), 2.4);
/// assert_eq!(p.to_vec(), vec![2.0, 0.0, 0.0, 0.4]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct DomainPower {
    /// Big (A15) cluster power in watts.
    pub big_w: f64,
    /// Little (A7) cluster power in watts.
    pub little_w: f64,
    /// GPU power in watts.
    pub gpu_w: f64,
    /// Memory power in watts.
    pub memory_w: f64,
}

impl DomainPower {
    /// Creates a breakdown from the four domain powers (watts).
    pub fn new(big_w: f64, little_w: f64, gpu_w: f64, memory_w: f64) -> Self {
        DomainPower {
            big_w,
            little_w,
            gpu_w,
            memory_w,
        }
    }

    /// Creates a breakdown from a `[big, little, gpu, mem]` slice.
    ///
    /// # Panics
    ///
    /// Panics if the slice does not have exactly four elements.
    pub fn from_slice(values: &[f64]) -> Self {
        assert_eq!(values.len(), PowerDomain::COUNT, "expected 4 domain powers");
        DomainPower::new(values[0], values[1], values[2], values[3])
    }

    /// Total SoC power (sum of the four measured domains), in watts.
    pub fn total(&self) -> f64 {
        self.big_w + self.little_w + self.gpu_w + self.memory_w
    }

    /// The breakdown as a `[big, little, gpu, mem]` array (the ordering used
    /// by the thermal model) — the allocation-free form of
    /// [`DomainPower::to_vec`].
    pub fn as_array(&self) -> [f64; 4] {
        [self.big_w, self.little_w, self.gpu_w, self.memory_w]
    }

    /// The breakdown as a `[big, little, gpu, mem]` vector, the ordering used
    /// by the thermal model.
    pub fn to_vec(&self) -> Vec<f64> {
        self.as_array().to_vec()
    }

    /// Element-wise maximum of two breakdowns.
    pub fn max(&self, other: &DomainPower) -> DomainPower {
        DomainPower::new(
            self.big_w.max(other.big_w),
            self.little_w.max(other.little_w),
            self.gpu_w.max(other.gpu_w),
            self.memory_w.max(other.memory_w),
        )
    }

    /// Returns `true` if all four values are finite and non-negative.
    pub fn is_physical(&self) -> bool {
        self.to_vec().iter().all(|p| p.is_finite() && *p >= 0.0)
    }
}

impl Index<PowerDomain> for DomainPower {
    type Output = f64;

    fn index(&self, domain: PowerDomain) -> &f64 {
        match domain {
            PowerDomain::BigCpu => &self.big_w,
            PowerDomain::LittleCpu => &self.little_w,
            PowerDomain::Gpu => &self.gpu_w,
            PowerDomain::Memory => &self.memory_w,
        }
    }
}

impl IndexMut<PowerDomain> for DomainPower {
    fn index_mut(&mut self, domain: PowerDomain) -> &mut f64 {
        match domain {
            PowerDomain::BigCpu => &mut self.big_w,
            PowerDomain::LittleCpu => &mut self.little_w,
            PowerDomain::Gpu => &mut self.gpu_w,
            PowerDomain::Memory => &mut self.memory_w,
        }
    }
}

impl Add for DomainPower {
    type Output = DomainPower;

    fn add(self, rhs: DomainPower) -> DomainPower {
        DomainPower::new(
            self.big_w + rhs.big_w,
            self.little_w + rhs.little_w,
            self.gpu_w + rhs.gpu_w,
            self.memory_w + rhs.memory_w,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_and_vector_ordering() {
        let p = DomainPower::new(2.0, 0.3, 0.5, 0.4);
        assert!((p.total() - 3.2).abs() < 1e-12);
        assert_eq!(p.to_vec(), vec![2.0, 0.3, 0.5, 0.4]);
        assert_eq!(DomainPower::from_slice(&p.to_vec()), p);
    }

    #[test]
    fn indexing_by_domain_matches_vector_order() {
        let p = DomainPower::new(1.0, 2.0, 3.0, 4.0);
        for domain in PowerDomain::ALL {
            assert_eq!(p[domain], p.to_vec()[domain.index()]);
        }
    }

    #[test]
    fn index_mut_updates_domain() {
        let mut p = DomainPower::default();
        p[PowerDomain::Gpu] = 0.7;
        assert_eq!(p.gpu_w, 0.7);
    }

    #[test]
    fn addition_and_max() {
        let a = DomainPower::new(1.0, 0.1, 0.2, 0.3);
        let b = DomainPower::new(0.5, 0.2, 0.1, 0.3);
        let sum = a + b;
        let expected = DomainPower::new(1.5, 0.3, 0.3, 0.6);
        for domain in PowerDomain::ALL {
            assert!((sum[domain] - expected[domain]).abs() < 1e-12);
        }
        assert_eq!(a.max(&b), DomainPower::new(1.0, 0.2, 0.2, 0.3));
    }

    #[test]
    fn physical_check() {
        assert!(DomainPower::new(1.0, 0.0, 0.0, 0.0).is_physical());
        assert!(!DomainPower::new(-1.0, 0.0, 0.0, 0.0).is_physical());
        assert!(!DomainPower::new(f64::NAN, 0.0, 0.0, 0.0).is_physical());
    }

    #[test]
    #[should_panic(expected = "expected 4")]
    fn from_slice_rejects_wrong_length() {
        DomainPower::from_slice(&[1.0, 2.0]);
    }
}

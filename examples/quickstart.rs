//! Quickstart: characterise the platform, then run one benchmark under the
//! default fan-cooled configuration and under the proposed DTPM algorithm,
//! and compare temperature, power and execution time.
//!
//! Run with `cargo run --release --example quickstart`.

use platform_sim::{
    BenchmarkComparison, CalibrationCampaign, Experiment, ExperimentConfig, ExperimentKind,
    StabilityReport,
};
use workload::BenchmarkId;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Characterise the platform once: furnace sweep for the leakage model,
    //    PRBS excitation + least-squares identification for the thermal model.
    println!("Characterising the platform (furnace + PRBS identification)...");
    let calibration = CalibrationCampaign::default().run(42)?;
    println!(
        "  identified thermal model: 1 s prediction error {:.2}% (max {:.2}%)",
        calibration.validation.mean_percent_error, calibration.validation.max_percent_error
    );

    // 2. Run the same benchmark under the default (fan) configuration and
    //    under the proposed DTPM algorithm.
    let benchmark = BenchmarkId::Basicmath;
    println!("\nRunning {benchmark} under the default configuration (with fan)...");
    let baseline = Experiment::new(
        &ExperimentConfig::new(ExperimentKind::DefaultWithFan, benchmark),
        &calibration,
    )?
    .run()?;

    println!("Running {benchmark} under the proposed DTPM algorithm (no fan)...");
    let dtpm = Experiment::new(
        &ExperimentConfig::new(ExperimentKind::Dtpm, benchmark),
        &calibration,
    )?
    .run()?;

    // 3. Report the comparison.
    for (name, result) in [("default+fan", &baseline), ("DTPM", &dtpm)] {
        let stability = StabilityReport::of(result);
        println!(
            "\n  {name:<12} execution {:.1} s | platform power {:.2} W | peak {:.1} °C | \
             mean {:.1} °C | max–min {:.1} °C | variance {:.2}",
            result.execution_time_s,
            result.mean_platform_power_w,
            stability.peak_temp_c,
            stability.mean_temp_c,
            stability.temp_range_c,
            stability.temp_variance,
        );
    }
    let comparison = BenchmarkComparison::against_baseline(&baseline, &dtpm);
    println!(
        "\n  DTPM vs default+fan: {:.1}% platform power saved, {:.1}% performance loss, \
         {:.1}x temperature-variance reduction",
        comparison.power_saving_percent,
        comparison.performance_loss_percent,
        comparison.variance_reduction_factor,
    );
    Ok(())
}

//! A declarative streaming sweep campaign: the paper's evaluation grid
//! ({baseline, reactive, DTPM} × benchmarks × ambients) declared as one
//! [`SweepSpec`], streamed summaries-only through the lane-compacting sweep,
//! and folded into a per-benchmark comparison table — without retaining a
//! single per-interval trace.
//!
//! Run with `cargo run --release --example sweep_campaign`.

use platform_sim::{
    BenchmarkComparison, CalibrationCampaign, ExperimentKind, ResultSink, RunReport, RunSummary,
    SimError, SweepSpec,
};
use workload::BenchmarkId;

/// A streaming sink that keeps only the O(1) per-cell summaries.
#[derive(Default)]
struct SummarySink {
    summaries: Vec<(usize, RunSummary)>,
    failures: Vec<(usize, SimError)>,
}

impl ResultSink for SummarySink {
    fn accept(&mut self, index: usize, outcome: Result<RunReport, SimError>) {
        match outcome {
            Ok(report) => {
                assert!(report.trace.is_none(), "summaries-only: no traces");
                self.summaries.push((index, report.summary));
            }
            Err(e) => self.failures.push((index, e)),
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Characterising the platform...");
    let calibration = CalibrationCampaign::default().run(7)?;

    // The grid: 3 thermal-management kinds x 4 benchmarks x 2 ambients.
    let spec = SweepSpec::new(
        vec![
            ExperimentKind::DefaultWithFan,
            ExperimentKind::Reactive,
            ExperimentKind::Dtpm,
        ],
        vec![
            BenchmarkId::Crc32,
            BenchmarkId::Qsort,
            BenchmarkId::Basicmath,
            BenchmarkId::Templerun,
        ],
    )
    .with_ambients_c(vec![24.0, 32.0])
    .with_campaign_seed(2026);
    println!(
        "Running {} cells ({} kinds x {} benchmarks x {} ambients), streaming summaries...",
        spec.cells(),
        spec.kinds.len(),
        spec.benchmarks.len(),
        spec.ambients_c.len()
    );

    let mut sink = SummarySink::default();
    spec.runner()
        .with_lanes(8)
        .run_into(&calibration, &mut sink);
    for (index, error) in &sink.failures {
        eprintln!("cell {index} failed: {error}");
    }

    // Fold the stream into the Figure 6.9-style table: per (benchmark,
    // ambient), DTPM vs the fan baseline.
    println!(
        "\n{:>12} {:>9} {:>12} {:>12} {:>12} {:>10}",
        "benchmark", "ambient", "power save", "perf loss", "var reduce", "peak degC"
    );
    let cell_of = |kind: ExperimentKind, benchmark: BenchmarkId, ambient_c: f64| {
        sink.summaries.iter().map(|(_, s)| s).find(|s| {
            s.config.kind == kind
                && s.config.benchmark == benchmark
                && s.config.ambient_c == ambient_c
        })
    };
    for &benchmark in &spec.benchmarks {
        for &ambient_c in &spec.ambients_c {
            let (Some(baseline), Some(dtpm)) = (
                cell_of(ExperimentKind::DefaultWithFan, benchmark, ambient_c),
                cell_of(ExperimentKind::Dtpm, benchmark, ambient_c),
            ) else {
                continue;
            };
            let cmp = BenchmarkComparison::from_summaries(baseline, dtpm);
            println!(
                "{:>12} {:>8}C {:>11.1}% {:>11.1}% {:>11.1}x {:>10.1}",
                benchmark.name(),
                ambient_c,
                cmp.power_saving_percent,
                cmp.performance_loss_percent,
                cmp.variance_reduction_factor,
                dtpm.stability.peak_temp_c
            );
        }
    }

    let retained = sink.summaries.len() * std::mem::size_of::<RunSummary>();
    println!(
        "\nRetained {} summaries (~{:.1} KiB); no per-interval traces were kept.",
        sink.summaries.len(),
        retained as f64 / 1024.0
    );
    Ok(())
}

//! Gaming scenario (the paper's motivating use case): run the Temple Run
//! workload — GPU plus an overloaded CPU — under all four experimental
//! configurations and compare temperature control, power and frame-time
//! proxy (execution time).
//!
//! Run with `cargo run --release --example gaming_thermal_control`.

use platform_sim::{
    CalibrationCampaign, Experiment, ExperimentConfig, ExperimentKind, StabilityReport,
};
use workload::BenchmarkId;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Characterising the platform...");
    let calibration = CalibrationCampaign::default().run(11)?;

    println!("Running Temple Run under the four configurations of Section 6.2...\n");
    println!(
        "{:<18} {:>10} {:>12} {:>10} {:>10} {:>12} {:>12}",
        "configuration",
        "exec (s)",
        "power (W)",
        "peak degC",
        "avg degC",
        "max-min degC",
        "little res. %"
    );
    let mut baseline_power = None;
    for kind in ExperimentKind::ALL {
        let config = ExperimentConfig::new(kind, BenchmarkId::Templerun).with_seed(3);
        let result = Experiment::new(&config, &calibration)?.run()?;
        let stability = StabilityReport::of_steady_portion(&result, 0.3);
        println!(
            "{:<18} {:>10.1} {:>12.2} {:>10.1} {:>10.1} {:>12.1} {:>12.1}",
            kind.name(),
            result.execution_time_s,
            result.mean_platform_power_w,
            stability.peak_temp_c,
            stability.mean_temp_c,
            stability.temp_range_c,
            100.0 * result.trace.little_cluster_residency(),
        );
        if kind == ExperimentKind::DefaultWithFan {
            baseline_power = Some(result.mean_platform_power_w);
        }
        if kind == ExperimentKind::Dtpm {
            if let Some(base) = baseline_power {
                println!(
                    "  -> DTPM saves {:.1}% platform power relative to the fan-cooled default",
                    100.0 * (base - result.mean_platform_power_w) / base
                );
            }
            // Export the DTPM trace for plotting.
            let path = std::path::Path::new("target/experiments/templerun_dtpm_trace.csv");
            result.trace.write_csv(path)?;
            println!("  -> full DTPM trace written to {}", path.display());
        }
    }
    Ok(())
}

//! Thermal system identification walkthrough (Chapter 4.2 of the paper):
//! excite the big cluster with a PRBS frequency signal, log power and
//! temperature through the sensors, identify the discrete thermal model with
//! least squares, and validate its prediction accuracy.
//!
//! Run with `cargo run --release --example thermal_identification`.

use numeric::Vector;
use platform_sim::{PhysicalPlant, PlantPowerParams, SensorSuite};
use soc_model::{FanLevel, PlatformState, SocSpec};
use sysid::{
    identify, n_step_prediction, validate_free_run, IdentificationDataset, IdentificationOptions,
    PrbsConfig, PrbsSignal,
};
use workload::Demand;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = SocSpec::odroid_xu_e();
    let control_period_s = 0.1;
    let duration_s = 900.0;
    let steps = (duration_s / control_period_s) as usize;

    // 1. PRBS excitation of the big cluster: oscillate its frequency between
    //    the minimum and maximum level with a busy workload (Figure 4.8).
    println!("Generating the PRBS excitation signal ({duration_s:.0} s)...");
    let prbs = PrbsSignal::generate(
        PrbsConfig {
            register_bits: 11,
            hold_intervals: 20,
            low: 0.0,
            high: 1.0,
            seed: 0x5a,
        },
        steps,
    )?;
    println!(
        "  {} intervals, {} transitions, duty cycle {:.2}",
        prbs.len(),
        prbs.transition_count(),
        prbs.duty_cycle()
    );

    // 2. Run the plant and log the sensed powers and temperatures.
    let mut plant = PhysicalPlant::new(spec.clone(), PlantPowerParams::default());
    let mut sensors = SensorSuite::odroid_defaults(7);
    let mut dataset = IdentificationDataset::new(4, 4, control_period_s, spec.ambient_c())?;
    let mut state = PlatformState::default_for(&spec);
    for &bit in prbs.values() {
        let high = bit > 0.5;
        state.big_frequency = if high {
            spec.big_opps().highest().frequency
        } else {
            spec.big_opps().lowest().frequency
        };
        let demand = Demand {
            cpu_streams: 4.0,
            activity_factor: if high { 0.75 } else { 0.55 },
            gpu_utilization: 0.0,
            memory_intensity: 0.1,
            frequency_scalability: 1.0,
        };
        let step = plant.step_interval(
            &state,
            &demand,
            FanLevel::Off,
            spec.ambient_c(),
            control_period_s,
        )?;
        let reading = sensors.sample(step.core_temps_c, &step.domain_power, step.platform_power_w);
        dataset.push(
            Vector::from_slice(&reading.core_temps_c),
            Vector::from_slice(&reading.domain_power.to_vec()),
        )?;
    }

    // 3. Identify the model on the first 70% and validate on the rest.
    let (train, test) = dataset.split(0.7)?;
    let model = identify(&train, &IdentificationOptions::default())?;
    println!(
        "\nIdentified model (sample period {:.1} s):",
        model.sample_period_s()
    );
    println!("  As =\n{}", model.a());
    println!("  Bs =\n{}", model.b());
    println!("  stable: {}", model.is_stable());

    let free_run = validate_free_run(&model, &test)?;
    println!(
        "\nFree-run validation: mean RMSE {:.2} degC, fit {:.1}%",
        free_run.mean_rmse_c(),
        free_run.mean_fit_percent()
    );
    for horizon in [10usize, 30, 50] {
        let report = n_step_prediction(&model, &test, horizon)?;
        println!(
            "  {:>4.1} s ahead: mean error {:.2}% ({:.2} degC), max {:.2} degC",
            report.horizon_s,
            report.mean_percent_error,
            report.mean_abs_error_c,
            report.max_abs_error_c
        );
    }
    Ok(())
}

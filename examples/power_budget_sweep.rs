//! Power-budget anatomy: sweep the measured core temperature towards the
//! constraint and show how the run-time power budget (Eqs. 5.4–5.6), the
//! budget frequency (Eq. 5.7) and the chosen DTPM action evolve — the inner
//! workings of Figure 5.1.
//!
//! Run with `cargo run --release --example power_budget_sweep`.

use dtpm::{DtpmConfig, DtpmInputs, DtpmPolicy, PowerBudget};
use platform_sim::CalibrationCampaign;
use power_model::DomainPower;
use soc_model::{PlatformState, PowerDomain, SocSpec, Voltage};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Characterising the platform...");
    let calibration = CalibrationCampaign::default().run(5)?;
    let spec = SocSpec::odroid_xu_e();
    let config = DtpmConfig::default();
    let policy = DtpmPolicy::new(config, calibration.predictor.clone())?;

    // Train the run-time power model on a heavy workload so αC reflects a
    // matrix-multiplication-like activity.
    let mut power_model = calibration.power_model.clone();
    let v = Voltage::from_volts(1.2);
    let f = soc_model::Frequency::from_mhz(1600);
    for _ in 0..20 {
        power_model.observe(PowerDomain::BigCpu, 4.3, 58.0, v, f);
    }

    println!(
        "\n{:>10} {:>16} {:>14} {:>14} {:>26}",
        "max T (degC)", "predicted peak", "budget (W)", "dyn budget (W)", "action"
    );
    for temp in (50..=67).step_by(1) {
        let temps = [
            temp as f64,
            temp as f64 - 0.6,
            temp as f64 + 0.4,
            temp as f64 - 0.3,
        ];
        let measured = DomainPower::new(4.4, 0.04, 0.15, 0.40);
        let decision = policy.decide(
            &DtpmInputs {
                spec: &spec,
                proposed: PlatformState::default_for(&spec),
                core_temps_c: temps,
                measured_power: measured,
            },
            &power_model,
        )?;
        // Recompute the budget explicitly for display (the decision embeds it
        // only when a violation was predicted).
        let budget = PowerBudget::compute(
            &calibration.predictor,
            temps,
            &measured,
            PowerDomain::BigCpu,
            config.temperature_constraint_c - config.prediction_margin_c,
            config.prediction_horizon_steps,
            power_model.predict_leakage(PowerDomain::BigCpu, temps[2], v),
        )?;
        println!(
            "{:>10.1} {:>16.1} {:>14.2} {:>14.2} {:>26}",
            temps[2],
            decision.predicted_peak_c,
            budget.total_w.min(99.0),
            budget.dynamic_w.min(99.0),
            describe(&decision.action),
        );
    }
    Ok(())
}

fn describe(action: &dtpm::DtpmAction) -> String {
    match action {
        dtpm::DtpmAction::Affirmed => "affirm default".to_owned(),
        dtpm::DtpmAction::FrequencyCapped { selected, .. } => {
            format!("cap frequency at {}", selected)
        }
        dtpm::DtpmAction::CoreShutdown { core, frequency } => {
            format!("core {core} off, {frequency}")
        }
        dtpm::DtpmAction::ClusterMigration { frequency, .. } => {
            format!("migrate to little @ {frequency}")
        }
    }
}

//! Offline stand-in for the real `rand` crate.
//!
//! The build environment has no network access, so this vendored crate
//! implements exactly the API surface the workspace uses: a seedable,
//! deterministic [`rngs::StdRng`] and [`Rng::gen_range`] over `f64` ranges.
//! The generator is xoshiro256++ seeded through SplitMix64 — statistically
//! solid for simulation noise, stable across platforms, and reproducible for
//! a given seed (which the sensor/workload tests rely on).

use std::ops::Range;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// A generator that can be constructed from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling helpers layered on top of [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open, `low..high`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<T: RngCore> Rng for T {}

/// A range that knows how to sample itself from a generator.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        // 53 random mantissa bits -> uniform in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<u64> for Range<u64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> u64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let span = self.end - self.start;
        // Modulo bias is negligible for the simulation use cases here.
        self.start + rng.next_u64() % span
    }
}

impl SampleRange<usize> for Range<usize> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> usize {
        (self.start as u64..self.end as u64).sample_from(rng) as usize
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator, the stand-in for `rand`'s
    /// `StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_sequence() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0.0..1.0f64), b.gen_range(0.0..1.0f64));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..32)
            .filter(|_| a.gen_range(0.0..1.0f64) == b.gen_range(0.0..1.0f64))
            .count();
        assert!(same < 4);
    }

    #[test]
    fn uniform_range_respected_and_centered() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut sum = 0.0;
        const N: usize = 20_000;
        for _ in 0..N {
            let x = rng.gen_range(-2.0..4.0f64);
            assert!((-2.0..4.0).contains(&x));
            sum += x;
        }
        let mean = sum / N as f64;
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
    }
}

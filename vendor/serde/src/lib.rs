//! Offline stand-in for the real `serde` crate.
//!
//! Provides the `Serialize` / `Deserialize` names in both the trait and the
//! derive-macro namespaces, which is all the workspace uses (types derive the
//! traits so they stay serde-ready, but nothing serializes at run time). The
//! derives expand to nothing; see `vendor/serde_derive`.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (no methods are ever called).
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize` (no methods are ever called).
pub trait Deserialize<'de> {}

//! Offline stand-in for the real `criterion` crate.
//!
//! The build environment has no network access, so this vendored crate
//! implements the subset of criterion's API the workspace benches use:
//! `Criterion::bench_function` / `benchmark_group`, `Bencher::iter` /
//! `iter_batched`, the `criterion_group!` / `criterion_main!` macros and
//! `black_box`. Timing is a simple calibrated wall-clock loop (median of
//! several samples); results print as `<name> ... <time>/iter`. Passing
//! `--test` (as `cargo bench -- --test` does with real criterion) runs every
//! benchmark body exactly once, which is what CI's smoke invocation uses.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batched inputs are grouped; accepted for API compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut test_mode = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                // Flags cargo/criterion pass that we accept and ignore.
                "--bench" | "--verbose" | "--quiet" | "--noplot" => {}
                other if other.starts_with("--") => {}
                other => filter = Some(other.to_owned()),
            }
        }
        Criterion { test_mode, filter }
    }
}

impl Criterion {
    /// Runs (or in `--test` mode, smoke-runs) one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return self;
            }
        }
        let mut bencher = Bencher {
            test_mode: self.test_mode,
            sampled: None,
        };
        f(&mut bencher);
        match bencher.sampled {
            Some(per_iter) => println!("bench: {name:<60} {}", format_duration(per_iter)),
            None => println!("bench: {name:<60} (no measurement)"),
        }
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_owned(),
        }
    }
}

/// A named collection of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stand-in picks its own sampling.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        self.criterion.bench_function(&full, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to each benchmark closure to drive the measured routine.
#[derive(Debug)]
pub struct Bencher {
    test_mode: bool,
    sampled: Option<Duration>,
}

impl Bencher {
    /// Measures `routine`, called in a tight loop.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        if self.test_mode {
            black_box(routine());
            return;
        }
        // Calibrate the iteration count towards ~50 ms per sample.
        let mut iters: u64 = 1;
        let per_iter = loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(50) || iters >= 1 << 24 {
                break elapsed / iters.max(1) as u32;
            }
            iters = iters.saturating_mul(4);
        };
        // Median of five samples at the calibrated count.
        let mut samples = Vec::with_capacity(5);
        samples.push(per_iter);
        for _ in 0..4 {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            samples.push(start.elapsed() / iters.max(1) as u32);
        }
        samples.sort();
        self.sampled = Some(samples[samples.len() / 2]);
    }

    /// Measures `routine` over inputs produced by `setup` (setup excluded
    /// from timing).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.test_mode {
            black_box(routine(setup()));
            return;
        }
        let mut iters: u64 = 1;
        let per_iter = loop {
            let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(50) || iters >= 1 << 20 {
                break elapsed / iters.max(1) as u32;
            }
            iters = iters.saturating_mul(4);
        };
        self.sampled = Some(per_iter);
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 10_000 {
        format!("{nanos} ns/iter")
    } else if nanos < 10_000_000 {
        format!("{:.2} us/iter", nanos as f64 / 1e3)
    } else {
        format!("{:.2} ms/iter", nanos as f64 / 1e6)
    }
}

/// Declares a group function that runs the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $($group(&mut criterion);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_something() {
        let mut c = Criterion {
            test_mode: false,
            filter: None,
        };
        let mut ran = false;
        c.bench_function("smoke", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn groups_run_and_finish() {
        let mut c = Criterion {
            test_mode: true,
            filter: None,
        };
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        let mut count = 0;
        group.bench_function("a", |b| b.iter(|| count += 1));
        group.bench_function("b", |b| {
            b.iter_batched(|| 1, |x| x + 1, BatchSize::SmallInput)
        });
        group.finish();
        assert_eq!(count, 1);
    }
}

//! Offline stand-in for the real `proptest` crate.
//!
//! The build environment has no network access, so this vendored crate
//! implements the subset of proptest the workspace's property tests use:
//! the [`proptest!`] macro, [`strategy::Strategy`] with `prop_map` /
//! `prop_filter`, range strategies over `f64`, `prop::collection::vec`, and
//! the `prop_assert*` macros. Cases are generated from a deterministic
//! per-test RNG (seeded from the test name) so failures reproduce exactly;
//! there is no shrinking — a failing case panics with the ordinary assert
//! message.

/// Number of cases each `proptest!` test runs.
pub const CASES: usize = 48;

/// Deterministic RNG used to generate test cases.
pub mod test_runner {
    /// SplitMix64-based case generator.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates a generator seeded from the test name.
        pub fn deterministic(name: &str) -> Self {
            let mut seed = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                seed ^= u64::from(b);
                seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: seed }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform sample in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform sample in `[lo, hi)`.
        pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
            assert!(lo < hi, "empty usize range");
            lo + (self.next_u64() % (hi - lo) as u64) as usize
        }
    }
}

/// Strategies: how test-case values are generated.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A generator of values of type `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Keeps only values accepted by `accept` (retrying a bounded number
        /// of times).
        fn prop_filter<R, F>(self, reason: R, accept: F) -> Filter<Self, F>
        where
            Self: Sized,
            R: std::fmt::Display,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                reason: reason.to_string(),
                accept,
            }
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty f64 range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for Range<i64> {
        type Value = i64;

        fn generate(&self, rng: &mut TestRng) -> i64 {
            assert!(self.start < self.end, "empty i64 range strategy");
            self.start + (rng.next_u64() % (self.end - self.start) as u64) as i64
        }
    }

    impl Strategy for Range<usize> {
        type Value = usize;

        fn generate(&self, rng: &mut TestRng) -> usize {
            rng.range_usize(self.start, self.end)
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy produced by [`Strategy::prop_filter`].
    #[derive(Debug, Clone)]
    pub struct Filter<S, F> {
        pub(crate) inner: S,
        pub(crate) reason: String,
        pub(crate) accept: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let candidate = self.inner.generate(rng);
                if (self.accept)(&candidate) {
                    return candidate;
                }
            }
            panic!("prop_filter '{}' rejected 1000 candidates", self.reason);
        }
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Number of elements a [`vec`](fn@vec) strategy generates.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Generates a `Vec` of values from `element`, with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy produced by [`vec`](fn@vec).
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.hi - self.size.lo <= 1 {
                self.size.lo
            } else {
                rng.range_usize(self.size.lo, self.size.hi)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Namespace alias so `prop::collection::vec` works as in real proptest.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running [`CASES`] deterministic cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
                for _case in 0..$crate::CASES {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    $body
                }
            }
        )+
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in -3.0..7.0f64) {
            prop_assert!((-3.0..7.0).contains(&x));
        }

        #[test]
        fn vec_lengths_respect_size_range(
            v in prop::collection::vec(0.0..1.0f64, 2..9),
            w in prop::collection::vec(0.0..1.0f64, 4),
        ) {
            prop_assert!((2..9).contains(&v.len()));
            prop_assert_eq!(w.len(), 4);
        }

        #[test]
        fn map_and_filter_compose(
            x in (0.0..100.0f64)
                .prop_filter("above one", |v| *v > 1.0)
                .prop_map(|v| v * 2.0),
        ) {
            prop_assert!(x > 2.0 && x < 200.0);
        }
    }
}

//! Offline stand-in for the real `serde_derive` crate.
//!
//! The build environment has no network access, so the workspace vendors the
//! minimal surface it needs: the repo only ever *derives* `Serialize` /
//! `Deserialize` (nothing is actually serialized at run time), so the derive
//! macros accept the usual syntax — including `#[serde(...)]` field and
//! container attributes — and expand to nothing. Swapping in the real serde
//! only requires changing the `[workspace.dependencies]` entries.

use proc_macro::TokenStream;

/// No-op stand-in for `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
